//! `indirect-routing` — facade crate for the reproduction of
//! *"A Performance Analysis of Indirect Routing"* (Opos, Ramabhadran,
//! Terry, Pasquale, Snoeren, Vahdat — IPPS 2007).
//!
//! This crate re-exports the workspace's crates under one roof so that
//! examples, integration tests and downstream users can depend on a
//! single package:
//!
//! * [`stats`] — statistics substrate (summaries, histograms,
//!   correlation, trend tests).
//! * [`simnet`] — flow-level network simulator with time-varying link
//!   bandwidth and max–min fair sharing.
//! * [`tcp`] — fluid TCP throughput model (slow start + PFTK cap).
//! * [`http`] — HTTP/1.1 range-request subset and proxy semantics.
//! * [`relay`] — real-socket loopback overlay (origin, relay daemon,
//!   racing client, token-bucket shapers).
//! * [`core`] — the paper's contribution: probe/predict/select framework
//!   and intermediate-node selection policies.
//! * [`policy`] — the path-selection policy plane: selectors that pick
//!   direct/1-hop/multi-hop candidate paths (the §6 extension space).
//! * [`stripe`] — mHTTP-style multi-source range striping: chunked
//!   remainder over direct + best-k indirect paths with EWMA-driven
//!   rebalancing.
//! * [`workload`] — PlanetLab-like scenario generator with the paper's
//!   node roster.
//! * [`experiments`] — the harness reproducing every table and figure of
//!   the paper's evaluation.

pub use ir_core as core;
pub use ir_experiments as experiments;
pub use ir_http as http;
pub use ir_policy as policy;
pub use ir_relay as relay;
pub use ir_simnet as simnet;
pub use ir_stats as stats;
pub use ir_stripe as stripe;
pub use ir_tcp as tcp;
pub use ir_workload as workload;
