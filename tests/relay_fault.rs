//! Integration: killing a relay mid-splice must surface a clean client
//! error (no hang, no daemon panic), and the client-side failover path
//! must recover the transfer over a surviving route.

use indirect_routing::relay::{
    download, download_failover, ChosenPath, ClientConfig, OriginConfig, OriginServer,
    RateSchedule, Relay, RelayConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

const KB: f64 = 1000.0;

/// Origin + one shaped relay arranged so the relay wins the probe race
/// and carries the remainder when the kill lands.
fn rig() -> (OriginServer, OriginServer, Relay, ClientConfig) {
    let origin_fast = OriginServer::start(OriginConfig::new(300_000)).unwrap();
    let origin_direct =
        OriginServer::start(OriginConfig::new(300_000).shaped(RateSchedule::constant(100.0 * KB)))
            .unwrap();
    let relay = Relay::start(RelayConfig::shaped(RateSchedule::constant(150.0 * KB))).unwrap();
    let cfg = ClientConfig {
        path: "/f".into(),
        probe_bytes: 50_000,
        total_bytes: 300_000,
        timeout: Duration::from_secs(30),
    };
    (origin_fast, origin_direct, relay, cfg)
}

#[test]
fn killed_relay_surfaces_clean_error_without_hanging() {
    let (origin_fast, origin_direct, mut relay, cfg) = rig();
    let direct = origin_direct.addr();
    let for_relays = origin_fast.addr();
    let relay_addr = relay.addr();

    let t0 = Instant::now();
    let worker = std::thread::spawn(move || download(direct, for_relays, &[relay_addr], &cfg));
    // Let the probe race finish and the remainder start flowing, then
    // sever every spliced connection.
    std::thread::sleep(Duration::from_millis(600));
    relay.kill();
    let result = worker.join().expect("client must not panic");
    let err = result.expect_err("remainder lost its carrier; download must fail");
    let wall = t0.elapsed();
    assert!(
        wall < Duration::from_secs(10),
        "clean error expected promptly, took {wall:?}: {err}"
    );
}

#[test]
fn failover_download_recovers_over_surviving_path() {
    let (origin_fast, origin_direct, mut relay, cfg) = rig();
    let direct = origin_direct.addr();
    let for_relays = origin_fast.addr();
    let relay_addr = relay.addr();

    let worker =
        std::thread::spawn(move || download_failover(direct, for_relays, &[relay_addr], &cfg));
    std::thread::sleep(Duration::from_millis(600));
    relay.kill();
    let out = worker
        .join()
        .expect("client must not panic")
        .expect("failover must recover the transfer");
    assert!(out.body_ok, "recovered body must reassemble byte-exactly");
    assert_eq!(out.choice, ChosenPath::Direct, "only survivor is direct");
    assert!(out.failovers >= 1, "failover path was not exercised");
}

/// The stall window: a client racing a killed relay must resolve —
/// success or clean error — well inside this bound, never hang.
const STALL_WINDOW: Duration = Duration::from_secs(10);

/// Chaos: kill the relay at seeded random points across its whole
/// lifecycle — before the client even connects, right after the TCP
/// handshake, mid-splice, and while a drain is reclaiming connections.
/// Whatever the phase, the client must observe EOF-or-error promptly
/// and the daemon must leave no registered state behind.
#[test]
fn chaos_seeded_kill_points_never_hang_clients() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xC4A0_5EED ^ seed);
        let phase = seed % 4;
        let (origin_fast, origin_direct, mut relay, cfg) = rig();
        let direct = origin_direct.addr();
        let for_relays = origin_fast.addr();
        let relay_addr = relay.addr();

        let t0 = Instant::now();
        match phase {
            // Pre-accept: the relay is already dead when the client
            // arrives. The probe race must settle on the direct path.
            0 => {
                relay.kill();
                let out = download(direct, for_relays, &[relay_addr], &cfg)
                    .expect("direct path must carry the transfer");
                assert_eq!(out.choice, ChosenPath::Direct, "seed {seed}");
                assert!(out.body_ok, "seed {seed}");
            }
            // Mid-handshake: kill lands just as the connection opens,
            // before the splice is established.
            1 => {
                let delay = rng.gen_range(0..20u64);
                let worker =
                    std::thread::spawn(move || download(direct, for_relays, &[relay_addr], &cfg));
                std::thread::sleep(Duration::from_millis(delay));
                relay.kill();
                // Either the direct path won the race anyway, or the
                // client saw a clean relay error — both are fine; a
                // hang is not.
                if let Ok(out) = worker.join().expect("client must not panic") {
                    assert!(out.body_ok, "seed {seed}");
                }
            }
            // Mid-splice: the remainder is flowing when the kill lands.
            2 => {
                let delay = rng.gen_range(500..900u64);
                let worker =
                    std::thread::spawn(move || download(direct, for_relays, &[relay_addr], &cfg));
                std::thread::sleep(Duration::from_millis(delay));
                relay.kill();
                if let Ok(out) = worker.join().expect("client must not panic") {
                    assert!(out.body_ok, "seed {seed}");
                }
            }
            // During drain: a too-short drain deadline forces the
            // daemon from graceful reclaim into a sever while the
            // transfer is still in flight.
            _ => {
                let worker =
                    std::thread::spawn(move || download(direct, for_relays, &[relay_addr], &cfg));
                std::thread::sleep(Duration::from_millis(rng.gen_range(500..700u64)));
                let report = relay.drain(Duration::from_millis(rng.gen_range(50..150u64)));
                assert!(report.monotone, "seed {seed}: drain went backwards");
                if let Ok(out) = worker.join().expect("client must not panic") {
                    assert!(out.body_ok, "seed {seed}");
                }
            }
        }
        let wall = t0.elapsed();
        assert!(
            wall < STALL_WINDOW,
            "seed {seed} phase {phase}: client stalled for {wall:?}"
        );
        assert!(
            relay.registry_is_empty(),
            "seed {seed} phase {phase}: registry leaked"
        );
        assert_eq!(relay.active_connections(), 0, "seed {seed} phase {phase}");
    }
}
