//! Integration: killing a relay mid-splice must surface a clean client
//! error (no hang, no daemon panic), and the client-side failover path
//! must recover the transfer over a surviving route.

use indirect_routing::relay::{
    download, download_failover, ChosenPath, ClientConfig, OriginConfig, OriginServer,
    RateSchedule, Relay, RelayConfig,
};
use std::time::{Duration, Instant};

const KB: f64 = 1000.0;

/// Origin + one shaped relay arranged so the relay wins the probe race
/// and carries the remainder when the kill lands.
fn rig() -> (OriginServer, OriginServer, Relay, ClientConfig) {
    let origin_fast = OriginServer::start(OriginConfig::new(300_000)).unwrap();
    let origin_direct =
        OriginServer::start(OriginConfig::new(300_000).shaped(RateSchedule::constant(100.0 * KB)))
            .unwrap();
    let relay = Relay::start(RelayConfig::shaped(RateSchedule::constant(150.0 * KB))).unwrap();
    let cfg = ClientConfig {
        path: "/f".into(),
        probe_bytes: 50_000,
        total_bytes: 300_000,
        timeout: Duration::from_secs(30),
    };
    (origin_fast, origin_direct, relay, cfg)
}

#[test]
fn killed_relay_surfaces_clean_error_without_hanging() {
    let (origin_fast, origin_direct, mut relay, cfg) = rig();
    let direct = origin_direct.addr();
    let for_relays = origin_fast.addr();
    let relay_addr = relay.addr();

    let t0 = Instant::now();
    let worker = std::thread::spawn(move || download(direct, for_relays, &[relay_addr], &cfg));
    // Let the probe race finish and the remainder start flowing, then
    // sever every spliced connection.
    std::thread::sleep(Duration::from_millis(600));
    relay.kill();
    let result = worker.join().expect("client must not panic");
    let err = result.expect_err("remainder lost its carrier; download must fail");
    let wall = t0.elapsed();
    assert!(
        wall < Duration::from_secs(10),
        "clean error expected promptly, took {wall:?}: {err}"
    );
}

#[test]
fn failover_download_recovers_over_surviving_path() {
    let (origin_fast, origin_direct, mut relay, cfg) = rig();
    let direct = origin_direct.addr();
    let for_relays = origin_fast.addr();
    let relay_addr = relay.addr();

    let worker =
        std::thread::spawn(move || download_failover(direct, for_relays, &[relay_addr], &cfg));
    std::thread::sleep(Duration::from_millis(600));
    relay.kill();
    let out = worker
        .join()
        .expect("client must not panic")
        .expect("failover must recover the transfer");
    assert!(out.body_ok, "recovered body must reassemble byte-exactly");
    assert_eq!(out.choice, ChosenPath::Direct, "only survivor is direct");
    assert!(out.failovers >= 1, "failover path was not exercised");
}
