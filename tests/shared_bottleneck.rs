//! Integration: the paper's §3.1 shared-bottleneck penalty cause.
//!
//! "Another situation that can lead to performance penalties is when
//! the indirect and direct paths share a common bottleneck link. In
//! this case, the indirect path will suffer from the same problems as
//! the direct path, and will not be able to deliver superior
//! performance." The calibrated study models paths as disjoint
//! (`Sharing::PerFlow`, DESIGN.md §5); this test shows the engine
//! reproduces the shared-bottleneck regime when modelled explicitly
//! with a hard-capacity access link.

use indirect_routing::core::{
    run_session, FirstPortion, SessionConfig, SimTransport, StaticSingle,
};
use indirect_routing::simnet::prelude::*;

/// client --access--> gateway; gateway -> server (direct tail) and
/// gateway -> relay -> server (indirect tail). `access_cap` is a hard
/// capacity shared by every flow the client runs.
fn world(
    access_cap: f64,
    direct_tail: f64,
    overlay_tail: f64,
) -> (Network, NodeId, NodeId, NodeId) {
    let mut t = Topology::new();
    let c = t.add_node("client", NodeKind::Client);
    let g = t.add_node("gateway", NodeKind::Intermediate);
    let v = t.add_node("relay", NodeKind::Intermediate);
    let s = t.add_node("server", NodeKind::Server);
    let access = t.add_link(c, g, SimDuration::from_millis(5)); // Capacity sharing
    let direct = t.add_link_shared(g, s, SimDuration::from_millis(80), Sharing::PerFlow);
    let up = t.add_link_shared(g, v, SimDuration::from_millis(70), Sharing::PerFlow);
    let down = t.add_link_shared(v, s, SimDuration::from_millis(10), Sharing::PerFlow);
    let mut net = Network::new(t, 1.0);
    net.set_link_process(access, Box::new(ConstantProcess::new(access_cap)));
    net.set_link_process(direct, Box::new(ConstantProcess::new(direct_tail)));
    net.set_link_process(up, Box::new(ConstantProcess::new(overlay_tail)));
    net.set_link_process(down, Box::new(ConstantProcess::new(10e6)));
    (net, c, v, s)
}

#[test]
fn shared_access_bottleneck_erases_indirect_gains() {
    // Tail rates: direct 100 KB/s, overlay 400 KB/s. With a generous
    // access link (no shared bottleneck), relaying pays off; with the
    // access link capped at 120 KB/s (the true bottleneck), it cannot.
    // (The 4-node gateway topology is outside PathSpec's two shapes, so
    // this test drives the flow engine directly.)
    let run_pair = |access_cap: f64| -> (f64, f64) {
        let (mut net, c, v, s) = world(access_cap, 100_000.0, 400_000.0);
        let topo = net.topology().clone();
        let g = topo.node_by_name("gateway").unwrap();
        let direct_route = topo.route(&[c, g, s]).unwrap();
        let indirect_route = topo.route(&[c, g, v, s]).unwrap();
        // Race two 2 MB transfers concurrently (they share the access
        // link), like the control + selected transfers of a session.
        let a = net.start_flow(direct_route, 2_000_000, Box::new(NoCap));
        let b = net.start_flow(indirect_route, 2_000_000, Box::new(NoCap));
        let done = net.advance_until(SimTime::from_secs(3600));
        let thr = |id| {
            done.iter()
                .find(|cf| cf.id == id)
                .expect("finished")
                .throughput()
        };
        (thr(a), thr(b))
    };

    // Disjoint-bottleneck regime: overlay tail dominates.
    let (direct_thr, indirect_thr) = run_pair(10_000_000.0);
    assert!(
        indirect_thr > direct_thr * 2.5,
        "without a shared bottleneck, relaying should win big: {direct_thr} vs {indirect_thr}"
    );

    // Shared-bottleneck regime: both paths squeeze through 120 KB/s.
    let (direct_thr, indirect_thr) = run_pair(120_000.0);
    let ratio = indirect_thr / direct_thr;
    assert!(
        (0.5..1.5).contains(&ratio),
        "with a shared access bottleneck the paths should be comparable, got ratio {ratio}"
    );
    // And neither can exceed the access capacity.
    assert!(direct_thr + indirect_thr <= 120_000.0 * 1.01);
}

#[test]
fn session_protocol_sees_no_gain_under_shared_bottleneck() {
    // Directly model the session's world with the access constraint as
    // a per-path clamp: both paths' first hop capped identically. The
    // probe then picks near-randomly and improvement stays near zero —
    // "the indirect path will suffer from the same problems".
    let mut t = Topology::new();
    let c = t.add_node("client", NodeKind::Client);
    let v = t.add_node("relay", NodeKind::Intermediate);
    let s = t.add_node("server", NodeKind::Server);
    let l_cs = t.add_link_shared(c, s, SimDuration::from_millis(80), Sharing::PerFlow);
    let l_cv = t.add_link_shared(c, v, SimDuration::from_millis(75), Sharing::PerFlow);
    let l_vs = t.add_link_shared(v, s, SimDuration::from_millis(10), Sharing::PerFlow);
    let mut net = Network::new(t, 1.0);
    // Both paths bottlenecked by the same (clamped) 120 KB/s behaviour.
    net.set_link_process(l_cs, Box::new(ConstantProcess::new(120_000.0)));
    net.set_link_process(l_cv, Box::new(ConstantProcess::new(120_000.0)));
    net.set_link_process(l_vs, Box::new(ConstantProcess::new(10e6)));

    let mut tp = SimTransport::new(net);
    let mut policy = StaticSingle(v);
    let mut predictor = FirstPortion;
    let rec = run_session(
        &mut tp,
        &mut policy,
        &mut predictor,
        c,
        s,
        &[v],
        0,
        &SessionConfig::paper_defaults(),
    );
    assert!(
        rec.improvement().abs() < 0.15,
        "equal-bottleneck paths should yield ~0 improvement, got {:+.1}%",
        rec.improvement_pct()
    );
}
