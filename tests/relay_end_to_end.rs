//! Integration: the real-socket overlay implements the same protocol
//! the simulator studies — probe race over shaped paths, remainder on
//! the warm winner, byte-exact reassembly.

use indirect_routing::relay::{
    body_byte, ChosenPath, ClientConfig, HarnessSpec, MiniPlanetLab, OriginConfig, OriginServer,
    RateSchedule, Relay, RelayConfig,
};
use std::time::Duration;

const KB: f64 = 1000.0;

#[test]
fn probed_download_picks_best_of_three_relays() {
    let lab = MiniPlanetLab::start(HarnessSpec {
        content_len: 300_000,
        direct: RateSchedule::constant(120.0 * KB),
        relays: vec![
            RateSchedule::constant(60.0 * KB),
            RateSchedule::constant(700.0 * KB),
            RateSchedule::constant(200.0 * KB),
        ],
    })
    .unwrap();
    let out = lab.run_download(50_000).unwrap();
    assert_eq!(out.choice, ChosenPath::Relay(1));
    assert!(out.body_ok);
    assert!(out.throughput > 150.0 * KB, "thr {:.0}", out.throughput);
}

#[test]
fn direct_kept_when_fastest() {
    let lab = MiniPlanetLab::start(HarnessSpec {
        content_len: 200_000,
        direct: RateSchedule::constant(900.0 * KB),
        relays: vec![RateSchedule::constant(100.0 * KB)],
    })
    .unwrap();
    let out = lab.run_download(40_000).unwrap();
    assert_eq!(out.choice, ChosenPath::Direct);
    assert!(out.body_ok);
}

#[test]
fn misprediction_penalty_reproduced_with_real_bytes() {
    // The paper's §3.1 failure mode, live: the direct path looks bad
    // during the probe but recovers right after; the client is stuck
    // with the mediocre relay and a measurably worse outcome than the
    // direct path would have delivered.
    let lab = MiniPlanetLab::start(HarnessSpec {
        content_len: 500_000,
        direct: RateSchedule::piecewise(vec![
            (Duration::ZERO, 60.0 * KB),              // dip during the probe
            (Duration::from_millis(900), 900.0 * KB), // recovery
        ]),
        relays: vec![RateSchedule::constant(180.0 * KB)],
    })
    .unwrap();
    let out = lab.run_download(50_000).unwrap();
    assert_eq!(
        out.choice,
        ChosenPath::Relay(0),
        "probe should catch the dip"
    );
    assert!(out.body_ok);
    // The relay path delivers ~180 KB/s; the recovered direct path
    // would have been ~5x that. The selection is a penalty.
    assert!(
        out.throughput < 400.0 * KB,
        "expected a penalty outcome, got {:.0} B/s",
        out.throughput
    );
}

#[test]
fn remainder_rides_warm_connection() {
    // One relay only; verify the full body arrives intact and that two
    // requests (probe + remainder) sufficed — implied by body_ok plus
    // the known request pattern of `download`.
    let origin_fast = OriginServer::start(OriginConfig::new(150_000)).unwrap();
    let origin_direct =
        OriginServer::start(OriginConfig::new(150_000).shaped(RateSchedule::constant(40.0 * KB)))
            .unwrap();
    let relay = Relay::start(RelayConfig::shaped(RateSchedule::constant(400.0 * KB))).unwrap();
    let cfg = ClientConfig {
        path: "/f".into(),
        probe_bytes: 30_000,
        total_bytes: 150_000,
        timeout: Duration::from_secs(30),
    };
    let out = indirect_routing::relay::download(
        origin_direct.addr(),
        origin_fast.addr(),
        &[relay.addr()],
        &cfg,
    )
    .unwrap();
    assert_eq!(out.choice, ChosenPath::Relay(0));
    assert!(out.body_ok);
}

#[test]
fn content_pattern_spans_probe_boundary() {
    // Regression guard for off-by-one at the probe/remainder seam.
    let x = 12_345u64;
    assert_eq!(body_byte(x - 1), ((x - 1) % 251) as u8);
    assert_eq!(body_byte(x), (x % 251) as u8);
    let lab = MiniPlanetLab::start(HarnessSpec {
        content_len: 40_000,
        direct: RateSchedule::constant(500.0 * KB),
        relays: vec![],
    })
    .unwrap();
    let cfg = ClientConfig {
        path: "/f".into(),
        probe_bytes: x,
        total_bytes: 40_000,
        timeout: Duration::from_secs(20),
    };
    let out =
        indirect_routing::relay::download(lab.direct_addr(), lab.origin_for_relays(), &[], &cfg)
            .unwrap();
    assert!(out.body_ok, "seam corruption");
}
