//! Soak: hundreds of concurrent racing downloads through one
//! event-driven relay.
//!
//! Exercises the reactor under the load it was built for — far more
//! simultaneous connections than worker threads — and asserts the
//! three properties the thread-per-connection design could only
//! promise statistically: zero lost transfers, a bounded file
//! descriptor footprint, and a monotone drain to zero on shutdown.
//!
//! `IR_SOAK_CLIENTS` scales the client count (default 500) so CI can
//! run a lighter pass while `cargo test` locally soaks the full set.

use indirect_routing::relay::{HarnessSpec, MiniPlanetLab, RateSchedule};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const KB: f64 = 1000.0;

/// Open descriptors of this process, via procfs.
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(0)
}

fn soak_clients() -> usize {
    match std::env::var("IR_SOAK_CLIENTS") {
        Ok(v) => v.parse().expect("IR_SOAK_CLIENTS must be an integer"),
        Err(_) => 500,
    }
}

fn wait_for_active(lab: &MiniPlanetLab, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while lab.relays()[0].active_connections() != want {
        assert!(
            Instant::now() < deadline,
            "relay stuck at {} active connections, wanted {want}",
            lab.relays()[0].active_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn soak_concurrent_racing_downloads_lose_nothing() {
    let n = soak_clients();
    let fd_baseline = fd_count();
    // Slow direct path, fast relay: every racing probe resolves to the
    // overlay, funnelling the whole client herd through one reactor.
    let mut lab = MiniPlanetLab::start(HarnessSpec {
        content_len: 12_000,
        direct: RateSchedule::constant(30.0 * KB),
        relays: vec![RateSchedule::constant(40_000.0 * KB)],
    })
    .unwrap();

    let stop = AtomicBool::new(false);
    let peak = std::thread::scope(|s| {
        let sampler = s.spawn(|| {
            let mut peak = fd_count();
            while !stop.load(Ordering::Relaxed) {
                peak = peak.max(fd_count());
                std::thread::sleep(Duration::from_millis(20));
            }
            peak
        });
        let lab_ref = &lab;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                std::thread::Builder::new()
                    // Small stacks keep n threads cheap on one core.
                    .stack_size(256 * 1024)
                    .spawn_scoped(s, move || {
                        // Spread connect storms below the listen backlog.
                        std::thread::sleep(Duration::from_millis((i * 7 % 1500) as u64));
                        lab_ref.run_download(2_000)
                    })
                    .expect("spawn client")
            })
            .collect();
        let mut completed = 0usize;
        for h in handles {
            let out = h
                .join()
                .expect("client thread panicked")
                .expect("lost transfer");
            assert!(out.body_ok, "corrupt body after {completed} good transfers");
            completed += 1;
        }
        assert_eq!(completed, n, "every transfer must finish");
        stop.store(true, Ordering::Relaxed);
        sampler.join().expect("fd sampler panicked")
    });

    // Each client accounts for ~6 sockets across the whole loopback
    // topology (direct probe, relay leg, relay's two sides, origin
    // sides); anything past that is a descriptor leak.
    assert!(
        peak <= fd_baseline + 8 * n + 64,
        "fd blow-up: peak {peak} vs baseline {fd_baseline} for {n} clients"
    );

    // Each probe opens at most one relay connection (a losing relay
    // dial can be cancelled before it connects); none is duplicated.
    wait_for_active(&lab, 0);
    let snap = lab.relays()[0].lifecycle();
    assert!(
        snap.accepted > 0 && snap.accepted <= n as u64,
        "relay accept count off for {n} clients: {snap:?}"
    );
    assert!(lab.relays()[0].registry_is_empty(), "registry leaked");

    // Shutdown: park idle connections, then drain — active must fall
    // monotonically to zero with nothing forced.
    let idles: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(lab.relay_addrs()[0]).unwrap())
        .collect();
    wait_for_active(&lab, 8);
    let report = lab.relays_mut()[0].drain(Duration::from_secs(10));
    assert!(
        report.completed && report.monotone && report.forced == 0,
        "bad drain: {report:?}"
    );
    assert!(lab.relays()[0].registry_is_empty());
    assert_eq!(lab.relays()[0].active_connections(), 0);
    drop(idles);

    // Descriptors return to (near) baseline once the relay is gone.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now_fds = fd_count();
        if now_fds <= fd_baseline + 64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fds never returned to baseline: {now_fds} vs {fd_baseline}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
