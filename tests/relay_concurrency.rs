//! Integration: the loopback deployment under concurrent clients.
//!
//! The paper's relays served many clients at once; ours must too. N
//! clients hammer one origin + two relays simultaneously; every
//! download must reassemble byte-exact content and pick a sane path.

use indirect_routing::relay::{
    download, ChosenPath, ClientConfig, HarnessSpec, MiniPlanetLab, RateSchedule,
};
use std::time::Duration;

const KB: f64 = 1000.0;

#[test]
fn many_concurrent_clients_all_verify() {
    let lab = MiniPlanetLab::start(HarnessSpec {
        content_len: 120_000,
        direct: RateSchedule::constant(300.0 * KB),
        relays: vec![
            RateSchedule::constant(900.0 * KB),
            RateSchedule::constant(80.0 * KB),
        ],
    })
    .unwrap();
    let direct = lab.direct_addr();
    let origin = lab.origin_for_relays();
    let relays = lab.relay_addrs();

    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let relays = relays.clone();
                s.spawn(move || {
                    let cfg = ClientConfig {
                        path: "/file.bin".into(),
                        probe_bytes: 30_000,
                        total_bytes: 120_000,
                        timeout: Duration::from_secs(60),
                    };
                    download(direct, origin, &relays, &cfg)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    assert_eq!(outcomes.len(), 8);
    for out in outcomes {
        let out = out.expect("download succeeded");
        assert!(out.body_ok, "content corrupted under concurrency");
        // The shaper grants each connection the scheduled rate (per-flow
        // semantics), so the fast relay should keep winning; allow the
        // direct path on scheduling noise but never the slow relay.
        assert_ne!(out.choice, ChosenPath::Relay(1), "slow relay won a race");
    }
}

#[test]
fn sequential_and_concurrent_results_agree_on_choice() {
    let lab = MiniPlanetLab::start(HarnessSpec {
        content_len: 100_000,
        direct: RateSchedule::constant(100.0 * KB),
        relays: vec![RateSchedule::constant(700.0 * KB)],
    })
    .unwrap();
    // Alone:
    let solo = lab.run_download(25_000).unwrap();
    assert_eq!(solo.choice, ChosenPath::Relay(0));
    // Four at once:
    let direct = lab.direct_addr();
    let origin = lab.origin_for_relays();
    let relays = lab.relay_addrs();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let relays = relays.clone();
                s.spawn(move || {
                    let cfg = ClientConfig {
                        path: "/file.bin".into(),
                        probe_bytes: 25_000,
                        total_bytes: 100_000,
                        timeout: Duration::from_secs(60),
                    };
                    download(direct, origin, &relays, &cfg).expect("download")
                })
            })
            .collect();
        for h in handles {
            let out = h.join().expect("thread");
            assert!(out.body_ok);
            assert_eq!(out.choice, ChosenPath::Relay(0));
        }
    });
}
