//! Integration: the fault plane is a pure function of its seed, and
//! the empty plan is byte-for-byte invisible — the same guarantee
//! PR 1's determinism suite pinned for telemetry.

use indirect_routing::core::{FailoverConfig, SessionConfig};
use indirect_routing::experiments::runner;
use indirect_routing::simnet::faults::{FaultPlan, FaultSpec};
use indirect_routing::simnet::time::SimDuration;
use indirect_routing::workload;

/// Every field that could betray a behavioural difference, bitwise.
fn digest(data: &runner::MeasurementData) -> Vec<(u64, u64, u64, u32, u64, bool, bool)> {
    data.all_records()
        .map(|r| {
            (
                r.direct_throughput.to_bits(),
                r.selected_throughput.to_bits(),
                r.probe_throughput.to_bits(),
                r.failovers,
                r.stall_ms,
                r.abandoned,
                r.chose_indirect(),
            )
        })
        .collect()
}

fn scenario(seed: u64) -> workload::Scenario {
    workload::build(
        seed,
        &workload::roster::CLIENTS[..3],
        &workload::roster::INTERMEDIATES[..4],
        &workload::roster::SERVERS[..1],
        workload::Calibration::default(),
        false,
    )
}

fn spec() -> FaultSpec {
    FaultSpec {
        // Cover the spread(8) measurement schedule's 10 h span.
        horizon: SimDuration::from_secs(40_000),
        link_mtbf: SimDuration::from_secs(600),
        link_outage_mean: SimDuration::from_secs(120),
        brownout_prob: 0.25,
        brownout_factor: 0.25,
        node_mtbf: SimDuration::from_secs(1_800),
        node_downtime_mean: SimDuration::from_secs(90),
    }
}

/// `faults`: None = untouched network; Some(fault_seed) = overlay plan.
fn run(faults: Option<u64>, failover: bool) -> Vec<(u64, u64, u64, u32, u64, bool, bool)> {
    let mut sc = scenario(42);
    if let Some(fseed) = faults {
        let plan = workload::overlay_fault_plan(&sc, &spec(), fseed);
        assert!(!plan.is_empty(), "fault spec drew nothing");
        sc.network.set_fault_plan(&plan);
    }
    let mut session = SessionConfig::paper_defaults();
    if failover {
        session.failover = Some(FailoverConfig::paper_defaults());
    }
    let data = runner::run_measurement_study(
        &sc,
        0,
        workload::Schedule::measurement_study().spread(8),
        session,
    );
    digest(&data)
}

#[test]
fn same_fault_seed_is_bitwise_identical() {
    let a = run(Some(7), true);
    let b = run(Some(7), true);
    assert_eq!(a, b, "same (scenario seed, fault seed) must replay");
}

#[test]
fn faults_actually_perturb_the_study() {
    let clean = run(None, true);
    let faulted = run(Some(7), true);
    assert_ne!(clean, faulted, "plan had no observable effect");
    assert_ne!(run(Some(1), true), run(Some(2), true));
}

#[test]
fn empty_plan_matches_faultless_build_bitwise() {
    let untouched = run(None, false);
    let nulled = {
        let mut sc = scenario(42);
        sc.network.set_fault_plan(&FaultPlan::none());
        let data = runner::run_measurement_study(
            &sc,
            0,
            workload::Schedule::measurement_study().spread(8),
            SessionConfig::paper_defaults(),
        );
        digest(&data)
    };
    assert_eq!(untouched, nulled, "FaultPlan::none() must be a no-op");
}

#[test]
fn benign_failover_config_is_invisible_without_faults() {
    // Enabling failover on a healthy network must not change a single
    // bit of the study either.
    assert_eq!(run(None, false), run(None, true));
}
