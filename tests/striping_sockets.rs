//! Striped downloads over real loopback sockets.
//!
//! Drives `ir-relay`'s striped client — probe race, shared chunk
//! queue, per-path workers issuing `ir-http` range requests, shared
//! reassembly — against event-mode relay daemons, including a relay
//! killed mid-transfer to exercise the orphan-repair path.

use indirect_routing::relay::shaper::RateSchedule;
use indirect_routing::relay::{
    download, download_striped, ChosenPath, ClientConfig, OriginConfig, OriginServer, Relay,
    RelayConfig, RelayMode,
};
use std::time::Duration;

const KB: f64 = 1000.0;

fn event_relay(rate: f64) -> Relay {
    Relay::start(
        RelayConfig::shaped(RateSchedule::constant(rate))
            .with_mode(RelayMode::Event { workers: 2 }),
    )
    .unwrap()
}

fn client_cfg(total: u64) -> ClientConfig {
    ClientConfig {
        path: "/striped.bin".into(),
        probe_bytes: 50_000,
        total_bytes: total,
        timeout: Duration::from_secs(30),
    }
}

/// A striped download across the direct path and two event-mode
/// relays reassembles the exact origin content, and the fast relay
/// carries more chunks than the slow direct path.
#[test]
fn striped_download_reassembles_across_event_relays() {
    let total = 400_000;
    let direct =
        OriginServer::start(OriginConfig::new(total).shaped(RateSchedule::constant(120.0 * KB)))
            .unwrap();
    let fast_origin = OriginServer::start(OriginConfig::new(total)).unwrap();
    let relays = [event_relay(700.0 * KB), event_relay(90.0 * KB)];
    let addrs: Vec<_> = relays.iter().map(|r| r.addr()).collect();

    let out = download_striped(
        direct.addr(),
        fast_origin.addr(),
        &addrs,
        8,
        &client_cfg(total),
    )
    .unwrap();
    assert!(out.body_ok, "reassembled content must match the origin");
    assert_eq!(out.failovers, 0);
    assert_eq!(out.repaired, 0);
    let total_chunks: u64 = out.chunk_counts.iter().map(|&(_, n)| n).sum();
    assert_eq!(total_chunks, 8, "{:?}", out.chunk_counts);
    let fast = out
        .chunk_counts
        .iter()
        .find(|&&(c, _)| c == ChosenPath::Relay(0))
        .map(|&(_, n)| n)
        .unwrap();
    assert!(
        fast >= 4,
        "the fast relay should claim the most chunks: {:?}",
        out.chunk_counts
    );
}

/// One chunk degenerates to the racing client's shape: whole remainder
/// on the probe winner's warm connection, byte-identical content.
#[test]
fn single_chunk_matches_racing_download() {
    let total = 250_000;
    let direct =
        OriginServer::start(OriginConfig::new(total).shaped(RateSchedule::constant(150.0 * KB)))
            .unwrap();
    let fast_origin = OriginServer::start(OriginConfig::new(total)).unwrap();
    let relay = event_relay(800.0 * KB);
    let addrs = vec![relay.addr()];
    let cfg = client_cfg(total);

    let raced = download(direct.addr(), fast_origin.addr(), &addrs, &cfg).unwrap();
    let striped = download_striped(direct.addr(), fast_origin.addr(), &addrs, 1, &cfg).unwrap();
    assert!(raced.body_ok && striped.body_ok);
    assert_eq!(striped.chunk_counts.iter().map(|&(_, n)| n).sum::<u64>(), 1);
    // The one chunk rode the probe winner, as in the racing client.
    let (winner_path, _) = *striped
        .chunk_counts
        .iter()
        .find(|&&(_, n)| n == 1)
        .expect("one path carried the chunk");
    assert_eq!(winner_path, raced.choice);
}

/// Killing a relay mid-stripe orphans at most its current chunk; the
/// repair pass refetches the hole over the direct path and the body
/// still verifies.
#[test]
fn relay_killed_mid_stripe_is_repaired() {
    let total = 500_000;
    let direct =
        OriginServer::start(OriginConfig::new(total).shaped(RateSchedule::constant(200.0 * KB)))
            .unwrap();
    let fast_origin = OriginServer::start(OriginConfig::new(total)).unwrap();
    let mut relay = event_relay(250.0 * KB);
    let addrs = vec![relay.addr()];
    let cfg = client_cfg(total);

    let (d, f) = (direct.addr(), fast_origin.addr());
    let t = std::thread::spawn(move || download_striped(d, f, &addrs, 10, &cfg));
    std::thread::sleep(Duration::from_millis(500));
    relay.kill();
    let out = t.join().expect("client must not panic").unwrap();
    assert!(out.body_ok, "content must survive the mid-stripe kill");
    // Either the relay died mid-chunk (orphan repaired) or it happened
    // to be between chunks; in both cases the direct worker finishes
    // the queue and the body verifies. The kill window is wide enough
    // that the relay cannot have drained the whole queue first.
    let direct_chunks = out
        .chunk_counts
        .iter()
        .find(|&&(c, _)| c == ChosenPath::Direct)
        .map(|&(_, n)| n)
        .unwrap();
    assert!(direct_chunks > 0, "{:?}", out.chunk_counts);
}
