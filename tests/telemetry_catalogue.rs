//! DESIGN.md §8.1 is the single source of truth for instrument names:
//! every counter/histogram the workspace emits must have a row there.
//!
//! This test walks every crate's non-test source, extracts the string
//! literal from each `.counter("…")` / `.histogram("…")` emission
//! site, and fails if any name is missing from the catalogue table —
//! so adding an instrument without documenting it breaks the build.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Collects `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Extracts every metric name from `line` following a `prefix` such as
/// `counter("`.
fn extract_names(line: &str, prefix: &str, names: &mut BTreeSet<String>) {
    let mut rest = line;
    while let Some(i) = rest.find(prefix) {
        let tail = &rest[i + prefix.len()..];
        if let Some(end) = tail.find('"') {
            names.insert(tail[..end].to_string());
            rest = &tail[end..];
        } else {
            break;
        }
    }
}

/// Every counter/histogram name emitted from non-test, non-comment
/// code anywhere in the workspace's crates and root `src/`.
fn emitted_names() -> BTreeSet<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)
        .expect("crates/ dir")
        .map(|e| e.unwrap().path())
        .collect();
    crate_dirs.sort();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            rust_files(&src, &mut files);
        }
    }
    rust_files(&root.join("src"), &mut files);

    let mut names = BTreeSet::new();
    for f in &files {
        let text = std::fs::read_to_string(f).unwrap();
        // Inline test modules sit at the end of a file by convention;
        // everything from the first `#[cfg(test)]` down is test-only
        // and free to use throwaway instrument names.
        let body = match text.find("#[cfg(test)]") {
            Some(i) => &text[..i],
            None => &text[..],
        };
        for line in body.lines() {
            let t = line.trim_start();
            if t.starts_with("//") {
                continue;
            }
            // Only call sites (`.counter("x"`), not definitions.
            extract_names(t, ".counter(\"", &mut names);
            extract_names(t, ".histogram(\"", &mut names);
        }
    }
    names
}

#[test]
fn every_emitted_instrument_is_catalogued_in_design_md() {
    let names = emitted_names();
    assert!(
        names.contains("session_started") && names.contains("stripe_chunks_completed"),
        "scanner lost known emission sites; found {names:?}"
    );
    let design = std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("DESIGN.md"))
        .expect("DESIGN.md");
    let missing: Vec<&String> = names
        .iter()
        .filter(|n| !design.contains(&format!("`{n}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "instruments emitted but missing from the DESIGN.md §8.1 catalogue: {missing:?}"
    );
}
