//! Integration: the paper's qualitative shapes must hold on scaled-down
//! studies with a fixed seed.
//!
//! These tests are the contract of the reproduction: who wins, by
//! roughly what factor, and where the crossovers are — not absolute
//! numbers (see EXPERIMENTS.md).

use indirect_routing::experiments::{
    fig1, fig3, fig4, fig5, measurement_reports, runner, selection_reports, table1, table3, Scale,
};
use indirect_routing::workload;

fn small_measurement() -> runner::MeasurementData {
    // 8 clients × 8 relays keeps this under a second while leaving
    // enough statistics for shape checks.
    let sc = workload::build(
        2007,
        &workload::roster::CLIENTS[..8],
        &workload::roster::INTERMEDIATES[..8],
        &workload::roster::SERVERS[..1],
        workload::Calibration::default(),
        false,
    );
    runner::run_measurement_study(
        &sc,
        0,
        workload::Schedule::measurement_study().spread(20),
        indirect_routing::core::SessionConfig::paper_defaults(),
    )
}

fn small_selection() -> runner::SelectionData {
    let sc = workload::selection_study(2007);
    runner::run_selection_study(
        &sc,
        &[1, 5, 10, 35],
        workload::Schedule::selection_study().spread(60),
        indirect_routing::core::SessionConfig::paper_defaults(),
        2007,
    )
}

#[test]
fn fig1_improvement_distribution_shape() {
    let data = small_measurement();
    let imps = data.indirect_improvements_pct();
    assert!(
        imps.len() > 100,
        "too few indirect transfers: {}",
        imps.len()
    );
    let s = indirect_routing::stats::Summary::of(&imps).unwrap();
    // Paper: mean 49%, median 37%. Loose bands — shape, not numbers.
    assert!(s.mean > 10.0 && s.mean < 110.0, "mean {}", s.mean);
    assert!(s.median > 5.0 && s.median < 90.0, "median {}", s.median);
    let e = indirect_routing::stats::Ecdf::new(&imps);
    // Paper: 84% in [0,100], 12% penalties.
    assert!(
        e.mass_in(0.0, 100.0) > 0.55,
        "band mass {}",
        e.mass_in(0.0, 100.0)
    );
    assert!(e.below(0.0) < 0.30, "penalties {}", e.below(0.0));
}

#[test]
fn fig3_improvement_inversely_related_to_throughput() {
    let data = small_measurement();
    let pts = fig3::scatter(&data);
    assert!(pts.len() > 50);
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let r = indirect_routing::stats::pearson(&xs, &ys);
    assert!(r < -0.05, "no inverse relation: r = {r}");
    let ts = indirect_routing::stats::theil_sen(&xs, &ys).unwrap();
    assert!(ts < 0.0, "Theil-Sen slope {ts} not negative");
}

#[test]
fn fig4_no_systematic_trend_in_indirect_throughput() {
    let data = small_measurement();
    let report = fig4::report(&data);
    assert!(report.all_pass(), "{}", report.render());
}

#[test]
fn table1_filters_cut_penalties_monotonically() {
    let data = small_measurement();
    let classes = table1::classify(&data);
    let all = table1::penalty_stats(&data, |_| true);
    let filtered = table1::penalty_stats(&data, |c| {
        classes.category.get(&c) != Some(&workload::Category::High)
            && classes.variability.get(&c) != Some(&workload::Variability::Variable)
    });
    assert!(
        filtered.population < all.population,
        "filter removed nothing"
    );
    // Both the frequency and the magnitude of penalties shrink (or at
    // worst stay put) once High/variable clients are excluded.
    assert!(
        filtered.points_pct <= all.points_pct + 1.0,
        "filtered {} vs all {}",
        filtered.points_pct,
        all.points_pct
    );
    assert!(
        filtered.avg_pct <= all.avg_pct + 1.0,
        "filtered avg {} vs all {}",
        filtered.avg_pct,
        all.avg_pct
    );
}

#[test]
fn fig5_every_relay_sees_real_utilization() {
    let data = small_measurement();
    let report = fig5::report(&data);
    assert!(report.all_pass(), "{}", report.render());
}

#[test]
fn fig6_curve_rises_then_plateaus() {
    let data = small_selection();
    for &client in &data.clients {
        let lo = data.mean_improvement_pct(client, 1).unwrap();
        let knee = data.mean_improvement_pct(client, 10).unwrap();
        let hi = data.mean_improvement_pct(client, 35).unwrap();
        assert!(
            knee > lo,
            "{}: k=10 ({knee}) !> k=1 ({lo})",
            data.name(client)
        );
        // Plateau: k=10 already captures most of the full-set value.
        assert!(
            knee > 0.6 * hi,
            "{}: knee {knee} far below full-set {hi}",
            data.name(client)
        );
    }
}

#[test]
fn table3_utilization_correlates_with_improvement() {
    let data = small_selection();
    let rows = table3::rows_for(&data, data.clients[0]);
    assert!(rows.len() >= 5, "only {} relays ever chosen", rows.len());
    let xs: Vec<f64> = rows.iter().map(|r| r.utilization_pct).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.improvement_pct).collect();
    let rho = indirect_routing::stats::spearman(&xs, &ys);
    assert!(rho > 0.0, "no positive correlation: {rho}");
}

#[test]
fn full_quick_suite_all_checks_pass() {
    // The authoritative gate: every paper-vs-measured band in every
    // report must hold at quick scale with the default seed.
    let m = runner::measurement_study_default(2007, Scale::Quick);
    for report in measurement_reports(&m) {
        assert!(report.all_pass(), "{}", report.render());
    }
    let s = runner::selection_study_default(2007, Scale::Quick, &[1, 5, 10, 20, 35]);
    for report in selection_reports(&s) {
        assert!(report.all_pass(), "{}", report.render());
    }
}

#[test]
fn fig1_report_summarises_expected_population() {
    let data = small_measurement();
    let report = fig1::report(&data);
    assert!(report
        .render()
        .contains("transfers where the indirect path was chosen"));
    assert_eq!(report.id, "fig1");
}
