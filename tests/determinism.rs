//! Integration: everything is a pure function of its seed.

use indirect_routing::core::SessionConfig;
use indirect_routing::experiments::runner;
use indirect_routing::experiments::{fig1, table1};
use indirect_routing::workload;

fn records_digest(data: &runner::MeasurementData) -> Vec<(u64, u64, bool)> {
    data.all_records()
        .map(|r| {
            (
                r.direct_throughput.to_bits(),
                r.selected_throughput.to_bits(),
                r.chose_indirect(),
            )
        })
        .collect()
}

fn run(seed: u64) -> runner::MeasurementData {
    let sc = workload::build(
        seed,
        &workload::roster::CLIENTS[..4],
        &workload::roster::INTERMEDIATES[..4],
        &workload::roster::SERVERS[..1],
        workload::Calibration::default(),
        false,
    );
    runner::run_measurement_study(
        &sc,
        0,
        workload::Schedule::measurement_study().spread(8),
        SessionConfig::paper_defaults(),
    )
}

#[test]
fn same_seed_bitwise_identical_despite_parallelism() {
    // The study runner is multi-threaded; results must not depend on
    // scheduling.
    let a = records_digest(&run(42));
    let b = records_digest(&run(42));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = records_digest(&run(42));
    let b = records_digest(&run(43));
    assert_ne!(a, b);
}

#[test]
fn scenario_profiles_are_seed_deterministic() {
    let a = workload::planetlab_study(7);
    let b = workload::planetlab_study(7);
    assert_eq!(a.profiles, b.profiles);
    assert_eq!(a.relay_quality, b.relay_quality);
}

/// Golden-artefact snapshot: the Fig 1 / Table I CSV series of the
/// standard (reduced) study, byte-exact.
///
/// The goldens under `tests/golden/` were captured from the engine
/// *before* the incremental fair-share optimization; this test is the
/// proof that the fast engine reproduces the paper artefacts to the
/// byte. Regenerate deliberately with
/// `UPDATE_GOLDEN=1 cargo test --test determinism golden` after a
/// change that is *supposed* to move the numbers.
#[test]
fn golden_fig1_table1_csv_bytes_unchanged() {
    let data = run(42);
    let artefacts = [
        ("fig1_histogram.csv", &fig1::report(&data).csv[0].1),
        ("table1_penalties.csv", &table1::report(&data).csv[0].1),
    ];
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in &artefacts {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
        return;
    }
    for (name, bytes) in &artefacts {
        let golden = std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        assert_eq!(
            &&golden, bytes,
            "{name} diverged from the pre-optimization golden"
        );
    }
}

/// Golden-artefact snapshot: the faults artefact's cells CSV, byte-
/// exact at the quick scale the module's own tests pin (seed 11).
///
/// The fault plane stacks every layer of the stack — fault plan
/// generation, failover sessions, availability accounting — so a
/// byte-stable CSV here is the broadest single determinism check the
/// suite has. Regenerate deliberately with
/// `UPDATE_GOLDEN=1 cargo test --test determinism golden` after a
/// change that is *supposed* to move the numbers.
#[test]
fn golden_faults_csv_bytes_unchanged() {
    use indirect_routing::experiments::faults;
    let report = faults::report(11, runner::Scale::Quick);
    let artefacts = [("faults_cells.csv", &report.csv[0].1)];
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in &artefacts {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
        return;
    }
    for (name, bytes) in &artefacts {
        let golden = std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        assert_eq!(&&golden, bytes, "{name} diverged from the golden snapshot");
    }
}

/// Golden-artefact snapshot: the tournament artefact's cells CSV,
/// byte-exact at quick scale (seed 11, matching the faults golden).
///
/// The tournament stacks the whole new path plane — k-shortest chain
/// enumeration, adaptive/backpressure state, the selector session
/// driver, probe-overhead telemetry — on top of the probe race, so a
/// byte-stable CSV here pins every policy at once. Regenerate
/// deliberately with `UPDATE_GOLDEN=1 cargo test --test determinism
/// golden` after a change that is *supposed* to move the numbers.
#[test]
fn golden_tournament_csv_bytes_unchanged() {
    use indirect_routing::experiments::tournament;
    let report = tournament::report(11, runner::Scale::Quick);
    let artefacts = [("tournament_cells.csv", &report.csv[0].1)];
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in &artefacts {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
        return;
    }
    for (name, bytes) in &artefacts {
        let golden = std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        assert_eq!(&&golden, bytes, "{name} diverged from the golden snapshot");
    }
}

/// Golden-artefact snapshot: the striping artefact's cells CSV,
/// byte-exact at quick scale (seed 11, matching the faults golden).
///
/// The striping sweep stacks the chunk scheduler — EWMA rate seeds,
/// drift-steal and stall-death rebalancing, best-k stripe sets from
/// the policy plane — on top of raced baselines, so a byte-stable CSV
/// here pins the whole striped session protocol. CI re-renders this
/// CSV at `--threads` 1, 2 and 4 and diffs against this file.
/// Regenerate deliberately with `UPDATE_GOLDEN=1 cargo test --test
/// determinism golden` after a change that is *supposed* to move the
/// numbers.
#[test]
fn golden_striping_csv_bytes_unchanged() {
    use indirect_routing::experiments::striping;
    let report = striping::report(11, runner::Scale::Quick);
    let artefacts = [("striping_cells.csv", &report.csv[0].1)];
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in &artefacts {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
        return;
    }
    for (name, bytes) in &artefacts {
        let golden = std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        assert_eq!(&&golden, bytes, "{name} diverged from the golden snapshot");
    }
}

/// The partition-sharded engine's thread count is an execution knob,
/// never a semantic one: the pinned seed-42 Fig 1 study must render
/// byte-identical Fig 1 / Table I CSVs at `threads` 1, 2, 4 and 8, all
/// equal to the incremental engine's bytes (which the golden test above
/// pins), and every run must hit the pinned boundary-count canary.
#[test]
fn sharded_engine_thread_count_never_moves_study_bytes() {
    use indirect_routing::core::EngineMode;
    use ir_telemetry::Telemetry;
    use std::sync::Arc;

    let study = |engine: EngineMode| {
        let sc = workload::build(
            42,
            &workload::roster::CLIENTS[..4],
            &workload::roster::INTERMEDIATES[..4],
            &workload::roster::SERVERS[..1],
            workload::Calibration::default(),
            false,
        );
        let mut cfg = SessionConfig::paper_defaults();
        cfg.engine = engine;
        let tel = Arc::new(Telemetry::new());
        let data = runner::run_measurement_study_traced(
            &sc,
            0,
            workload::Schedule::measurement_study().spread(8),
            cfg,
            Some(Arc::clone(&tel)),
        );
        let boundaries = tel
            .metrics
            .snapshot()
            .counter("simnet_boundaries", &vec![])
            .unwrap_or(0);
        (
            fig1::report(&data).csv[0].1.clone(),
            table1::report(&data).csv[0].1.clone(),
            boundaries,
        )
    };

    let base = study(EngineMode::Incremental);
    assert_eq!(
        base.2,
        indirect_routing::experiments::bench_gate::PINNED_FIG1_BOUNDARIES,
        "incremental run missed the pinned boundary canary"
    );
    for threads in [1usize, 2, 4, 8] {
        let sharded = study(EngineMode::Sharded { threads });
        assert_eq!(
            sharded.0, base.0,
            "fig1 CSV bytes moved at --threads {threads}"
        );
        assert_eq!(
            sharded.1, base.1,
            "table1 CSV bytes moved at --threads {threads}"
        );
        assert_eq!(
            sharded.2, base.2,
            "boundary canary moved at --threads {threads}"
        );
    }
}

#[test]
fn selection_study_deterministic() {
    let mk = || {
        let sc = workload::selection_study(9);
        let data = runner::run_selection_study(
            &sc,
            &[1, 3],
            workload::Schedule::selection_study().spread(10),
            SessionConfig::paper_defaults(),
            9,
        );
        data.runs
            .iter()
            .flat_map(|r| r.records.iter())
            .map(|r| (r.selected_throughput.to_bits(), r.candidates.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(mk(), mk());
}
