//! Integration: the flow engine and the standalone analytic
//! transfer-time integration must agree for a solo flow — they are two
//! implementations of the same fluid model.

use indirect_routing::simnet::prelude::*;
use indirect_routing::tcp::{transfer_time, TcpConfig, TcpRateCap};

fn world_with(process: Box<dyn BandwidthProcess>) -> (Network, Route) {
    let mut topo = Topology::new();
    let a = topo.add_node("a", NodeKind::Client);
    let b = topo.add_node("b", NodeKind::Server);
    let l = topo.add_link(a, b, SimDuration::from_millis(50));
    let route = topo.route(&[a, b]).unwrap();
    let mut net = Network::new(topo, 1.0);
    net.set_link_process(l, process);
    (net, route)
}

fn check_agreement(
    process_a: Box<dyn BandwidthProcess>,
    mut process_b: Box<dyn BandwidthProcess>,
    bytes: u64,
) {
    let cfg = TcpConfig::for_rtt(SimDuration::from_millis(100)).with_loss(0.0);
    let (mut net, route) = world_with(process_a);
    let id = net.start_flow(route, bytes, Box::new(TcpRateCap::new(cfg)));
    let engine = net
        .run_flow(id, SimTime::from_secs(100_000))
        .expect("engine finished");

    let analytic = transfer_time(
        bytes,
        SimTime::ZERO,
        cfg,
        process_b.as_mut(),
        SimDuration::from_secs(100_000),
    )
    .expect("analytic finished");

    let e = engine.finished.as_secs_f64();
    let a = analytic.duration.as_secs_f64();
    assert!(
        (e - a).abs() <= 1e-3 * a.max(1.0),
        "engine {e}s vs analytic {a}s for {bytes} bytes"
    );
}

#[test]
fn agree_on_constant_link() {
    for bytes in [10_000u64, 100_000, 2_000_000] {
        check_agreement(
            Box::new(ConstantProcess::new(150_000.0)),
            Box::new(ConstantProcess::new(150_000.0)),
            bytes,
        );
    }
}

#[test]
fn agree_on_piecewise_link() {
    let mk = || {
        Box::new(PiecewiseProcess::new(vec![
            (SimTime::ZERO, 50_000.0),
            (SimTime::from_secs(5), 400_000.0),
            (SimTime::from_secs(12), 20_000.0),
        ]))
    };
    for bytes in [30_000u64, 500_000, 3_000_000] {
        check_agreement(mk(), mk(), bytes);
    }
}

#[test]
fn agree_on_stochastic_link() {
    let mk = || {
        Box::new(RegimeSwitchingProcess::new(
            vec![40_000.0, 120_000.0, 300_000.0],
            SimDuration::from_secs(30),
            0.2,
            99,
        ))
    };
    for bytes in [80_000u64, 1_000_000] {
        check_agreement(mk(), mk(), bytes);
    }
}
