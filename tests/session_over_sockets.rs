//! Integration: one protocol, two transports.
//!
//! The same `ir_core::run_session` call is executed against (a) the
//! fluid simulator and (b) a live loopback deployment with matching
//! path rates. Both must make the same selection, and their measured
//! improvements must agree to within the fidelity gap between a fluid
//! TCP model and a real kernel stack.

use indirect_routing::core::{
    run_session, ControlMode, FirstPortion, ProbeMode, SessionConfig, SimTransport, StaticSingle,
    TransferRecord,
};
use indirect_routing::relay::{HarnessSpec, MiniPlanetLab, RateSchedule, RealTransport};
use indirect_routing::simnet::prelude::*;

const KB: f64 = 1000.0;

fn session_cfg(file: u64, probe: u64) -> SessionConfig {
    SessionConfig {
        probe_bytes: probe,
        file_bytes: file,
        probe_mode: ProbeMode::FirstToFinish,
        control: ControlMode::Concurrent,
        horizon: SimDuration::from_secs(120),
        failover: None,
        engine: EngineMode::Incremental,
        mode: indirect_routing::core::SessionMode::Racing,
    }
}

/// Runs the session on the simulator with the given path rates.
fn run_sim(direct_rate: f64, overlay_rate: f64, file: u64, probe: u64) -> TransferRecord {
    let mut t = Topology::new();
    let c = t.add_node("c", NodeKind::Client);
    let v = t.add_node("v", NodeKind::Intermediate);
    let s = t.add_node("s", NodeKind::Server);
    let l0 = t.add_link_shared(c, s, SimDuration::from_millis(1), Sharing::PerFlow);
    let l1 = t.add_link_shared(c, v, SimDuration::from_millis(1), Sharing::PerFlow);
    let l2 = t.add_link_shared(v, s, SimDuration::from_millis(1), Sharing::PerFlow);
    let mut net = Network::new(t, 1.0);
    net.set_link_process(l0, Box::new(ConstantProcess::new(direct_rate)));
    net.set_link_process(l1, Box::new(ConstantProcess::new(overlay_rate)));
    net.set_link_process(l2, Box::new(ConstantProcess::new(100e6)));
    let mut transport = SimTransport::new(net);
    let mut policy = StaticSingle(v);
    let mut predictor = FirstPortion;
    run_session(
        &mut transport,
        &mut policy,
        &mut predictor,
        c,
        s,
        &[v],
        0,
        &session_cfg(file, probe),
    )
}

/// Runs the identical session over real sockets with matching shapers.
fn run_real(direct_rate: f64, overlay_rate: f64, file: u64, probe: u64) -> TransferRecord {
    let lab = MiniPlanetLab::start(HarnessSpec {
        content_len: file,
        direct: RateSchedule::constant(direct_rate),
        relays: vec![RateSchedule::constant(overlay_rate)],
    })
    .unwrap();
    let (mut transport, client, server, relays) = RealTransport::for_lab(&lab);
    let mut policy = StaticSingle(relays[0]);
    let mut predictor = FirstPortion;
    run_session(
        &mut transport,
        &mut policy,
        &mut predictor,
        client,
        server,
        &relays,
        0,
        &session_cfg(file, probe),
    )
}

#[test]
fn sim_and_real_agree_when_relay_wins() {
    let (d, o, file, probe) = (120.0 * KB, 700.0 * KB, 300_000, 50_000);
    let sim = run_sim(d, o, file, probe);
    let real = run_real(d, o, file, probe);
    assert!(sim.chose_indirect(), "sim: {sim:?}");
    assert!(real.chose_indirect(), "real: {real:?}");
    // Improvements agree in regime: both solidly positive.
    assert!(
        sim.improvement() > 0.5,
        "sim {:+.1}%",
        sim.improvement_pct()
    );
    assert!(
        real.improvement() > 0.5,
        "real {:+.1}%",
        real.improvement_pct()
    );
}

#[test]
fn sim_and_real_agree_when_direct_wins() {
    let (d, o, file, probe) = (800.0 * KB, 90.0 * KB, 300_000, 50_000);
    let sim = run_sim(d, o, file, probe);
    let real = run_real(d, o, file, probe);
    assert!(!sim.chose_indirect(), "sim: {sim:?}");
    assert!(!real.chose_indirect(), "real: {real:?}");
    assert!(sim.improvement().abs() < 0.25);
    assert!(real.improvement().abs() < 0.35);
}

#[test]
fn real_throughputs_land_near_shaped_rates() {
    let (d, o, file, probe) = (150.0 * KB, 600.0 * KB, 240_000, 40_000);
    let real = run_real(d, o, file, probe);
    assert!(real.chose_indirect());
    // The control measured ~the direct shaper's rate; burst credit can
    // push a short transfer somewhat above the steady rate.
    assert!(
        real.direct_throughput > 0.5 * d && real.direct_throughput < 2.0 * d,
        "control measured {:.0} vs shaped {:.0}",
        real.direct_throughput,
        d
    );
    // The selecting process did visibly better than the direct rate.
    assert!(
        real.selected_throughput > 1.3 * d,
        "selected {:.0} vs direct {:.0}",
        real.selected_throughput,
        d
    );
}
