//! The paper's §2.2 measurement study, end to end.
//!
//! Rebuilds the PlanetLab deployment (22 international clients, 21 US
//! relays, four web sites), runs the probe/select protocol on a
//! schedule, and prints the Fig 1 histogram, Table I penalty statistics
//! and Fig 5 utilizations with the paper's numbers alongside.
//!
//! ```text
//! cargo run --release --example planetlab_study [seed]
//! ```

use indirect_routing::experiments::{fig1, fig5, measurement_study_default, table1, Scale};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2007);
    eprintln!("running the §2.2 measurement study (seed {seed})...");
    let t0 = std::time::Instant::now();
    let data = measurement_study_default(seed, Scale::Quick);
    eprintln!(
        "{} transfers simulated in {:.1}s\n",
        data.all_records().count(),
        t0.elapsed().as_secs_f64()
    );

    for report in [
        fig1::report(&data),
        table1::report(&data),
        fig5::report(&data),
    ] {
        println!("{}\n", report.render());
    }
}
