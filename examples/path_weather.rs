//! Path "weather": export the time-varying available bandwidth of a
//! client's paths to CSV.
//!
//! Shows the tracer API and the process compositors: the direct path is
//! a regime-switching process with a diurnal load curve on top; the
//! overlay path wanders gently with rare jump episodes. These are the
//! raw materials every experiment's phenomena are made of — run this,
//! plot the CSVs, and Fig 4 stops being abstract.
//!
//! ```text
//! cargo run --release --example path_weather [out_dir]
//! ```

use indirect_routing::simnet::prelude::*;
use indirect_routing::simnet::tracer::trace_process;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "weather".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // A Low client's direct path: ~1 Mbps median, regime swings, plus a
    // diurnal dip (busy evenings depress available bandwidth by 35%).
    let direct_base = RegimeSwitchingProcess::with_holds(
        vec![55_000.0, 125_000.0, 240_000.0],
        vec![
            SimDuration::from_secs(40),
            SimDuration::from_secs(900),
            SimDuration::from_secs(120),
        ],
        0.25,
        7,
    );
    let mut direct = DiurnalProcess::new(
        Box::new(direct_base),
        0.35,
        SimDuration::from_secs(86_400),
        SimDuration::from_secs(72_000), // peak load at 20:00
    );

    // The overlay path: steadier, with rare half-hour collapses.
    let overlay_base = Ar1LogProcess::new(160_000.0, 0.9, 0.05, SimDuration::from_secs(60), 11);
    let mut overlay = JumpMixProcess::new(
        Box::new(overlay_base),
        SimDuration::from_secs(14_400),
        SimDuration::from_secs(1_800),
        0.3,
        13,
    );

    let end = SimTime::from_secs(86_400); // one day
    let step = SimDuration::from_secs(60);
    let d = trace_process(&mut direct, SimTime::ZERO, end, step);
    let o = trace_process(&mut overlay, SimTime::ZERO, end, step);

    let dp = format!("{out_dir}/direct.csv");
    let op = format!("{out_dir}/overlay.csv");
    std::fs::write(&dp, d.to_csv()).expect("write direct.csv");
    std::fs::write(&op, o.to_csv()).expect("write overlay.csv");

    println!("sampled one simulated day at 60 s resolution:");
    println!(
        "  direct:  mean {:>7.0} B/s, CoV {:.2}  -> {dp}",
        d.mean(),
        d.cov()
    );
    println!(
        "  overlay: mean {:>7.0} B/s, CoV {:.2}  -> {op}",
        o.mean(),
        o.cov()
    );
    println!(
        "\nthe probe/select protocol wins whenever the overlay line sits\n\
         above the direct line for longer than one transfer (~20 s)."
    );
}
