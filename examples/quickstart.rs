//! Quickstart: one probed transfer over a three-node world.
//!
//! Builds a client / relay / server topology where the default path is
//! congested and the overlay path is not, then runs the paper's §2.1
//! protocol — probe race, select, fetch the remainder — and prints the
//! improvement over the direct-only control download.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use indirect_routing::core::{
    run_session, FirstPortion, PathSpec, SessionConfig, SimTransport, StaticSingle,
};
use indirect_routing::simnet::prelude::*;
use indirect_routing::stats::table::fmt_rate;

fn main() {
    // --- Topology: client -> server (direct), client -> relay -> server.
    let mut topo = Topology::new();
    let client = topo.add_node("client", NodeKind::Client);
    let relay = topo.add_node("relay", NodeKind::Intermediate);
    let server = topo.add_node("server", NodeKind::Server);
    let l_direct = topo.add_link_shared(
        client,
        server,
        SimDuration::from_millis(90),
        Sharing::PerFlow,
    );
    let l_up = topo.add_link_shared(
        client,
        relay,
        SimDuration::from_millis(80),
        Sharing::PerFlow,
    );
    let l_down = topo.add_link_shared(
        relay,
        server,
        SimDuration::from_millis(10),
        Sharing::PerFlow,
    );

    // --- Path conditions: a 0.8 Mbps direct path with regime swings; a
    //     steadier 2 Mbps overlay link; a fast relay-server leg.
    let mut net = Network::new(topo, 1.0);
    net.set_link_process(
        l_direct,
        Box::new(RegimeSwitchingProcess::new(
            vec![40_000.0, 100_000.0, 180_000.0],
            SimDuration::from_secs(120),
            0.15,
            7,
        )),
    );
    net.set_link_process(l_up, Box::new(ConstantProcess::new(250_000.0)));
    net.set_link_process(l_down, Box::new(ConstantProcess::new(10_000_000.0)));

    // --- The paper's protocol: x = 100 KB probe, 2 MB file.
    let mut transport = SimTransport::new(net);
    let mut policy = StaticSingle(relay);
    let mut predictor = FirstPortion;
    let cfg = SessionConfig::paper_defaults();

    println!("direct path:   {}", PathSpec::direct(client, server));
    println!(
        "indirect path: {}\n",
        PathSpec::indirect(client, server, relay)
    );

    for i in 0..5 {
        let rec = run_session(
            &mut transport,
            &mut policy,
            &mut predictor,
            client,
            server,
            &[relay],
            i,
            &cfg,
        );
        println!(
            "transfer {}: chose {}  direct {}  selected {}  improvement {:+.1}%",
            i,
            if rec.chose_indirect() {
                "INDIRECT"
            } else {
                "direct  "
            },
            fmt_rate(rec.direct_throughput * 8.0),
            fmt_rate(rec.selected_throughput * 8.0),
            rec.improvement_pct()
        );
        // Next transfer six minutes later, like the paper's schedule.
        let next = transport.network().now() + SimDuration::from_secs(360);
        transport.network_mut().advance_until(next);
    }
}
