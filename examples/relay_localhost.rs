//! Real sockets: the indirect-routing system on loopback.
//!
//! Starts an origin server and three relay daemons with token-bucket
//! shapers emulating heterogeneous path rates, then runs probed
//! downloads with genuine TCP connections and HTTP range requests —
//! the same protocol the simulator studies, exercised end to end.
//!
//! ```text
//! cargo run --release --example relay_localhost
//! ```

use indirect_routing::relay::{ChosenPath, HarnessSpec, MiniPlanetLab, RateSchedule};
use std::time::Duration;

const KB: f64 = 1000.0;

fn main() {
    // Direct path: 180 KB/s that collapses to 50 KB/s after 4 seconds.
    // Relays: one poor (70 KB/s), one decent (240 KB/s), one good but
    // jittery (starts at 400 KB/s, dips at t = 6 s).
    let lab = MiniPlanetLab::start(HarnessSpec {
        content_len: 600_000,
        direct: RateSchedule::piecewise(vec![
            (Duration::ZERO, 180.0 * KB),
            (Duration::from_secs(4), 50.0 * KB),
        ]),
        relays: vec![
            RateSchedule::constant(70.0 * KB),
            RateSchedule::constant(240.0 * KB),
            RateSchedule::piecewise(vec![
                (Duration::ZERO, 400.0 * KB),
                (Duration::from_secs(6), 90.0 * KB),
            ]),
        ],
    })
    .expect("harness start");

    println!("origin (direct path) at {}", lab.direct_addr());
    for (i, a) in lab.relay_addrs().iter().enumerate() {
        println!("relay {i} at {a}");
    }
    println!();

    // The paper's methodology over real bytes: each round runs the
    // selecting process and a direct-only control concurrently.
    let rounds = lab
        .run_study(60_000, 4, Duration::from_secs(2))
        .expect("study");
    for (i, r) in rounds.iter().enumerate() {
        let choice = match r.choice {
            ChosenPath::Direct => "direct".to_string(),
            ChosenPath::Relay(k) => format!("relay {k}"),
        };
        println!(
            "round {i}: chose {choice:8}  selected {:6.0} KB/s  control {:6.0} KB/s  improvement {:+5.0}%  content {}",
            r.selected_throughput / KB,
            r.control_throughput / KB,
            r.improvement() * 100.0,
            if r.body_ok { "verified" } else { "CORRUPT" }
        );
    }
}
