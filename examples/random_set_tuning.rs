//! Tuning the random-set size (the paper's §4) and trying the paper's
//! proposed extension.
//!
//! Sweeps the random-set size k like Fig 6, then pits the uniform
//! random-set policy against the §6 suggestion — weight the sampling by
//! historical utilization — and two bandit baselines, all on the same
//! scenario.
//!
//! ```text
//! cargo run --release --example random_set_tuning [seed]
//! ```

use indirect_routing::core::{
    EpsilonGreedy, RandomSet, SelectionPolicy, SessionConfig, Ucb1, UtilizationWeighted,
};
use indirect_routing::experiments::runner::{run_selection_study, run_task_with};
use indirect_routing::stats::Summary;
use indirect_routing::workload::{selection_study, Schedule};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2007);
    let scenario = selection_study(seed);
    let schedule = Schedule::selection_study().spread(120);
    let session = SessionConfig::paper_defaults();

    // --- Part 1: the Fig 6 sweep on a few k values.
    println!("part 1: random-set size sweep (mean improvement %)\n");
    let ks = [1, 3, 5, 10, 20, 35];
    let data = run_selection_study(&scenario, &ks, schedule, session, seed);
    print!("{:>4}", "k");
    for &c in &data.clients {
        print!("{:>10}", data.name(c));
    }
    println!();
    for &k in &ks {
        print!("{k:>4}");
        for &c in &data.clients {
            match data.mean_improvement_pct(c, k) {
                Some(m) => print!("{m:>+10.1}"),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }

    // --- Part 2: policy shoot-out at k = 5 for the first client.
    println!(
        "\npart 2: policy comparison (client {}, 120 transfers)\n",
        scenario.name(scenario.clients[0])
    );
    let client = scenario.clients[0];
    let server = scenario.servers[0];
    let policies: Vec<(&str, Box<dyn SelectionPolicy>)> = vec![
        (
            "uniform random set (k=5)",
            Box::new(RandomSet::new(5, seed)),
        ),
        (
            "utilization-weighted (k=5)",
            Box::new(UtilizationWeighted::new(5, seed)),
        ),
        (
            "epsilon-greedy (0.1)",
            Box::new(EpsilonGreedy::new(0.1, seed)),
        ),
        ("ucb1", Box::new(Ucb1::new())),
    ];
    for (name, policy) in policies {
        let records = run_task_with(
            &scenario,
            client,
            server,
            &scenario.relays,
            policy,
            schedule,
            &session,
        );
        let imps: Vec<f64> = records
            .iter()
            .map(|r| r.improvement_pct())
            .filter(|v| v.is_finite())
            .collect();
        let s = Summary::of(&imps).expect("non-empty");
        println!(
            "{name:28} mean {:+6.1}%  median {:+6.1}%  chose indirect {:3.0}%",
            s.mean,
            s.median,
            records.iter().filter(|r| r.chose_indirect()).count() as f64 / records.len() as f64
                * 100.0
        );
    }
}
