//! Property tests for the statistics substrate.

use ir_stats::{mann_kendall, pearson, spearman, Ecdf, Histogram, OnlineStats, Summary, Trend};
use proptest::prelude::*;

fn arb_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn online_merge_equals_sequential(data in arb_sample(), split_frac in 0.0f64..1.0) {
        let split = ((data.len() - 1) as f64 * split_frac) as usize;
        let seq: OnlineStats = data.iter().copied().collect();
        let a: OnlineStats = data[..split].iter().copied().collect();
        let b: OnlineStats = data[split..].iter().copied().collect();
        let mut merged = a;
        merged.merge(&b);
        prop_assert_eq!(merged.count(), seq.count());
        prop_assert!((merged.mean() - seq.mean()).abs() <= 1e-6 * seq.mean().abs().max(1.0));
        prop_assert!((merged.variance() - seq.variance()).abs() <= 1e-4 * seq.variance().abs().max(1.0));
    }

    #[test]
    fn summary_bounds(data in arb_sample()) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.stdev >= 0.0);
        prop_assert!(s.rms + 1e-9 >= s.mean.abs() * 0.999999);
        prop_assert_eq!(s.count, data.len());
    }

    #[test]
    fn histogram_conserves_mass(data in arb_sample(), bins in 1usize..50) {
        let h = Histogram::of(-1e5, 1e5, bins, &data);
        let in_range: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(in_range + h.underflow() + h.overflow(), data.len() as u64);
    }

    #[test]
    fn histogram_bins_partition(data in arb_sample(), bins in 1usize..30) {
        let h = Histogram::of(-1e6, 1e6, bins, &data);
        // Every in-range point is counted exactly once: since bounds
        // cover the sample space, no under/overflow.
        prop_assert_eq!(h.underflow() + h.overflow(), 0);
        let total: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(total, data.len() as u64);
    }

    #[test]
    fn ecdf_is_monotone(data in arb_sample(), probes in prop::collection::vec(-2e6f64..2e6, 2..20)) {
        let e = Ecdf::new(&data);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &sorted {
            let c = e.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
    }

    #[test]
    fn correlation_in_unit_interval(data in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 3..100)) {
        let xs: Vec<f64> = data.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = data.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        if r.is_finite() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
        let rho = spearman(&xs, &ys);
        if rho.is_finite() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
        }
    }

    #[test]
    fn correlation_is_scale_invariant(
        data in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..50),
        scale in 0.001f64..1000.0,
        shift in -1e3f64..1e3,
    ) {
        let xs: Vec<f64> = data.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = data.iter().map(|p| p.1).collect();
        let xs2: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let a = pearson(&xs, &ys);
        let b = pearson(&xs2, &ys);
        if a.is_finite() && b.is_finite() {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn mann_kendall_detects_planted_monotone(data in prop::collection::vec(0.0f64..1.0, 30..100)) {
        // Turn arbitrary noise into a strictly increasing series; the
        // test must call it Increasing.
        let mut acc = 0.0;
        let series: Vec<f64> = data.iter().map(|&d| { acc += d + 0.001; acc }).collect();
        let mk = mann_kendall(&series);
        prop_assert_eq!(mk.trend(0.01), Trend::Increasing);
        // And its mirror must be Decreasing.
        let mirrored: Vec<f64> = series.iter().map(|v| -v).collect();
        prop_assert_eq!(mann_kendall(&mirrored).trend(0.01), Trend::Decreasing);
    }

    #[test]
    fn mann_kendall_symmetric(data in prop::collection::vec(-1e3f64..1e3, 3..60)) {
        let mk = mann_kendall(&data);
        let mirrored: Vec<f64> = data.iter().map(|v| -v).collect();
        let mk2 = mann_kendall(&mirrored);
        prop_assert_eq!(mk.s, -mk2.s);
        prop_assert!((mk.p_value - mk2.p_value).abs() < 1e-9);
    }
}
