//! Randomized tests for the statistics substrate.
//!
//! These were proptest-based; the offline build has no proptest, so the
//! same invariants are checked over seeded random case sweeps (every
//! failure reproduces from the printed case number).

use ir_stats::{mann_kendall, pearson, spearman, Ecdf, Histogram, OnlineStats, Summary, Trend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gen_sample(rng: &mut StdRng) -> Vec<f64> {
    (0..rng.gen_range(1..200usize))
        .map(|_| rng.gen_range(-1e6f64..1e6))
        .collect()
}

#[test]
fn online_merge_equals_sequential() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_0000 + case);
        let data = gen_sample(&mut rng);
        let split_frac: f64 = rng.gen_range(0.0..1.0);
        let split = ((data.len() - 1) as f64 * split_frac) as usize;
        let seq: OnlineStats = data.iter().copied().collect();
        let a: OnlineStats = data[..split].iter().copied().collect();
        let b: OnlineStats = data[split..].iter().copied().collect();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), seq.count(), "case {case}");
        assert!(
            (merged.mean() - seq.mean()).abs() <= 1e-6 * seq.mean().abs().max(1.0),
            "case {case}"
        );
        assert!(
            (merged.variance() - seq.variance()).abs() <= 1e-4 * seq.variance().abs().max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn summary_bounds() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_1000 + case);
        let data = gen_sample(&mut rng);
        let s = Summary::of(&data).unwrap();
        assert!(s.min <= s.median && s.median <= s.max, "case {case}");
        assert!(s.min <= s.mean && s.mean <= s.max, "case {case}");
        assert!(s.stdev >= 0.0, "case {case}");
        assert!(s.rms + 1e-9 >= s.mean.abs() * 0.999999, "case {case}");
        assert_eq!(s.count, data.len(), "case {case}");
    }
}

#[test]
fn histogram_conserves_mass() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_2000 + case);
        let data = gen_sample(&mut rng);
        let bins = rng.gen_range(1..50usize);
        let h = Histogram::of(-1e5, 1e5, bins, &data);
        let in_range: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        assert_eq!(
            in_range + h.underflow() + h.overflow(),
            data.len() as u64,
            "case {case}"
        );
    }
}

#[test]
fn histogram_bins_partition() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_3000 + case);
        let data = gen_sample(&mut rng);
        let bins = rng.gen_range(1..30usize);
        let h = Histogram::of(-1e6, 1e6, bins, &data);
        // Every in-range point is counted exactly once: since bounds
        // cover the sample space, no under/overflow.
        assert_eq!(h.underflow() + h.overflow(), 0, "case {case}");
        let total: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        assert_eq!(total, data.len() as u64, "case {case}");
    }
}

#[test]
fn ecdf_is_monotone() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_4000 + case);
        let data = gen_sample(&mut rng);
        let mut probes: Vec<f64> = (0..rng.gen_range(2..20usize))
            .map(|_| rng.gen_range(-2e6f64..2e6))
            .collect();
        let e = Ecdf::new(&data);
        probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &probes {
            let c = e.cdf(x);
            assert!((0.0..=1.0).contains(&c), "case {case}");
            assert!(c + 1e-12 >= prev, "case {case}");
            prev = c;
        }
    }
}

#[test]
fn correlation_in_unit_interval() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_5000 + case);
        let n = rng.gen_range(3..100usize);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e4f64..1e4)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e4f64..1e4)).collect();
        let r = pearson(&xs, &ys);
        if r.is_finite() {
            assert!(
                (-1.0 - 1e-9..=1.0 + 1e-9).contains(&r),
                "case {case}: r = {r}"
            );
        }
        let rho = spearman(&xs, &ys);
        if rho.is_finite() {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho), "case {case}");
        }
    }
}

#[test]
fn correlation_is_scale_invariant() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_6000 + case);
        let n = rng.gen_range(3..50usize);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e3f64..1e3)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e3f64..1e3)).collect();
        let scale = rng.gen_range(0.001f64..1000.0);
        let shift = rng.gen_range(-1e3f64..1e3);
        let xs2: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let a = pearson(&xs, &ys);
        let b = pearson(&xs2, &ys);
        if a.is_finite() && b.is_finite() {
            assert!((a - b).abs() < 1e-6, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn mann_kendall_detects_planted_monotone() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_7000 + case);
        // Turn arbitrary noise into a strictly increasing series; the
        // test must call it Increasing.
        let mut acc = 0.0;
        let series: Vec<f64> = (0..rng.gen_range(30..100usize))
            .map(|_| {
                acc += rng.gen_range(0.0f64..1.0) + 0.001;
                acc
            })
            .collect();
        let mk = mann_kendall(&series);
        assert_eq!(mk.trend(0.01), Trend::Increasing, "case {case}");
        // And its mirror must be Decreasing.
        let mirrored: Vec<f64> = series.iter().map(|v| -v).collect();
        assert_eq!(
            mann_kendall(&mirrored).trend(0.01),
            Trend::Decreasing,
            "case {case}"
        );
    }
}

#[test]
fn mann_kendall_symmetric() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x57_8000 + case);
        let data: Vec<f64> = (0..rng.gen_range(3..60usize))
            .map(|_| rng.gen_range(-1e3f64..1e3))
            .collect();
        let mk = mann_kendall(&data);
        let mirrored: Vec<f64> = data.iter().map(|v| -v).collect();
        let mk2 = mann_kendall(&mirrored);
        assert_eq!(mk.s, -mk2.s, "case {case}");
        assert!((mk.p_value - mk2.p_value).abs() < 1e-9, "case {case}");
    }
}
