//! Uniform-bin histograms with underflow/overflow bins.
//!
//! Figures 1 and 2 of the paper are histograms of percent throughput
//! improvement. Improvements are unbounded above (the paper reports a
//! maximum penalty of 3840%), so the histogram keeps explicit underflow
//! and overflow bins rather than silently clipping.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A histogram over `[lo, hi)` with `bins` equal-width bins plus
/// underflow (`x < lo`) and overflow (`x >= hi`) bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be < hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Floating-point rounding can land exactly on len(); clamp.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every observation in `data`.
    pub fn extend(&mut self, data: &[f64]) {
        for &x in data {
            self.push(x);
        }
    }

    /// Builds a histogram from a sample in one call.
    pub fn of(lo: f64, hi: f64, bins: usize, data: &[f64]) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        h.extend(data);
        h
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the underflow bin (`x < lo`).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count in the overflow bin (`x >= hi`).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of in-range bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in in-range bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// `[lo, hi)` edges of in-range bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Midpoint of in-range bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        (a + b) / 2.0
    }

    /// Fraction of all observations (incl. under/overflow) in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Fraction of observations lying in `[a, b)`, computed from raw bins
    /// only — `a`/`b` must align with bin edges for an exact answer.
    pub fn mass_between(&self, a: f64, b: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut n = 0u64;
        for i in 0..self.counts.len() {
            let (lo, hi) = self.bin_edges(i);
            if lo >= a && hi <= b {
                n += self.counts[i];
            }
        }
        n as f64 / self.total as f64
    }

    /// Index of the fullest in-range bin, or `None` if all are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &max) = self.counts.iter().enumerate().max_by_key(|(_, &c)| c)?;
        if max == 0 {
            None
        } else {
            Some(idx)
        }
    }

    /// `(bin_center, count)` series, e.g. for CSV export.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// Renders an ASCII bar chart, `width` columns for the largest bar.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            let _ = writeln!(
                out,
                "{:>18} | {}",
                format!("< {:.0}", self.lo),
                self.underflow
            );
        }
        for i in 0..self.counts.len() {
            let (a, b) = self.bin_edges(i);
            let bar_len = (self.counts[i] as f64 / max as f64 * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{:>18} | {} {}",
                format!("[{a:.0},{b:.0})"),
                "#".repeat(bar_len),
                self.counts[i]
            );
        }
        if self.overflow > 0 {
            let _ = writeln!(
                out,
                "{:>18} | {}",
                format!(">= {:.0}", self.hi),
                self.overflow
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.0);
        h.push(0.5);
        h.push(9.99);
        h.push(5.0);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.1);
        h.push(1.0); // hi is exclusive
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn mass_conservation() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.37 - 50.0).collect();
        let h = Histogram::of(-100.0, 100.0, 20, &data);
        let in_range: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        assert_eq!(in_range + h.underflow() + h.overflow(), h.total());
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn bin_edges_and_centers() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 25.0));
        assert_eq!(h.bin_edges(3), (75.0, 100.0));
        assert_eq!(h.bin_center(1), 37.5);
    }

    #[test]
    fn mass_between_aligned_edges() {
        let mut h = Histogram::new(-100.0, 100.0, 20);
        h.extend(&[-50.0, 5.0, 15.0, 25.0, 95.0]);
        // [0,100) holds 4 of the 5 points.
        assert!((h.mass_between(0.0, 100.0) - 0.8).abs() < 1e-12);
        assert!((h.mass_between(-100.0, 0.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend(&[4.5, 4.6, 4.7, 1.0]);
        assert_eq!(h.mode_bin(), Some(4));
        let empty = Histogram::new(0.0, 1.0, 3);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    fn series_matches_counts() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend(&[0.5, 2.5, 2.6]);
        let s = h.series();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], (0.5, 1));
        assert_eq!(s[2], (2.5, 2));
    }

    #[test]
    fn render_ascii_contains_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.extend(&[0.5, 0.6, 1.5, -1.0, 5.0]);
        let s = h.render_ascii(10);
        assert!(s.contains("##"), "{s}");
        assert!(s.contains("< 0"), "{s}");
        assert!(s.contains(">= 2"), "{s}");
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo must be < hi")]
    fn inverted_bounds_panic() {
        Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn boundary_value_lands_in_correct_bin() {
        // Bin edges at multiples of 0.1 are not exactly representable;
        // make sure values at the seam land in one of the two adjacent
        // bins and never panic.
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..=9 {
            h.push(i as f64 * 0.1);
        }
        let total: u64 = (0..10).map(|i| h.count(i)).sum();
        assert_eq!(total, 10);
    }
}
