//! Statistics substrate for the indirect-routing reproduction.
//!
//! The paper's evaluation is almost entirely statistical: improvement
//! histograms (Fig 1, Fig 2), penalty summaries (Table I), utilization
//! tables (Table II, Fig 5, Table III), scatter trends (Fig 3), and a
//! "no discernable trend" claim about throughput over time (Fig 4).
//! This crate provides the numerical machinery for all of them:
//!
//! * [`summary`] — online (Welford) and batch summaries: mean, median,
//!   standard deviation, RMS, percentiles.
//! * [`histogram`] — uniform-bin histograms with underflow/overflow bins
//!   and an ASCII renderer, used for Figs 1 and 2.
//! * [`correlation`] — Pearson and Spearman correlation, ordinary
//!   least-squares regression, and the robust Theil–Sen slope, used for
//!   Fig 3 and Table III.
//! * [`trend`] — the Mann–Kendall trend test, which turns Fig 4's visual
//!   "no discernable uptrend or downtrend" into a hypothesis test.
//! * [`sampling`] — Normal, LogNormal, Exponential and Pareto samplers
//!   over any [`rand::Rng`] (kept here so the workspace does not need a
//!   `rand_distr` dependency).
//! * [`table`] — a fixed-width text-table renderer shared by every
//!   experiment report.
//! * [`ecdf`] — empirical CDFs and exact quantiles.
//! * [`bootstrap`] — percentile-bootstrap confidence intervals, so the
//!   reports carry uncertainty alongside the paper's point estimates.

pub mod bootstrap;
pub mod correlation;
pub mod ecdf;
pub mod histogram;
pub mod sampling;
pub mod summary;
pub mod table;
pub mod trend;

pub use bootstrap::{bootstrap_ci, mean_ci95, median_ci95, Interval};
pub use correlation::{ols, pearson, spearman, theil_sen, OlsFit};
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use sampling::{Exponential, LogNormal, Normal, Pareto, Sample};
pub use summary::{OnlineStats, Summary};
pub use table::TextTable;
pub use trend::{mann_kendall, MannKendall, Trend};
