//! Online and batch summary statistics.
//!
//! [`OnlineStats`] is a single-pass Welford accumulator suitable for hot
//! loops (no allocation, O(1) update). [`Summary`] is a batch summary over
//! a sample that additionally provides order statistics (median,
//! percentiles), which require sorting.

use serde::{Deserialize, Serialize};

/// Single-pass accumulator for count, mean, variance, RMS and extrema.
///
/// Uses Welford's algorithm, which is numerically stable for long runs of
/// near-equal values (our throughput traces are exactly that).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.sum_sq += other.sum_sq;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns true if no observations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance; `NaN` when empty.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (Bessel-corrected); `NaN` when n < 2.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stdev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation (Bessel-corrected).
    pub fn sample_stdev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Root mean square, `sqrt(mean(x^2))` — Fig 5 reports this as a
    /// robustness measure alongside the mean and standard deviation.
    pub fn rms(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            (self.sum_sq / self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation, `stdev / mean` — the paper's notion of a
    /// path having "highly variable" throughput is operationalised as a
    /// CoV threshold (see `ir-experiments::table1`).
    pub fn cov(&self) -> f64 {
        self.stdev() / self.mean()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Batch summary of a sample, including order statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Sample standard deviation.
    pub stdev: f64,
    /// Root mean square.
    pub rms: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a batch summary. Returns `None` for an empty sample.
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() {
            return None;
        }
        let online: OnlineStats = data.iter().copied().collect();
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Some(Summary {
            count: data.len(),
            mean: online.mean(),
            median: percentile_sorted(&sorted, 50.0),
            stdev: if data.len() > 1 {
                online.sample_stdev()
            } else {
                0.0
            },
            rms: online.rms(),
            min: online.min(),
            max: online.max(),
        })
    }
}

/// Percentile of a **sorted** sample using linear interpolation between
/// closest ranks (the "exclusive" scheme used by most plotting packages).
///
/// `p` is in percent, i.e. `0.0..=100.0`.
///
/// # Panics
///
/// Panics if `data` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if data.len() == 1 {
        return data[0];
    }
    let rank = p / 100.0 * (data.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        data[lo]
    } else {
        let frac = rank - lo as f64;
        data[lo] * (1.0 - frac) + data[hi] * frac
    }
}

/// Percentile of an unsorted sample (sorts a copy).
pub fn percentile(data: &[f64], p: f64) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

/// Fraction of observations for which `pred` holds. `NaN` on empty input.
pub fn fraction_where<F: Fn(f64) -> bool>(data: &[f64], pred: F) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    data.iter().filter(|&&x| pred(x)).count() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b} (eps {eps})");
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.rms().is_nan());
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_value() {
        let mut s = OnlineStats::new();
        s.push(4.0);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.sample_variance().is_nan());
        assert_eq!(s.rms(), 4.0);
        assert_eq!(s.min(), 4.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn known_values() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_close(s.mean(), 5.0, 1e-12);
        assert_close(s.variance(), 4.0, 1e-12);
        assert_close(s.stdev(), 2.0, 1e-12);
        // sum of squares = 4+16*3+25*2+49+81 = 232; rms = sqrt(232/8)
        assert_close(s.rms(), (232.0f64 / 8.0).sqrt(), 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let seq: OnlineStats = data.iter().copied().collect();
        let a: OnlineStats = data[..37].iter().copied().collect();
        let b: OnlineStats = data[37..].iter().copied().collect();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), seq.count());
        assert_close(merged.mean(), seq.mean(), 1e-9);
        assert_close(merged.variance(), seq.variance(), 1e-9);
        assert_close(merged.rms(), seq.rms(), 1e-9);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let mut m = a;
        m.merge(&OnlineStats::new());
        assert_eq!(m, a);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_close(percentile(&data, 0.0), 1.0, 1e-12);
        assert_close(percentile(&data, 100.0), 4.0, 1e-12);
        assert_close(percentile(&data, 50.0), 2.5, 1e-12);
        assert_close(percentile(&data, 25.0), 1.75, 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_close(s.mean, 3.0, 1e-12);
        assert_close(s.median, 3.0, 1e-12);
        assert_close(s.stdev, (2.5f64).sqrt(), 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_value_zero_stdev() {
        let s = Summary::of(&[2.5]).unwrap();
        assert_eq!(s.stdev, 0.0);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn fraction_where_counts() {
        let data = [-1.0, -0.5, 0.5, 1.0];
        assert_close(fraction_where(&data, |x| x < 0.0), 0.5, 1e-12);
        assert_close(fraction_where(&data, |x| x >= 1.0), 0.25, 1e-12);
        assert!(fraction_where(&[], |x| x > 0.0).is_nan());
    }

    #[test]
    fn cov_of_constant_is_zero() {
        let s: OnlineStats = [5.0; 10].into_iter().collect();
        assert_close(s.cov(), 0.0, 1e-12);
    }
}
