//! Correlation and regression.
//!
//! Fig 3 of the paper claims improvement is *inversely related* to direct
//! path throughput; Table III claims intermediate-node utilization is
//! *positively (if imperfectly) correlated* with the improvement that node
//! delivers. Both claims are verified here with Pearson/Spearman
//! correlation and with a robust Theil–Sen slope (scatter data from
//! throughput measurements has heavy tails, so OLS alone is fragile).

use serde::{Deserialize, Serialize};

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `NaN` when fewer than two points or when either sample is
/// constant (zero variance).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let n = x.len();
    if n < 2 {
        return f64::NAN;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation (Pearson on mid-ranks; ties get averaged
/// ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Mid-ranks of a sample (1-based; ties share the average of their ranks).
pub fn ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("NaN in sample"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 tie; assign their mean.
        let rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// An ordinary-least-squares line fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (fraction of variance explained).
    pub r2: f64,
    /// Number of points used in the fit.
    pub n: usize,
}

/// Ordinary least squares. Returns `None` when fewer than two points or
/// when `x` is constant.
pub fn ols(x: &[f64], y: &[f64]) -> Option<OlsFit> {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(OlsFit {
        slope,
        intercept,
        r2,
        n,
    })
}

/// Theil–Sen estimator: the median of pairwise slopes. Robust to the
/// heavy-tailed outliers typical of throughput measurements.
///
/// O(n²) pairs — fine for the ≤ few-thousand-point scatters we fit.
/// Returns `None` when fewer than two distinct x values exist.
pub fn theil_sen(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let n = x.len();
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[j] - x[i];
            if dx != 0.0 {
                slopes.push((y[j] - y[i]) / dx);
            }
        }
    }
    if slopes.is_empty() {
        return None;
    }
    slopes.sort_by(|a, b| a.partial_cmp(b).expect("NaN slope"));
    Some(crate::summary::percentile_sorted(&slopes, 50.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert_close(pearson(&x, &y), 1.0, 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert_close(pearson(&x, &y), -1.0, 1e-12);
    }

    #[test]
    fn pearson_constant_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0], &[1.0]).is_nan());
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed: x=[1,2,3,5], y=[1,3,2,6] → sxy=10, sxx=8.75,
        // syy=14 → r = 10/sqrt(122.5) ≈ 0.90351.
        let r = pearson(&[1.0, 2.0, 3.0, 5.0], &[1.0, 3.0, 2.0, 6.0]);
        assert_close(r, 0.90351, 2e-5);
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert_close(spearman(&x, &y), 1.0, 1e-12);
        let yd: Vec<f64> = y.iter().map(|v| -v).collect();
        assert_close(spearman(&x, &yd), -1.0, 1e-12);
    }

    #[test]
    fn ols_recovers_line() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let fit = ols(&x, &y).unwrap();
        assert_close(fit.slope, 3.0, 1e-9);
        assert_close(fit.intercept, -7.0, 1e-9);
        assert_close(fit.r2, 1.0, 1e-12);
        assert_eq!(fit.n, 50);
    }

    #[test]
    fn ols_degenerate_x_is_none() {
        assert!(ols(&[2.0, 2.0], &[1.0, 5.0]).is_none());
        assert!(ols(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn theil_sen_ignores_outlier() {
        // y = 2x with one wild outlier; OLS slope is dragged, Theil-Sen is
        // not.
        let mut x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        x.push(21.0);
        y.push(1000.0);
        let ts = theil_sen(&x, &y).unwrap();
        assert_close(ts, 2.0, 0.2);
        let ls = ols(&x, &y).unwrap().slope;
        assert!(ls > 3.0, "OLS should be dragged up, got {ls}");
    }

    #[test]
    fn theil_sen_constant_x_is_none() {
        assert!(theil_sen(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
