//! Fixed-width text-table rendering.
//!
//! Every experiment report (Tables I–III and the figure summaries) is
//! printed as a monospace table matching the layout of the paper's
//! tables, so paper-vs-measured comparison is a visual diff.

/// A simple left/right-aligned text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: Option<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TextTable::default()
    }

    /// Sets a title printed above the table.
    pub fn title(mut self, t: impl Into<String>) -> Self {
        self.title = Some(t.into());
        self
    }

    /// Sets the header row.
    pub fn header<I, S>(mut self, cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if a header is set and the row width differs from it.
    pub fn row<I, S>(&mut self, cols: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cols.into_iter().map(Into::into).collect();
        if !self.header.is_empty() {
            assert_eq!(
                row.len(),
                self.header.len(),
                "row width {} != header width {}",
                row.len(),
                self.header.len()
            );
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table. The first column is left-aligned, the rest are
    /// right-aligned (numbers read better that way).
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        if ncols == 0 {
            return String::new();
        }
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width.saturating_sub(cell.chars().count());
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            // Trailing spaces from a left-aligned last column are noise.
            line.trim_end().to_string()
        };

        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
            out.push_str(&"=".repeat(t.chars().count()));
            out.push('\n');
        }
        if !self.header.is_empty() {
            out.push_str(&render_row(&self.header));
            out.push('\n');
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percent string with the given precision,
/// e.g. `pct(0.451, 0)` → `"45%"`.
pub fn pct(frac: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, frac * 100.0)
}

/// Formats a throughput in bits/s at a human scale (Kbps/Mbps/Gbps).
pub fn fmt_rate(bits_per_sec: f64) -> String {
    if bits_per_sec >= 1e9 {
        format!("{:.2} Gbps", bits_per_sec / 1e9)
    } else if bits_per_sec >= 1e6 {
        format!("{:.2} Mbps", bits_per_sec / 1e6)
    } else if bits_per_sec >= 1e3 {
        format!("{:.1} Kbps", bits_per_sec / 1e3)
    } else {
        format!("{bits_per_sec:.0} bps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = TextTable::new().header(["Node", "Util (%)", "Impr (%)"]);
        t.row(["Texas", "76.1", "71.0"]);
        t.row(["MIT", "1.3", "-19.6"]);
        let s = t.render();
        assert!(s.contains("Node"), "{s}");
        assert!(s.contains("Texas"), "{s}");
        assert!(s.contains("-19.6"), "{s}");
        // Right alignment: "1.3" should be padded to the width of "Util (%)".
        let mit_line = s.lines().find(|l| l.starts_with("MIT")).unwrap();
        assert!(mit_line.contains("   1.3"), "{mit_line:?}");
    }

    #[test]
    fn title_underlined() {
        let mut t = TextTable::new().title("TABLE I");
        t.row(["a", "b"]);
        let s = t.render();
        let mut lines = s.lines();
        assert_eq!(lines.next().unwrap(), "TABLE I");
        assert_eq!(lines.next().unwrap(), "=======");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new().header(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn empty_table_renders_empty() {
        assert_eq!(TextTable::new().render(), "");
        assert!(TextTable::new().is_empty());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.451, 0), "45%");
        assert_eq!(pct(0.4567, 1), "45.7%");
        assert_eq!(pct(-0.12, 0), "-12%");
    }

    #[test]
    fn fmt_rate_scales() {
        assert_eq!(fmt_rate(500.0), "500 bps");
        assert_eq!(fmt_rate(1_500.0), "1.5 Kbps");
        assert_eq!(fmt_rate(2_000_000.0), "2.00 Mbps");
        assert_eq!(fmt_rate(3_100_000_000.0), "3.10 Gbps");
    }
}
