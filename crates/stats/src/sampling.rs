//! Distribution samplers over any [`rand::Rng`].
//!
//! The workload generator draws path base rates from lognormal
//! distributions (throughput across Internet paths is classically
//! lognormal-ish with a heavy upper tail), holding times from
//! exponentials, and rare-event magnitudes from Paretos. Implemented
//! here so the workspace does not need `rand_distr`.

use rand::Rng;

/// A distribution from which `f64` values can be sampled.
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (must be >= 0).
    pub stdev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `stdev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, stdev: f64) -> Self {
        assert!(
            mean.is_finite() && stdev.is_finite(),
            "non-finite parameter"
        );
        assert!(stdev >= 0.0, "negative stdev");
        Normal { mean, stdev }
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 in (0,1] so ln is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.stdev * z
    }
}

/// Lognormal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (log-scale location).
    pub mu: f64,
    /// Stdev of the underlying normal (log-scale shape).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from log-scale parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite(), "non-finite parameter");
        assert!(sigma >= 0.0, "negative sigma");
        LogNormal { mu, sigma }
    }

    /// Creates a lognormal with a given **median** and log-scale sigma.
    /// The median of `exp(N(mu, sigma))` is `exp(mu)`, which makes
    /// calibration intuitive: "this path's typical rate is 1.2 Mbps".
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// The distribution median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal::new(self.mu, self.sigma).sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (must be > 0).
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential with rate `lambda`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be > 0");
        Exponential { lambda }
    }

    /// Creates an exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be > 0");
        Exponential::new(1.0 / mean)
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // in (0,1]
        -u.ln() / self.lambda
    }
}

/// Pareto (type I) distribution: support `[scale, inf)`, tail index
/// `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Minimum value (scale), must be > 0.
    pub scale: f64,
    /// Tail index, must be > 0; smaller = heavier tail.
    pub alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    pub fn new(scale: f64, alpha: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be > 0");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be > 0");
        Pareto { scale, alpha }
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // in (0,1]
        self.scale / u.powf(1.0 / self.alpha)
    }
}

/// Samples an index from a non-negative weight vector (weighted
/// categorical). Used by the utilization-weighted selection policy.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative/non-finite value, or
/// sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "empty weight vector");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
            w
        })
        .sum();
    assert!(total > 0.0, "weights sum to zero");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    // Floating-point slack: return last non-zero weight.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("total > 0 implies a positive weight")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x1D1EC7)
    }

    fn mean_of(dist: &impl Sample, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| dist.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0);
        let mut r = rng();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_zero_stdev_is_constant() {
        let d = Normal::new(7.0, 0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 7.0);
        }
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::with_median(1.5, 0.6);
        assert!((d.median() - 1.5).abs() < 1e-12);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 1.5).abs() < 0.05, "median {med}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(4.0);
        let m = mean_of(&d, 200_000);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_nonnegative() {
        let d = Exponential::new(0.1);
        let mut r = rng();
        assert!((0..10_000).all(|_| d.sample(&mut r) >= 0.0));
    }

    #[test]
    fn pareto_support_and_mean() {
        let d = Pareto::new(2.0, 3.0);
        let mut r = rng();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Mean of Pareto = alpha*scale/(alpha-1) = 3.
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_single_element() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[0.5]), 0);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn weighted_index_all_zero_panics() {
        weighted_index(&mut rng(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "negative stdev")]
    fn normal_negative_stdev_panics() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = LogNormal::with_median(1.0, 0.5);
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
