//! Mann–Kendall trend test.
//!
//! Fig 4 of the paper shows indirect-path throughput over time and argues
//! there is "no discernable uptrend or downtrend". We make that claim
//! falsifiable: the Mann–Kendall test is a nonparametric test for a
//! monotone trend in a time series, robust to the non-Gaussian noise of
//! throughput measurements.

use serde::{Deserialize, Serialize};

/// Direction verdict at a significance level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trend {
    /// Statistically significant increasing trend.
    Increasing,
    /// Statistically significant decreasing trend.
    Decreasing,
    /// No significant monotone trend (the paper's Fig 4 claim).
    None,
}

/// Result of a Mann–Kendall test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MannKendall {
    /// The S statistic: #(concordant pairs) − #(discordant pairs).
    pub s: i64,
    /// Normal-approximation z score (ties-corrected variance).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_value: f64,
    /// Kendall's tau (S normalised by the number of pairs).
    pub tau: f64,
    /// Number of observations.
    pub n: usize,
}

impl MannKendall {
    /// Verdict at significance level `alpha` (e.g. 0.05).
    pub fn trend(&self, alpha: f64) -> Trend {
        if self.p_value < alpha {
            if self.s > 0 {
                Trend::Increasing
            } else {
                Trend::Decreasing
            }
        } else {
            Trend::None
        }
    }
}

/// Runs the Mann–Kendall test on a series sampled at uniform (or at least
/// ordered) time points.
///
/// # Panics
///
/// Panics if `series.len() < 3` (the test is undefined below that).
pub fn mann_kendall(series: &[f64]) -> MannKendall {
    let n = series.len();
    assert!(n >= 3, "Mann–Kendall needs at least 3 points, got {n}");

    let mut s: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += match series[j].partial_cmp(&series[i]).expect("NaN in series") {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
        }
    }

    // Ties-corrected variance: Var(S) = [n(n-1)(2n+5) - Σ t(t-1)(2t+5)]/18
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in series"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
        }
        i = j + 1;
    }
    let nf = n as f64;
    let var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - tie_term) / 18.0;

    // Continuity-corrected z.
    let z = if var_s <= 0.0 {
        0.0
    } else if s > 0 {
        (s as f64 - 1.0) / var_s.sqrt()
    } else if s < 0 {
        (s as f64 + 1.0) / var_s.sqrt()
    } else {
        0.0
    };

    let p_value = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    let pairs = nf * (nf - 1.0) / 2.0;

    MannKendall {
        s,
        z,
        p_value,
        tau: s as f64 / pairs,
        n,
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (max abs error ~1.5e-7, ample for trend verdicts).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_series_detected() {
        let series: Vec<f64> = (0..50).map(|i| i as f64 * 0.5).collect();
        let mk = mann_kendall(&series);
        assert!(mk.s > 0);
        assert!(mk.p_value < 0.001, "p = {}", mk.p_value);
        assert_eq!(mk.trend(0.05), Trend::Increasing);
        assert!((mk.tau - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decreasing_series_detected() {
        let series: Vec<f64> = (0..50).map(|i| 100.0 - i as f64).collect();
        let mk = mann_kendall(&series);
        assert_eq!(mk.trend(0.05), Trend::Decreasing);
        assert!((mk.tau + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_no_trend() {
        let series = vec![5.0; 30];
        let mk = mann_kendall(&series);
        assert_eq!(mk.s, 0);
        assert_eq!(mk.trend(0.05), Trend::None);
    }

    #[test]
    fn alternating_noise_has_no_trend() {
        let series: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        let mk = mann_kendall(&series);
        assert_eq!(mk.trend(0.05), Trend::None, "z = {}", mk.z);
    }

    #[test]
    fn deterministic_pseudo_noise_has_no_trend() {
        // A fixed, trendless pseudo-random walkless series.
        let series: Vec<f64> = (0..200)
            .map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract())
            .collect();
        let mk = mann_kendall(&series);
        assert_eq!(mk.trend(0.05), Trend::None, "z = {}", mk.z);
    }

    #[test]
    fn weak_trend_buried_in_noise_needs_more_data() {
        // Slight trend + strong deterministic noise: short series should
        // not reject, long series should.
        let noisy = |n: usize, slope: f64| -> Vec<f64> {
            (0..n)
                .map(|i| slope * i as f64 + ((i as f64 * 7.77).sin() * 1000.0).fract() * 5.0)
                .collect()
        };
        let short = mann_kendall(&noisy(20, 0.05));
        assert_eq!(short.trend(0.01), Trend::None);
        let long = mann_kendall(&noisy(2000, 0.05));
        assert_eq!(long.trend(0.01), Trend::Increasing);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_short_panics() {
        mann_kendall(&[1.0, 2.0]);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(std_normal_cdf(8.0) > 0.999999);
    }
}
