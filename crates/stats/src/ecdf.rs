//! Empirical cumulative distribution functions.
//!
//! Used to report the "84% of the data points lie between 0 and 100"
//! style statements in the paper (§3.1) and for quantile lookups in the
//! experiment reports.

use serde::{Deserialize, Serialize};

/// An empirical CDF built from a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "ECDF of empty sample");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Ecdf { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); provided for
    /// clippy-idiomatic pairing with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `P(X <= x)`: fraction of observations at or below `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Fraction of mass strictly below `x`.
    pub fn below(&self, x: f64) -> f64 {
        let n = self.sorted.partition_point(|&v| v < x);
        n as f64 / self.sorted.len() as f64
    }

    /// Fraction of mass in `[a, b]`.
    pub fn mass_in(&self, a: f64, b: f64) -> f64 {
        assert!(a <= b, "inverted interval");
        self.cdf(b) - self.below(a)
    }

    /// Quantile `q` in `[0, 1]` (inverse CDF, lower interpolation of the
    /// order statistic).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        crate::summary::percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Median shorthand.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The underlying sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_step_values() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn below_is_strict() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]);
        assert_eq!(e.below(1.0), 0.0);
        assert!((e.cdf(1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mass_in_interval() {
        let e = Ecdf::new(&[-10.0, 0.0, 50.0, 99.0, 150.0]);
        // [0, 100] contains 0, 50, 99 → 3/5.
        assert!((e.mass_in(0.0, 100.0) - 0.6).abs() < 1e-12);
        assert!((e.mass_in(-20.0, 200.0) - 1.0).abs() < 1e-12);
        assert_eq!(e.mass_in(10.0, 20.0), 0.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(1.0), 30.0);
        assert_eq!(e.median(), 20.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(&[5.0; 10]);
        assert_eq!(e.cdf(5.0), 1.0);
        assert_eq!(e.below(5.0), 0.0);
        assert_eq!(e.median(), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        Ecdf::new(&[]);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        Ecdf::new(&[1.0]).mass_in(2.0, 1.0);
    }
}
