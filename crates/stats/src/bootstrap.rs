//! Bootstrap confidence intervals.
//!
//! The paper reports point estimates (mean 49%, median 37%) without
//! uncertainty; our reports attach percentile-bootstrap intervals so
//! paper-vs-measured comparisons are honest about sampling noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Whether `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile bootstrap for an arbitrary statistic.
///
/// Resamples `data` with replacement `iters` times, computes `stat` on
/// each resample, and returns the `[alpha/2, 1 - alpha/2]` percentile
/// interval. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics on empty data, `iters == 0`, or `alpha` outside (0, 1).
pub fn bootstrap_ci<F: Fn(&[f64]) -> f64>(
    data: &[f64],
    stat: F,
    iters: usize,
    alpha: f64,
    seed: u64,
) -> Interval {
    assert!(!data.is_empty(), "bootstrap of empty sample");
    assert!(iters > 0, "zero bootstrap iterations");
    assert!(alpha > 0.0 && alpha < 1.0, "bad alpha {alpha}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(iters);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..iters {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic"));
    Interval {
        lo: crate::summary::percentile_sorted(&stats, alpha / 2.0 * 100.0),
        hi: crate::summary::percentile_sorted(&stats, (1.0 - alpha / 2.0) * 100.0),
    }
}

/// 95% bootstrap CI of the mean (1000 resamples).
pub fn mean_ci95(data: &[f64], seed: u64) -> Interval {
    bootstrap_ci(
        data,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        1000,
        0.05,
        seed,
    )
}

/// 95% bootstrap CI of the median (1000 resamples).
pub fn median_ci95(data: &[f64], seed: u64) -> Interval {
    bootstrap_ci(
        data,
        |s| crate::summary::percentile(s, 50.0),
        1000,
        0.05,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        // Deterministic pseudo-noise around 10.
        (0..n)
            .map(|i| 10.0 + ((i as f64 * 1.7).sin() * 2.0))
            .collect()
    }

    #[test]
    fn ci_brackets_the_truth() {
        let data = sample(500);
        let truth = data.iter().sum::<f64>() / data.len() as f64;
        let ci = mean_ci95(&data, 7);
        assert!(ci.contains(truth), "{ci:?} should contain {truth}");
        assert!(ci.width() < 1.0, "CI too wide: {ci:?}");
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small = mean_ci95(&sample(30), 7);
        let large = mean_ci95(&sample(3000), 7);
        assert!(large.width() < small.width());
    }

    #[test]
    fn deterministic_for_seed() {
        let data = sample(100);
        assert_eq!(mean_ci95(&data, 42), mean_ci95(&data, 42));
        assert_ne!(mean_ci95(&data, 42), mean_ci95(&data, 43));
    }

    #[test]
    fn median_ci_works() {
        let data = sample(400);
        let ci = median_ci95(&data, 3);
        let med = crate::summary::percentile(&data, 50.0);
        assert!(ci.contains(med));
    }

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let data = vec![5.0; 50];
        let ci = mean_ci95(&data, 1);
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        mean_ci95(&[], 1);
    }
}
