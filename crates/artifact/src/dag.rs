//! Dependency-aware sweep scheduler.
//!
//! A sweep is a two-layer DAG: **studies** (expensive simulations,
//! keyed by input fingerprint) feed **artefacts** (cheap renders of
//! figures/tables, keyed by their study fingerprints plus a
//! code-version salt). [`execute`] walks the artefact list in order
//! and guarantees:
//!
//! * an artefact whose bundle is cached never touches its studies;
//! * a study demanded by several artefacts **executes at most once**
//!   and fans its output out to every dependent (the seed-42 §2.2 run
//!   behind Fig 1 and Table I is the canonical case);
//! * study outputs and artefact bundles are written back to the cache
//!   so the *next* sweep skips them too;
//! * a corrupt or undecodable cache entry is recomputed — never
//!   trusted — and then overwritten with a good one.
//!
//! The scheduler is single-threaded by design: each study parallelises
//! internally over its (client, relay/k) tasks, so study-level
//! parallelism would only oversubscribe the worker pool while making
//! progress output nondeterministic.

use crate::cache::{ArtifactCache, Lookup};
use crate::codec::{ByteReader, ByteWriter};
use crate::hash::Fingerprint;
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A materialised study result, shared by every dependent artefact.
pub type StudyOutput = Arc<dyn Any + Send + Sync>;

/// Serializes a study output for the cache.
pub type StudyEncoder = Box<dyn Fn(&StudyOutput) -> Vec<u8>>;

/// Deserializes cached study bytes; `None` means "recompute".
pub type StudyDecoder = Box<dyn Fn(&[u8]) -> Option<StudyOutput>>;

/// One study: how to compute it and how to move it through the cache.
pub struct StudySpec {
    /// Display name, e.g. `"measurement(seed=2007,quick)"`.
    pub name: String,
    /// Structural fingerprint of every input that determines the
    /// output (parameters, seeds, fault plans, codec version salt).
    pub fingerprint: Fingerprint,
    /// Computes the study from scratch.
    pub run: Box<dyn FnOnce() -> StudyOutput>,
    /// Serializes the output for the cache.
    pub encode: StudyEncoder,
    /// Deserializes cached bytes; `None` means "recompute".
    pub decode: StudyDecoder,
}

/// What an artefact produces: the rendered report text, its
/// paper-vs-measured verdict, and the CSV/JSON files to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtefactOutput {
    /// True iff every banded check passed.
    pub pass: bool,
    /// Rendered report (tables + check rows).
    pub text: String,
    /// `(file name, bytes)` pairs, e.g. `("fig1_histogram.csv", …)`.
    pub files: Vec<(String, Vec<u8>)>,
}

/// One artefact: the study fingerprints it consumes and its renderer.
pub struct ArtefactSpec {
    /// Artefact id, e.g. `"fig1"`.
    pub name: String,
    /// Cache key: hash of the dep fingerprints, the artefact name, and
    /// its code-version salt (bump the salt when render logic changes).
    pub fingerprint: Fingerprint,
    /// Fingerprints of the studies consumed, in the order `render`
    /// expects them.
    pub deps: Vec<Fingerprint>,
    /// Renders the artefact from its resolved study outputs.
    // boxed render closure; aliasing it would obscure the artefact contract
    #[allow(clippy::type_complexity)]
    pub render: Box<dyn FnOnce(&[StudyOutput]) -> ArtefactOutput>,
}

/// How a node's result materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from an intact cache entry; nothing executed.
    CacheHit,
    /// Computed (cold cache, cache miss, or caching disabled).
    Computed,
    /// A cache entry existed but was corrupt/undecodable; recomputed
    /// and replaced.
    RecomputedCorrupt,
}

/// Outcome of one study the sweep actually needed.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Study name.
    pub name: String,
    /// The study's fingerprint.
    pub fingerprint: Fingerprint,
    /// Where the output came from.
    pub source: Source,
    /// Wall-clock time spent materialising it.
    pub wall: Duration,
}

/// Outcome of one artefact.
#[derive(Debug)]
pub struct ArtefactReport {
    /// Artefact id.
    pub name: String,
    /// The artefact's cache key.
    pub fingerprint: Fingerprint,
    /// Where the bundle came from.
    pub source: Source,
    /// Wall-clock time spent materialising it (excludes its studies;
    /// those are reported separately).
    pub wall: Duration,
    /// The rendered (or cache-restored) output.
    pub output: ArtefactOutput,
}

/// Everything [`execute`] did, for telemetry and gates.
#[derive(Debug, Default)]
pub struct ExecReport {
    /// Studies that were materialised (demanded by ≥ 1 missed
    /// artefact), in demand order. Studies whose every dependent hit
    /// the artefact cache never appear — they were not needed at all.
    pub studies: Vec<StudyReport>,
    /// Every artefact, in plan order.
    pub artefacts: Vec<ArtefactReport>,
    /// Intact cache entries served (studies + artefacts).
    pub cache_hits: u64,
    /// Lookups that found nothing.
    pub cache_misses: u64,
    /// Entries written back.
    pub cache_stores: u64,
    /// Corrupt/undecodable entries encountered (each also counts as a
    /// miss for hit-rate purposes).
    pub cache_corrupt: u64,
}

impl ExecReport {
    /// Studies actually executed (not served from cache).
    pub fn studies_executed(&self) -> u64 {
        self.studies
            .iter()
            .filter(|s| s.source != Source::CacheHit)
            .count() as u64
    }

    /// Artefacts served straight from the cache.
    pub fn artefact_hits(&self) -> u64 {
        self.artefacts
            .iter()
            .filter(|a| a.source == Source::CacheHit)
            .count() as u64
    }

    /// Cache hit rate over every lookup this sweep performed, in
    /// `[0, 1]`; 0 when no lookups happened (caching disabled).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses + self.cache_corrupt;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// True iff every artefact's checks passed.
    pub fn all_pass(&self) -> bool {
        self.artefacts.iter().all(|a| a.output.pass)
    }
}

/// Bundle frame magic: "IRAB" (IR Artifact Bundle).
const BUNDLE_MAGIC: u32 = u32::from_le_bytes(*b"IRAB");
/// Bundle frame version; bump on layout changes.
const BUNDLE_VERSION: u32 = 1;

/// Encodes an artefact bundle for the cache.
pub fn encode_bundle(out: &ArtefactOutput) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(BUNDLE_MAGIC);
    w.put_u32(BUNDLE_VERSION);
    w.put_bool(out.pass);
    w.put_str(&out.text);
    w.put_u64(out.files.len() as u64);
    for (name, bytes) in &out.files {
        w.put_str(name);
        w.put_bytes(bytes);
    }
    w.into_bytes()
}

/// Decodes an artefact bundle; `None` on any malformation.
pub fn decode_bundle(bytes: &[u8]) -> Option<ArtefactOutput> {
    let mut r = ByteReader::new(bytes);
    if r.get_u32()? != BUNDLE_MAGIC || r.get_u32()? != BUNDLE_VERSION {
        return None;
    }
    let pass = r.get_bool()?;
    let text = r.get_str()?;
    let n = r.get_u64()? as usize;
    let mut files = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        let name = r.get_str()?;
        let bytes = r.get_bytes()?;
        files.push((name, bytes));
    }
    if !r.is_exhausted() {
        return None;
    }
    Some(ArtefactOutput { pass, text, files })
}

/// Runs a sweep plan. `cache: None` disables caching entirely (every
/// study runs, every artefact renders — the cold cacheless baseline
/// warm runs must match byte for byte).
///
/// # Panics
///
/// Panics if an artefact depends on a fingerprint no [`StudySpec`]
/// provides — that is a plan-construction bug, not a runtime
/// condition.
pub fn execute(
    studies: Vec<StudySpec>,
    artefacts: Vec<ArtefactSpec>,
    cache: Option<&ArtifactCache>,
) -> ExecReport {
    let mut report = ExecReport::default();
    let mut specs: BTreeMap<Fingerprint, StudySpec> = BTreeMap::new();
    for spec in studies {
        // Two artefact declarations may legitimately contribute the
        // same study; first one wins, fingerprint equality guarantees
        // they are interchangeable.
        specs.entry(spec.fingerprint).or_insert(spec);
    }
    let mut materialised: BTreeMap<Fingerprint, StudyOutput> = BTreeMap::new();

    for artefact in artefacts {
        let t0 = Instant::now();
        // 1. Whole-artefact cache probe: a hit skips the studies too.
        let mut artefact_source = Source::Computed;
        if let Some(cache) = cache {
            match cache.get(artefact.fingerprint) {
                Lookup::Hit(bytes) => match decode_bundle(&bytes) {
                    Some(output) => {
                        report.cache_hits += 1;
                        report.artefacts.push(ArtefactReport {
                            name: artefact.name,
                            fingerprint: artefact.fingerprint,
                            source: Source::CacheHit,
                            wall: t0.elapsed(),
                            output,
                        });
                        continue;
                    }
                    None => {
                        report.cache_corrupt += 1;
                        artefact_source = Source::RecomputedCorrupt;
                    }
                },
                Lookup::Corrupt => {
                    report.cache_corrupt += 1;
                    artefact_source = Source::RecomputedCorrupt;
                }
                Lookup::Miss => {
                    report.cache_misses += 1;
                }
            }
        }

        // 2. Materialise the studies this artefact consumes (cache →
        //    memo → execute), sharing results across artefacts.
        let mut inputs: Vec<StudyOutput> = Vec::with_capacity(artefact.deps.len());
        for &dep in &artefact.deps {
            if let Some(out) = materialised.get(&dep) {
                inputs.push(Arc::clone(out));
                continue;
            }
            let spec = specs.remove(&dep).unwrap_or_else(|| {
                panic!(
                    "artefact {:?} depends on study {dep} which no StudySpec provides",
                    artefact.name
                )
            });
            let s0 = Instant::now();
            let mut source = Source::Computed;
            let mut output: Option<StudyOutput> = None;
            if let Some(cache) = cache {
                match cache.get(dep) {
                    Lookup::Hit(bytes) => match (spec.decode)(&bytes) {
                        Some(out) => {
                            report.cache_hits += 1;
                            source = Source::CacheHit;
                            output = Some(out);
                        }
                        None => {
                            report.cache_corrupt += 1;
                            source = Source::RecomputedCorrupt;
                        }
                    },
                    Lookup::Corrupt => {
                        report.cache_corrupt += 1;
                        source = Source::RecomputedCorrupt;
                    }
                    Lookup::Miss => {
                        report.cache_misses += 1;
                    }
                }
            }
            let output = match output {
                Some(out) => out,
                None => {
                    let out = (spec.run)();
                    if let Some(cache) = cache {
                        if cache.put(dep, &(spec.encode)(&out)).is_ok() {
                            report.cache_stores += 1;
                        }
                    }
                    out
                }
            };
            report.studies.push(StudyReport {
                name: spec.name,
                fingerprint: dep,
                source,
                wall: s0.elapsed(),
            });
            materialised.insert(dep, Arc::clone(&output));
            inputs.push(output);
        }

        // 3. Render and write back.
        let output = (artefact.render)(&inputs);
        if let Some(cache) = cache {
            if cache
                .put(artefact.fingerprint, &encode_bundle(&output))
                .is_ok()
            {
                report.cache_stores += 1;
            }
        }
        report.artefacts.push(ArtefactReport {
            name: artefact.name,
            fingerprint: artefact.fingerprint,
            source: artefact_source,
            wall: t0.elapsed(),
            output,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fingerprint_of;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("ir_dag_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::open(dir).unwrap()
    }

    /// A fake "study" producing a u64; `runs` counts real executions.
    fn study(tag: u64, runs: &Arc<AtomicUsize>) -> StudySpec {
        let runs = Arc::clone(runs);
        StudySpec {
            name: format!("study{tag}"),
            fingerprint: fingerprint_of(&("study", tag)),
            run: Box::new(move || {
                runs.fetch_add(1, Ordering::Relaxed);
                Arc::new(tag * 100) as StudyOutput
            }),
            encode: Box::new(|out| {
                let v = out.downcast_ref::<u64>().expect("u64 study");
                v.to_le_bytes().to_vec()
            }),
            decode: Box::new(|bytes| {
                let arr: [u8; 8] = bytes.try_into().ok()?;
                Some(Arc::new(u64::from_le_bytes(arr)) as StudyOutput)
            }),
        }
    }

    fn artefact(name: &str, salt: u64, dep: Fingerprint) -> ArtefactSpec {
        let owned = name.to_string();
        ArtefactSpec {
            name: owned.clone(),
            fingerprint: fingerprint_of(&(("artefact", name, salt), dep)),
            deps: vec![dep],
            render: Box::new(move |inputs| {
                let v = inputs[0].downcast_ref::<u64>().expect("u64 study");
                ArtefactOutput {
                    pass: true,
                    text: format!("{owned}: {v}"),
                    files: vec![(format!("{owned}.csv"), format!("v\n{v}\n").into_bytes())],
                }
            }),
        }
    }

    fn plan(runs: &Arc<AtomicUsize>) -> (Vec<StudySpec>, Vec<ArtefactSpec>) {
        let s1 = study(1, runs);
        let s2 = study(2, runs);
        let f1 = s1.fingerprint;
        let f2 = s2.fingerprint;
        (
            vec![s1, s2],
            vec![
                artefact("fig1", 1, f1),
                artefact("table1", 1, f1), // shares study 1
                artefact("fig6", 1, f2),
            ],
        )
    }

    #[test]
    fn shared_study_executes_once_without_cache() {
        let runs = Arc::new(AtomicUsize::new(0));
        let (studies, artefacts) = plan(&runs);
        let report = execute(studies, artefacts, None);
        // Two studies for three artefacts: dedup is observable.
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        assert_eq!(report.studies.len(), 2);
        assert_eq!(report.artefacts.len(), 3);
        assert!(report.studies.len() < report.artefacts.len());
        assert_eq!(report.cache_hits + report.cache_misses, 0);
        assert_eq!(report.artefacts[0].output.text, "fig1: 100");
        assert_eq!(report.artefacts[2].output.text, "fig6: 200");
        assert!(report.all_pass());
    }

    #[test]
    fn warm_cache_serves_everything_and_matches_cacheless_bytes() {
        let cache = temp_cache("warm");
        let runs = Arc::new(AtomicUsize::new(0));

        let (studies, artefacts) = plan(&runs);
        let cold = execute(studies, artefacts, Some(&cache));
        assert_eq!(cold.studies_executed(), 2);
        assert_eq!(cold.cache_misses, 5); // 3 artefacts + 2 studies
        assert_eq!(cold.cache_stores, 5);

        let (studies, artefacts) = plan(&runs);
        let warm = execute(studies, artefacts, Some(&cache));
        // 100% of studies and artefacts served from cache: no new runs,
        // no study even consulted (artefact-level hits short-circuit).
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        assert_eq!(warm.studies_executed(), 0);
        assert_eq!(warm.artefact_hits(), 3);
        assert_eq!(warm.cache_hits, 3);
        assert_eq!(warm.cache_misses + warm.cache_corrupt, 0);
        assert!((warm.hit_rate() - 1.0).abs() < 1e-12);

        // Byte-identical to a cold cacheless run.
        let (studies, artefacts) = plan(&runs);
        let cacheless = execute(studies, artefacts, None);
        for (w, c) in warm.artefacts.iter().zip(cacheless.artefacts.iter()) {
            assert_eq!(w.output, c.output);
        }
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn tampered_artefact_entry_is_recomputed_not_trusted() {
        let cache = temp_cache("tamper");
        let runs = Arc::new(AtomicUsize::new(0));
        let (studies, artefacts) = plan(&runs);
        let cold = execute(studies, artefacts, Some(&cache));
        let fig1_fp = cold.artefacts[0].fingerprint;

        // Truncate fig1's bundle on disk.
        let path = cache.dir().join(format!("{}.bin", fig1_fp.to_hex()));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let (studies, artefacts) = plan(&runs);
        let warm = execute(studies, artefacts, Some(&cache));
        assert_eq!(warm.cache_corrupt, 1);
        let fig1 = &warm.artefacts[0];
        assert_eq!(fig1.source, Source::RecomputedCorrupt);
        assert_eq!(fig1.output.text, "fig1: 100");
        // Its study came back from the study-level cache, not a rerun.
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        assert_eq!(warm.studies.len(), 1);
        assert_eq!(warm.studies[0].source, Source::CacheHit);
        // And the bad entry was replaced: a third pass is all hits.
        let (studies, artefacts) = plan(&runs);
        let third = execute(studies, artefacts, Some(&cache));
        assert_eq!(third.artefact_hits(), 3);
        assert_eq!(third.cache_corrupt, 0);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn salt_bump_rerenders_but_reuses_cached_study() {
        let cache = temp_cache("salt");
        let runs = Arc::new(AtomicUsize::new(0));
        let (studies, artefacts) = plan(&runs);
        execute(studies, artefacts, Some(&cache));

        // fig1's render logic "changed": new salt, new fingerprint.
        let (studies, mut artefacts) = plan(&runs);
        let dep = artefacts[0].deps[0];
        artefacts[0] = artefact("fig1", 2, dep);
        let report = execute(studies, artefacts, Some(&cache));
        assert_eq!(report.artefacts[0].source, Source::Computed);
        assert_eq!(report.artefacts[1].source, Source::CacheHit);
        // The study itself was served from cache — still 2 total runs.
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        assert_eq!(report.studies.len(), 1);
        assert_eq!(report.studies[0].source, Source::CacheHit);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn undecodable_study_bytes_recompute() {
        let cache = temp_cache("undecodable");
        let runs = Arc::new(AtomicUsize::new(0));
        let (studies, artefacts) = plan(&runs);
        let cold = execute(studies, artefacts, Some(&cache));
        let study_fp = cold.studies[0].fingerprint;

        // Overwrite the study entry with a VALID cache frame whose
        // payload the decoder rejects (7 bytes can't be a u64).
        cache.put(study_fp, &[1, 2, 3, 4, 5, 6, 7]).unwrap();
        // Invalidate dependents so the study is actually demanded.
        let (studies, mut artefacts) = plan(&runs);
        let dep0 = artefacts[0].deps[0];
        let dep2 = artefacts[2].deps[0];
        artefacts[0] = artefact("fig1", 9, dep0);
        artefacts[2] = artefact("fig6", 9, dep2);
        let report = execute(studies, artefacts, Some(&cache));
        assert_eq!(runs.load(Ordering::Relaxed), 3); // study 1 reran
        let s1 = report
            .studies
            .iter()
            .find(|s| s.fingerprint == study_fp)
            .unwrap();
        assert_eq!(s1.source, Source::RecomputedCorrupt);
        assert_eq!(report.artefacts[0].output.text, "fig1: 100");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    #[should_panic(expected = "no StudySpec provides")]
    fn missing_study_spec_panics() {
        let fp = fingerprint_of(&"nowhere");
        execute(Vec::new(), vec![artefact("orphan", 1, fp)], None);
    }

    #[test]
    fn bundle_round_trip_and_rejection() {
        let out = ArtefactOutput {
            pass: false,
            text: "body".into(),
            files: vec![("a.csv".into(), vec![1, 2]), ("b.json".into(), vec![])],
        };
        let bytes = encode_bundle(&out);
        assert_eq!(decode_bundle(&bytes), Some(out));
        assert_eq!(decode_bundle(&bytes[..bytes.len() - 1]), None);
        assert_eq!(decode_bundle(b"IRABgarbage"), None);
        assert_eq!(decode_bundle(b""), None);
        // Trailing garbage rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_bundle(&padded), None);
    }
}
