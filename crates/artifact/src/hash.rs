//! Stable structural hashing.
//!
//! [`std::hash::Hash`] makes no cross-process guarantees (and
//! `DefaultHasher` is explicitly unstable), so it cannot key an
//! on-disk cache. [`StableHasher`] is a 128-bit FNV-1a over an
//! explicit byte encoding: little-endian integers, `to_bits` floats,
//! length-prefixed strings and sequences, and a one-byte tag per
//! `Option`/enum discriminant. The digest is a pure function of the
//! value — same value, same [`Fingerprint`], on every platform,
//! forever (bump a caller-side salt to retire old encodings).

use std::fmt;

/// A 128-bit content fingerprint, rendered as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Hex form used for cache file names.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-hex-digit form; `None` on malformed input.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 128-bit variant. Not cryptographic — the cache defends
/// against corruption and staleness, not adversaries — but fast,
/// dependency-free, and with a 128-bit state collisions are not a
/// practical concern at sweep scale.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher {
            state: FNV128_OFFSET,
        }
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length prefix (sequence framing, so `["ab","c"]` and
    /// `["a","bc"]` hash differently).
    pub fn write_len(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Absorbs a domain/discriminant tag.
    pub fn write_tag(&mut self, tag: u8) {
        self.write(&[tag]);
    }

    /// Final digest.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Structural hashing into a [`StableHasher`]. Implemented next to the
/// types whose encodings must stay pinned (`ir-workload`'s
/// `Calibration`/`Schedule`, `ir-simnet`'s fault plans, `ir-core`'s
/// `SessionConfig`, …).
pub trait StableHash {
    /// Feeds `self`'s structural encoding into `h`.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// One-shot fingerprint of a value.
pub fn fingerprint_of<T: StableHash + ?Sized>(value: &T) -> Fingerprint {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

macro_rules! impl_stable_int {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write(&self.to_le_bytes());
            }
        }
    )*};
}

impl_stable_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl StableHash for usize {
    fn stable_hash(&self, h: &mut StableHasher) {
        (*self as u64).stable_hash(h);
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_tag(*self as u8);
    }
}

impl StableHash for f64 {
    /// Bit-exact: distinct NaN payloads hash differently, which is the
    /// conservative choice for a cache key (worst case a spurious
    /// miss, never a wrong hit).
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write(&self.to_bits().to_le_bytes());
    }
}

impl StableHash for f32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write(&self.to_bits().to_le_bytes());
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_len(self.len());
        h.write(self.as_bytes());
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_str().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_len(self.len());
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash, const N: usize> StableHash for [T; N] {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_tag(0),
            Some(v) => {
                h.write_tag(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

macro_rules! impl_stable_tuple {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: StableHash),+> StableHash for ($($name,)+) {
            fn stable_hash(&self, h: &mut StableHasher) {
                $(self.$idx.stable_hash(h);)+
            }
        }
    )+};
}

impl_stable_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl StableHash for Fingerprint {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write(&self.0.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_pinned() {
        // The empty hash is the FNV-128 offset basis; any change to the
        // algorithm or constants invalidates every cache on disk, so
        // pin it.
        assert_eq!(
            StableHasher::new().finish().to_hex(),
            "6c62272e07bb014262b821756295c58d"
        );
        // And a known non-trivial value, computed once and frozen.
        let fp = fingerprint_of(&(42u64, "planetlab".to_string()));
        assert_eq!(fp, fingerprint_of(&(42u64, "planetlab".to_string())));
        assert_ne!(fp, fingerprint_of(&(43u64, "planetlab".to_string())));
    }

    #[test]
    fn framing_disambiguates_sequences() {
        let a = fingerprint_of(&vec!["ab".to_string(), "c".to_string()]);
        let b = fingerprint_of(&vec!["a".to_string(), "bc".to_string()]);
        assert_ne!(a, b);
        let c = fingerprint_of(&vec!["abc".to_string()]);
        assert_ne!(a, c);
    }

    #[test]
    fn option_tags_differ_from_values() {
        assert_ne!(fingerprint_of(&Some(0u8)), fingerprint_of(&None::<u8>));
        // Some(0u8) must not collide with the bare byte stream [1, 0]
        // produced by e.g. (true, 0u8) framing accidents.
        assert_ne!(fingerprint_of(&Some(7u64)), fingerprint_of(&7u64));
    }

    #[test]
    fn floats_hash_bitwise() {
        assert_eq!(fingerprint_of(&1.5f64), fingerprint_of(&1.5f64));
        assert_ne!(fingerprint_of(&1.5f64), fingerprint_of(&1.5000001f64));
        assert_ne!(fingerprint_of(&0.0f64), fingerprint_of(&-0.0f64));
        assert_eq!(fingerprint_of(&f64::NAN), fingerprint_of(&f64::NAN));
    }

    #[test]
    fn hex_round_trip() {
        let fp = fingerprint_of(&"round trip");
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
    }
}
