//! `ir-artifact` — content-addressed study cache and dependency-aware
//! sweep scheduler.
//!
//! The paper's artefacts form a small DAG over a handful of expensive
//! studies: Fig 1 and Table I both replay the §2.2 planetlab study,
//! Figs 4–6 all replay the §4 selection study. Recomputing the shared
//! study once per artefact — and throwing everything away between
//! invocations — is exactly the redundancy this crate removes:
//!
//! * [`hash`] — a **stable structural fingerprint**: a deterministic
//!   128-bit FNV-1a hash over study inputs ([`StableHash`] impls live
//!   next to the hashed types; every experiment parameter, seed, and a
//!   per-artefact code-version salt feed in). Unlike `std::hash`, the
//!   digest is pinned: it never varies across processes, platforms, or
//!   compiler versions, so it can key an on-disk cache.
//! * [`cache`] — an **on-disk content-addressed store** keyed by
//!   fingerprint, with atomic writes (temp file + rename), a
//!   length+checksum corruption header, and mtime-ordered eviction.
//! * [`codec`] — little-endian byte writer/reader pairs for the cached
//!   payloads (study outputs and artefact bundles).
//! * [`dag`] — the **dependency-aware scheduler**: artefacts declare
//!   the study fingerprints they consume; each distinct study executes
//!   at most once per sweep and fans out to every dependent; cache
//!   hits skip execution entirely while still reproducing artefact
//!   bytes exactly.
//!
//! The crate is deliberately dependency-free and knows nothing about
//! networks or figures: `ir-workload`/`ir-simnet`/`ir-core` provide
//! `StableHash` impls for their parameter types, and `ir-experiments`
//! builds the concrete sweep plan.

pub mod cache;
pub mod codec;
pub mod dag;
pub mod hash;

pub use cache::{ArtifactCache, GcReport, Lookup};
pub use codec::{ByteReader, ByteWriter};
pub use dag::{
    execute, ArtefactOutput, ArtefactReport, ArtefactSpec, ExecReport, Source, StudyReport,
    StudySpec,
};
pub use hash::{fingerprint_of, Fingerprint, StableHash, StableHasher};
