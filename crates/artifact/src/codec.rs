//! Little-endian byte codec for cached payloads.
//!
//! The build environment vendors only the serde *traits* (no format
//! crate), so cached study outputs use a hand-rolled frame: fixed-width
//! little-endian integers, `to_bits` floats, and length-prefixed
//! strings/sequences. Decoding is total — every read returns `Option`
//! and a malformed frame yields `None`, which the scheduler treats the
//! same as a corrupt cache entry (recompute, then overwrite).

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its bit pattern (NaN payloads round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// Cursor-based decoder over an encoded frame.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders check this to
    /// reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Reads a bool; bytes other than 0/1 are malformed.
    pub fn get_bool(&mut self) -> Option<bool> {
        match self.get_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Option<String> {
        let len = self.get_u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.get_u64()? as usize;
        self.take(len).map(|b| b.to_vec())
    }

    /// Reads a sequence length, bounding it by the bytes actually left
    /// so a corrupted length cannot trigger a huge allocation.
    pub fn get_len(&mut self) -> Option<usize> {
        let len = self.get_u64()? as usize;
        // Every element costs at least one byte in any of our frames.
        if len > self.remaining() {
            return None;
        }
        Some(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(f64::NAN);
        w.put_f64(-0.0);
        w.put_bool(true);
        w.put_str("schnell über ∞");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Some(u64::MAX - 1));
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_bool(), Some(true));
        assert_eq!(r.get_str().as_deref(), Some("schnell über ∞"));
        assert_eq!(r.get_bytes(), Some(vec![1, 2, 3]));
        assert!(r.is_exhausted());
    }

    #[test]
    fn short_reads_fail_cleanly() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u64(), None);
        // Failed read consumes nothing.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), Some(1));
    }

    #[test]
    fn bogus_lengths_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_len(), None);

        let mut w = ByteWriter::new();
        w.put_u64(100); // string claims 100 bytes, has 0
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).get_str(), None);
    }

    #[test]
    fn bad_bool_rejected() {
        assert_eq!(ByteReader::new(&[2]).get_bool(), None);
    }
}
