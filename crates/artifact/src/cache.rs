//! On-disk content-addressed cache.
//!
//! Entries live under one flat directory as `<fingerprint-hex>.bin`.
//! Each file carries a small header — magic, format version, payload
//! length, and an FNV-64 checksum — so a truncated, tampered, or
//! half-written entry is *detected* and reported as [`Lookup::Corrupt`]
//! rather than trusted. Writes go through a temp file in the same
//! directory followed by a rename, so concurrent readers only ever see
//! absent or complete entries.

use crate::hash::Fingerprint;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Header magic: "IRAC" (IR Artifact Cache).
const MAGIC: &[u8; 4] = b"IRAC";
/// On-disk format version; bump on layout changes.
const VERSION: u32 = 1;
/// magic + version + payload length + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// FNV-1a 64 over the payload — the corruption check, not a security
/// boundary.
fn checksum(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x100000001b3);
    }
    state
}

/// Result of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Entry present and intact; the payload.
    Hit(Vec<u8>),
    /// No entry under this fingerprint.
    Miss,
    /// An entry exists but failed validation (bad magic/version/length/
    /// checksum). Callers recompute; [`ArtifactCache::put`] then
    /// replaces the bad entry.
    Corrupt,
}

/// What [`ArtifactCache::gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries scanned.
    pub scanned: usize,
    /// Corrupt entries removed.
    pub corrupt_removed: usize,
    /// Intact entries evicted (oldest-first) to satisfy the byte
    /// budget.
    pub evicted: usize,
    /// Total payload+header bytes remaining after the pass.
    pub bytes_after: u64,
}

/// A content-addressed cache directory.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ArtifactCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.bin", key.to_hex()))
    }

    /// Probes the cache for `key`, validating the entry end to end.
    pub fn get(&self, key: Fingerprint) -> Lookup {
        let raw = match fs::read(self.entry_path(key)) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            // Unreadable (permissions, I/O error) is indistinguishable
            // from damaged for our purposes: recompute.
            Err(_) => return Lookup::Corrupt,
        };
        if raw.len() < HEADER_LEN || &raw[..4] != MAGIC {
            return Lookup::Corrupt;
        }
        let version = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Lookup::Corrupt;
        }
        let len = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")) as usize;
        let sum = u64::from_le_bytes(raw[16..24].try_into().expect("8 bytes"));
        let payload = &raw[HEADER_LEN..];
        if payload.len() != len || checksum(payload) != sum {
            return Lookup::Corrupt;
        }
        Lookup::Hit(payload.to_vec())
    }

    /// Stores `payload` under `key`, atomically replacing any existing
    /// (possibly corrupt) entry.
    pub fn put(&self, key: Fingerprint, payload: &[u8]) -> io::Result<()> {
        let final_path = self.entry_path(key);
        let tmp_path = self
            .dir
            .join(format!(".{}.{}.tmp", key.to_hex(), std::process::id()));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(MAGIC)?;
            f.write_all(&VERSION.to_le_bytes())?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&checksum(payload).to_le_bytes())?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        // Rename is atomic within a directory: readers see the old
        // entry, no entry, or the complete new one — never a torn file.
        let renamed = fs::rename(&tmp_path, &final_path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp_path);
        }
        renamed
    }

    /// Removes the entry under `key`, if any.
    pub fn remove(&self, key: Fingerprint) -> io::Result<()> {
        match fs::remove_file(self.entry_path(key)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// All entry fingerprints currently on disk (unordered).
    pub fn keys(&self) -> io::Result<Vec<Fingerprint>> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_suffix(".bin") {
                if let Some(fp) = Fingerprint::from_hex(hex) {
                    keys.push(fp);
                }
            }
        }
        Ok(keys)
    }

    /// Total bytes held by entries (headers included).
    pub fn total_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for key in self.keys()? {
            if let Ok(md) = fs::metadata(self.entry_path(key)) {
                total += md.len();
            }
        }
        Ok(total)
    }

    /// Garbage collection: drops every corrupt entry, then — if the
    /// intact entries exceed `max_bytes` — evicts oldest-modified
    /// first until the cache fits. Stale temp files from crashed
    /// writers are removed too.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        // (mtime, size, path) of intact entries.
        let mut intact: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let path = entry.path();
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(&path);
                continue;
            }
            let Some(hex) = name.strip_suffix(".bin") else {
                continue;
            };
            let Some(fp) = Fingerprint::from_hex(hex) else {
                continue;
            };
            report.scanned += 1;
            match self.get(fp) {
                Lookup::Hit(_) => {
                    let md = entry.metadata()?;
                    let mtime = md.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                    intact.push((mtime, md.len(), path));
                }
                _ => {
                    let _ = fs::remove_file(&path);
                    report.corrupt_removed += 1;
                }
            }
        }
        let mut total: u64 = intact.iter().map(|(_, size, _)| size).sum();
        intact.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
        let mut victims = intact.into_iter();
        while total > max_bytes {
            let Some((_, size, path)) = victims.next() else {
                break;
            };
            let _ = fs::remove_file(&path);
            report.evicted += 1;
            total -= size;
        }
        report.bytes_after = total;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fingerprint_of;

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("ir_artifact_cache_{}_{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactCache::open(dir).unwrap()
    }

    #[test]
    fn round_trip_hit() {
        let cache = temp_cache("round");
        let key = fingerprint_of(&"k1");
        assert_eq!(cache.get(key), Lookup::Miss);
        cache.put(key, b"hello artefact").unwrap();
        assert_eq!(cache.get(key), Lookup::Hit(b"hello artefact".to_vec()));
        // Overwrite wins.
        cache.put(key, b"v2").unwrap();
        assert_eq!(cache.get(key), Lookup::Hit(b"v2".to_vec()));
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn truncation_and_tampering_detected() {
        let cache = temp_cache("corrupt");
        let key = fingerprint_of(&"k2");
        cache.put(key, b"payload bytes here").unwrap();
        let path = cache.dir().join(format!("{}.bin", key.to_hex()));

        // Truncate mid-payload.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(cache.get(key), Lookup::Corrupt);

        // Flip a payload byte (length intact, checksum not).
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        fs::write(&path, &flipped).unwrap();
        assert_eq!(cache.get(key), Lookup::Corrupt);

        // Bad magic.
        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        fs::write(&path, &bad_magic).unwrap();
        assert_eq!(cache.get(key), Lookup::Corrupt);

        // put() repairs.
        cache.put(key, b"payload bytes here").unwrap();
        assert_eq!(cache.get(key), Lookup::Hit(b"payload bytes here".to_vec()));
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn empty_payload_is_valid() {
        let cache = temp_cache("empty");
        let key = fingerprint_of(&"k3");
        cache.put(key, b"").unwrap();
        assert_eq!(cache.get(key), Lookup::Hit(Vec::new()));
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn gc_removes_corrupt_and_evicts_oldest() {
        let cache = temp_cache("gc");
        let keys: Vec<Fingerprint> = (0..4u64).map(|i| fingerprint_of(&("gc", i))).collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.put(k, &[i as u8; 100]).unwrap();
        }
        // Make entry 0 older than the rest and entry 3 corrupt.
        let p0 = cache.dir().join(format!("{}.bin", keys[0].to_hex()));
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        let f = fs::File::options().append(true).open(&p0).unwrap();
        f.set_modified(old).unwrap();
        drop(f);
        let p3 = cache.dir().join(format!("{}.bin", keys[3].to_hex()));
        fs::write(&p3, b"garbage").unwrap();
        // Stale temp file from a crashed writer.
        fs::write(cache.dir().join(".deadbeef.123.tmp"), b"x").unwrap();

        // Budget fits two intact entries (header 24 + 100 payload each).
        let report = cache.gc(2 * 124).unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.corrupt_removed, 1);
        assert_eq!(report.evicted, 1);
        assert_eq!(report.bytes_after, 2 * 124);
        // The oldest intact entry went; the two newest survive.
        assert_eq!(cache.get(keys[0]), Lookup::Miss);
        assert!(matches!(cache.get(keys[1]), Lookup::Hit(_)));
        assert!(matches!(cache.get(keys[2]), Lookup::Hit(_)));
        assert_eq!(cache.get(keys[3]), Lookup::Miss);
        assert!(!cache.dir().join(".deadbeef.123.tmp").exists());
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn keys_and_total_bytes() {
        let cache = temp_cache("keys");
        let a = fingerprint_of(&"a");
        let b = fingerprint_of(&"b");
        cache.put(a, &[1, 2, 3]).unwrap();
        cache.put(b, &[4]).unwrap();
        let mut keys = cache.keys().unwrap();
        keys.sort();
        let mut want = vec![a, b];
        want.sort();
        assert_eq!(keys, want);
        assert_eq!(cache.total_bytes().unwrap(), (24 + 3) + (24 + 1));
        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
