//! The striped session runner.
//!
//! [`run_striped_paths_session_traced`] is the striper's twin of
//! `ir_core::run_paths_session_traced`: the prologue — control start,
//! resolvable-filter, probe race, telemetry — is replayed instruction
//! for instruction, so with [`SessionMode::Striped`] at one chunk and
//! `k = 1` the returned record is **bit-identical** to the racing
//! runner's on a healthy network (the differential tests pin this).
//! The difference is the remainder phase: instead of winner-take-all,
//! the remaining `n − x` bytes are partitioned into chunks fetched
//! concurrently over the direct path plus the (at most `k`) indirect
//! candidates, with per-path EWMA rate tracking, straggler stealing on
//! rate drift, and per-chunk reassignment on stalls and path death —
//! the per-chunk generalization of the racing runner's stall→re-race
//! failover machinery.

use crate::plan::{partition, ChunkRange};
use crate::rate::EwmaRate;
use ir_core::{
    select_measure_all, Handle, PathSpec, Predictor, ProbeMode, RebalanceConfig, SessionConfig,
    SessionMode, Timing, TransferRecord, Transport,
};
use ir_simnet::time::{SimDuration, SimTime};
use ir_simnet::topology::NodeId;
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;
use std::collections::VecDeque;

/// A chunk's remaining bytes are reassigned at most this many times
/// (stall, death, or drift-steal); past the cap the current owner keeps
/// it. Bounds rebalancing churn without bounding progress: the cap
/// only ever pins a chunk to a live, progressing path.
pub const MAX_CHUNK_REASSIGNS: u32 = 4;

/// Per-path chunk accounting for one striped session.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStripeStats {
    /// The path.
    pub path: PathSpec,
    /// Chunks this path completed.
    pub chunks: u64,
    /// Remainder bytes this path delivered (completed chunks plus the
    /// partial prefixes credited when a chunk was reassigned away).
    pub bytes: u64,
}

/// Scheduler accounting for one striped session — the chunk-assignment
/// observability the `striping` artefact's canary pins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StripeStats {
    /// Per-path accounting over the session's path roster (direct
    /// first, then the striped candidates, probe order). Empty for
    /// sessions that never reached a striped remainder phase (racing
    /// mode, direct-only, probe timeout).
    pub per_path: Vec<PathStripeStats>,
    /// Chunk reassignments performed (stall + drift combined).
    pub reassignments: u32,
    /// Paths declared dead mid-remainder.
    pub deaths: u32,
}

/// The striped twin of `ir_core::run_paths_session_traced`.
///
/// [`SessionMode::Racing`] configs are delegated to `ir-core`'s runner
/// unchanged; [`SessionMode::Striped`] configs run the probe phase
/// identically and then stripe the remainder. Telemetry is strictly
/// observational either way.
#[allow(clippy::too_many_arguments)] // striped twin of run_paths_session_traced; same signature
pub fn run_striped_paths_session_traced(
    transport: &mut dyn Transport,
    predictor: &mut dyn Predictor,
    client: NodeId,
    server: NodeId,
    indirect_paths: &[PathSpec],
    candidates: Vec<NodeId>,
    transfer_index: u64,
    cfg: &SessionConfig,
    tel: Option<&Telemetry>,
) -> TransferRecord {
    run_striped_paths_session_stats(
        transport,
        predictor,
        client,
        server,
        indirect_paths,
        candidates,
        transfer_index,
        cfg,
        tel,
    )
    .0
}

/// [`run_striped_paths_session_traced`] plus the scheduler's chunk
/// accounting — what the striping experiments aggregate into the
/// chunk-assignment canary.
#[allow(clippy::too_many_arguments)] // stats twin; same signature
pub fn run_striped_paths_session_stats(
    transport: &mut dyn Transport,
    predictor: &mut dyn Predictor,
    client: NodeId,
    server: NodeId,
    indirect_paths: &[PathSpec],
    candidates: Vec<NodeId>,
    transfer_index: u64,
    cfg: &SessionConfig,
    tel: Option<&Telemetry>,
) -> (TransferRecord, StripeStats) {
    let SessionMode::Striped {
        chunks,
        k,
        rebalance,
    } = cfg.mode
    else {
        let record = ir_core::run_paths_session_traced(
            transport,
            predictor,
            client,
            server,
            indirect_paths,
            candidates,
            transfer_index,
            cfg,
            tel,
        );
        return (record, StripeStats::default());
    };
    cfg.validate();
    let direct = PathSpec::direct(client, server);
    let t0 = transport.now();
    if let Some(tel) = tel {
        tel.metrics.counter("session_started", vec![]).inc();
        tel.tracer.record(
            Event::new(EventKind::SessionStart, t0.as_micros(), transfer_index)
                .with_u64("client", client.0 as u64)
                .with_u64("server", server.0 as u64)
                .with_u64("candidates", indirect_paths.len() as u64),
        );
    }

    // Resolvable-filter, exactly as the racing runner does it, then cap
    // the stripe width: the probe set *is* the stripe set, so `k` is
    // applied before the race (the `PathSelector` plane's `best_k`
    // produces the ordered candidate list this truncates).
    let mut candidate_paths: Vec<PathSpec> = indirect_paths
        .iter()
        .filter(|p| {
            let ok = transport.resolvable(p);
            if !ok {
                if let Some(tel) = tel {
                    tel.metrics.counter("path_unresolvable", vec![]).inc();
                    tel.tracer.record(
                        Event::new(
                            EventKind::PathUnresolvable,
                            transport.now().as_micros(),
                            transfer_index,
                        )
                        .with_str("path", p.to_string()),
                    );
                }
            }
            ok
        })
        .copied()
        .collect();
    candidate_paths.truncate(k as usize);

    // Control process: whole file on the direct path.
    enum Control {
        Live(Handle),
        Forked(Box<dyn Transport>, Handle),
    }
    let control = match cfg.control {
        ir_core::ControlMode::Forked => match transport.fork() {
            Some(mut forked) => {
                let h = forked.begin(&direct, cfg.file_bytes);
                Control::Forked(forked, h)
            }
            None => Control::Live(transport.begin(&direct, cfg.file_bytes)),
        },
        ir_core::ControlMode::Concurrent => Control::Live(transport.begin(&direct, cfg.file_bytes)),
    };

    // Selecting process.
    let mut stats = StripeStats::default();
    let (
        selected,
        probe_throughput,
        path_rate,
        probe_timeout,
        finished_ok,
        failovers,
        stall_ms,
        abandoned,
    ) = if candidate_paths.is_empty() {
        // Direct-only: nothing to stripe over; identical to racing.
        let h = transport.begin(&direct, cfg.file_bytes);
        let t = transport.finish(h, cfg.horizon);
        let rate = t.map(|t| t.throughput()).unwrap_or(f64::NAN);
        (direct, f64::NAN, rate, false, t.is_some(), 0, 0, false)
    } else {
        let paths: Vec<PathSpec> = std::iter::once(direct)
            .chain(candidate_paths.iter().copied())
            .collect();
        let handles: Vec<Handle> = paths
            .iter()
            .map(|p| transport.begin(p, cfg.probe_bytes))
            .collect();
        let t_probe = transport.now();
        if let Some(tel) = tel {
            tel.metrics.counter("session_probe_races", vec![]).inc();
            tel.tracer.record(
                Event::new(EventKind::ProbeStart, t_probe.as_micros(), transfer_index)
                    .with_u64("paths", handles.len() as u64)
                    .with_u64("probe_bytes", cfg.probe_bytes),
            );
        }

        // The probe decision, plus what racing throws away and striping
        // needs: an initial rate estimate and a warm-connection flag per
        // path. `progress` is a read-only observation, so the extra
        // loser bookkeeping cannot perturb the simulation.
        let decision: Option<(usize, f64, Vec<f64>, Vec<bool>)> = match cfg.probe_mode {
            ProbeMode::FirstToFinish => match transport.race(&handles, cfg.horizon) {
                Some(win) => {
                    let mut init = vec![0.0; paths.len()];
                    let mut warm = vec![false; paths.len()];
                    init[win.index] = win.timing.throughput();
                    warm[win.index] = true;
                    let dt = (transport.now() - t_probe).as_secs_f64();
                    for (i, &h) in handles.iter().enumerate() {
                        if i != win.index {
                            if dt > 0.0 {
                                init[i] = transport.progress(h) as f64 / dt;
                            }
                            transport.cancel(h);
                        }
                    }
                    Some((win.index, win.timing.throughput(), init, warm))
                }
                None => None,
            },
            ProbeMode::MeasureAll => {
                let timings: Vec<Option<Timing>> = handles
                    .iter()
                    .map(|&h| transport.finish(h, cfg.horizon))
                    .collect();
                let outcomes: Vec<Option<(f64, f64)>> = timings
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        t.as_ref().map(|t| {
                            let rate = t.throughput();
                            (rate, predictor.predict(&paths[i], rate))
                        })
                    })
                    .collect();
                select_measure_all(&paths, &outcomes).map(|(path, rate)| {
                    let index = paths
                        .iter()
                        .position(|p| *p == path)
                        .expect("winner in roster");
                    let init: Vec<f64> = timings
                        .iter()
                        .map(|t| t.as_ref().map(|t| t.throughput()).unwrap_or(0.0))
                        .collect();
                    let warm: Vec<bool> = timings.iter().map(|t| t.is_some()).collect();
                    (index, rate, init, warm)
                })
            }
        };

        match decision {
            Some((winner, probe_rate, init, warm)) => {
                let path = paths[winner];
                if let Some(tel) = tel {
                    let now_us = transport.now().as_micros();
                    let mut won = Event::new(EventKind::ProbeWon, now_us, transfer_index)
                        .with_str(
                            "path",
                            if path.is_indirect() {
                                "indirect"
                            } else {
                                "direct"
                            },
                        )
                        .with_f64("probe_rate", probe_rate);
                    if let Some(via) = path.via() {
                        won = won.with_u64("via", via.0 as u64);
                    }
                    tel.tracer.record(won);
                    if let Some(via) = path.via() {
                        tel.metrics.counter("session_path_switches", vec![]).inc();
                        tel.tracer.record(
                            Event::new(EventKind::PathSwitch, now_us, transfer_index)
                                .with_u64("via", via.0 as u64),
                        );
                    }
                }
                let out = run_striped_remainder(
                    transport,
                    predictor,
                    &paths,
                    winner,
                    &init,
                    &warm,
                    chunks,
                    &rebalance,
                    cfg,
                    transfer_index,
                    tel,
                );
                stats = StripeStats {
                    per_path: paths
                        .iter()
                        .zip(out.chunks_done.iter().zip(out.bytes_done.iter()))
                        .map(|(&path, (&chunks, &bytes))| PathStripeStats {
                            path,
                            chunks,
                            bytes,
                        })
                        .collect(),
                    reassignments: out.reassignments,
                    deaths: out.deaths,
                };
                (
                    paths[out.selected],
                    probe_rate,
                    out.rate,
                    false,
                    out.finished,
                    out.failovers,
                    out.stall_ms,
                    out.abandoned,
                )
            }
            None => {
                // Probe race timed out entirely; cancel everything and
                // fall back to a direct transfer — identical to racing.
                for &h in &handles {
                    transport.cancel(h);
                }
                if let Some(tel) = tel {
                    let now_us = transport.now().as_micros();
                    tel.metrics.counter("session_probe_timeouts", vec![]).inc();
                    tel.tracer
                        .record(Event::new(EventKind::ProbeTimeout, now_us, transfer_index));
                    tel.tracer.record(
                        Event::new(EventKind::Retry, now_us, transfer_index)
                            .with_str("fallback", "direct"),
                    );
                }
                let h = transport.begin(&direct, cfg.file_bytes);
                let ok = transport.finish(h, cfg.horizon).is_some();
                (direct, f64::NAN, f64::NAN, true, ok, 0, 0, false)
            }
        }
    };

    // Epilogue: identical to the racing runner.
    let t_end = transport.now();
    let wall = (t_end - t0).as_secs_f64();
    let selected_throughput = if finished_ok && wall > 0.0 {
        cfg.file_bytes as f64 / wall
    } else {
        0.0
    };
    let control_horizon = SimDuration::from_micros(cfg.horizon.as_micros() * 2);
    let direct_throughput = match control {
        Control::Live(h) => transport
            .finish(h, control_horizon)
            .map(|t| t.throughput())
            .unwrap_or(0.0),
        Control::Forked(mut forked, h) => forked
            .finish(h, control_horizon)
            .map(|t| t.throughput())
            .unwrap_or(0.0),
    };

    let record = TransferRecord {
        client,
        server,
        started: t0,
        file_bytes: cfg.file_bytes,
        selected,
        candidates,
        direct_throughput,
        selected_throughput,
        probe_throughput,
        selected_path_rate: path_rate,
        probe_timeout,
        failovers,
        stall_ms,
        abandoned,
    };
    if let Some(tel) = tel {
        let wall_us = (t_end - t0).as_micros();
        tel.metrics.counter("session_completed", vec![]).inc();
        tel.metrics
            .histogram("session_wall_us", vec![])
            .record(wall_us);
        tel.tracer.record(
            Event::span(
                EventKind::SessionComplete,
                t0.as_micros(),
                wall_us,
                transfer_index,
            )
            .with_f64("improvement", record.improvement())
            .with_f64("direct_bps", record.direct_throughput)
            .with_f64("selected_bps", record.selected_throughput),
        );
        for s in &stats.per_path {
            if s.chunks > 0 {
                tel.metrics
                    .counter("stripe_path_chunks", vec![("path", s.path.to_string())])
                    .add(s.chunks);
            }
        }
    }
    (record, stats)
}

/// One chunk in flight on one path.
struct Flight {
    path: usize,
    chunk: ChunkRange,
    handle: Handle,
    /// Bytes observed delivered at the last sweep.
    seen: u64,
    /// When the flight launched (per-chunk rate denominator).
    launched: SimTime,
    /// Last instant the flight was seen to move (stall-death clock).
    last_progress_at: SimTime,
    /// Times this chunk's bytes have been reassigned so far.
    reassigns: u32,
}

/// Scheduler outcome, in the racing runner's remainder vocabulary plus
/// the striping accounting.
struct SchedOutcome {
    /// Roster index of the path that delivered the most remainder
    /// bytes (the winner on ties — single-chunk sessions degenerate to
    /// the probe decision exactly).
    selected: usize,
    finished: bool,
    /// Aggregate remainder rate: remainder bytes over remainder wall
    /// time (NaN when abandoned).
    rate: f64,
    failovers: u32,
    stall_ms: u64,
    abandoned: bool,
    chunks_done: Vec<u64>,
    bytes_done: Vec<u64>,
    reassignments: u32,
    deaths: u32,
}

/// Launches `chunk` on roster path `p`, consuming its warm connection
/// if one is available.
fn launch(
    transport: &mut dyn Transport,
    paths: &[PathSpec],
    warm: &mut [bool],
    flights: &mut Vec<Flight>,
    p: usize,
    chunk: ChunkRange,
    reassigns: u32,
) {
    let handle = if warm[p] {
        transport.begin_warm(&paths[p], chunk.len)
    } else {
        transport.begin(&paths[p], chunk.len)
    };
    warm[p] = false;
    let now = transport.now();
    flights.push(Flight {
        path: p,
        chunk,
        handle,
        seen: 0,
        launched: now,
        last_progress_at: now,
        reassigns,
    });
}

/// Alive paths with no flight, best EWMA estimate first (ties keep the
/// lower roster index — the direct path).
fn free_paths(rate: &[EwmaRate], alive: &[bool], flights: &[Flight]) -> Vec<usize> {
    let mut busy = vec![false; rate.len()];
    for f in flights {
        busy[f.path] = true;
    }
    let mut free: Vec<usize> = (0..rate.len()).filter(|&p| alive[p] && !busy[p]).collect();
    free.sort_by(|&a, &b| rate[b].get().total_cmp(&rate[a].get()).then(a.cmp(&b)));
    free
}

/// The striped remainder phase: partition, fan out, race completions,
/// rebalance on drift, reassign on stall-death.
#[allow(clippy::too_many_arguments)] // remainder tail shares the session's full parameter set
fn run_striped_remainder(
    transport: &mut dyn Transport,
    predictor: &mut dyn Predictor,
    paths: &[PathSpec],
    winner: usize,
    init_rates: &[f64],
    warm_init: &[bool],
    chunks: u32,
    rb: &RebalanceConfig,
    cfg: &SessionConfig,
    transfer_index: u64,
    tel: Option<&Telemetry>,
) -> SchedOutcome {
    let total = cfg.file_bytes - cfg.probe_bytes;
    let started = transport.now();
    let deadline = started + cfg.horizon;
    let n = paths.len();
    let mut rate: Vec<EwmaRate> = init_rates
        .iter()
        .map(|&r| EwmaRate::seeded(rb.alpha, r))
        .collect();
    let mut alive = vec![true; n];
    let mut warm = warm_init.to_vec();
    let mut chunks_done = vec![0u64; n];
    let mut bytes_done = vec![0u64; n];
    let mut flights: Vec<Flight> = Vec::new();
    let mut pending: VecDeque<(ChunkRange, u32)> = partition(cfg.probe_bytes, total, chunks)
        .into_iter()
        .map(|c| (c, 0))
        .collect();
    let mut failovers = 0u32;
    let mut stall_ms = 0u64;
    let mut reassignments = 0u32;
    let mut deaths = 0u32;

    // The first chunk rides the probe winner's warm connection (the
    // racing protocol's remainder request, §2.1); the rest fan out to
    // free paths, best initial estimate first.
    if let Some((c, r)) = pending.pop_front() {
        launch(transport, paths, &mut warm, &mut flights, winner, c, r);
    }
    for p in free_paths(&rate, &alive, &flights) {
        let Some((c, r)) = pending.pop_front() else {
            break;
        };
        launch(transport, paths, &mut warm, &mut flights, p, c, r);
    }

    let abandon = |transport: &mut dyn Transport,
                   flights: Vec<Flight>,
                   selected: usize,
                   failovers: u32,
                   stall_ms: u64,
                   chunks_done: Vec<u64>,
                   bytes_done: Vec<u64>,
                   reassignments: u32,
                   deaths: u32,
                   tel: Option<&Telemetry>| {
        for f in &flights {
            transport.cancel(f.handle);
        }
        if let Some(tel) = tel {
            tel.metrics.counter("session_abandoned", vec![]).inc();
        }
        SchedOutcome {
            selected,
            finished: false,
            rate: f64::NAN,
            failovers,
            stall_ms,
            abandoned: true,
            chunks_done,
            bytes_done,
            reassignments,
            deaths,
        }
    };

    loop {
        if flights.is_empty() {
            if pending.is_empty() {
                break; // every chunk delivered
            }
            // Work left but nothing in the air: every path is dead.
            let selected = best_path(&bytes_done, winner);
            return abandon(
                transport,
                flights,
                selected,
                failovers,
                stall_ms,
                chunks_done,
                bytes_done,
                reassignments,
                deaths,
                tel,
            );
        }
        let now = transport.now();
        if now >= deadline {
            let selected = best_path(&bytes_done, winner);
            return abandon(
                transport,
                flights,
                selected,
                failovers,
                stall_ms,
                chunks_done,
                bytes_done,
                reassignments,
                deaths,
                tel,
            );
        }
        let window = rb.stall_window.min(deadline - now);
        let handles: Vec<Handle> = flights.iter().map(|f| f.handle).collect();
        match transport.race(&handles, window) {
            Some(win) => {
                let f = flights.remove(win.index);
                let p = f.path;
                let observed = win.timing.throughput();
                rate[p].observe(observed);
                // Feed each realized chunk rate back, as racing does
                // for its single remainder flow.
                predictor.observe(&paths[p], observed);
                chunks_done[p] += 1;
                bytes_done[p] += f.chunk.len;
                warm[p] = true;
                if let Some(tel) = tel {
                    tel.metrics.counter("stripe_chunks_completed", vec![]).inc();
                }
                if let Some((c, r)) = pending.pop_front() {
                    launch(transport, paths, &mut warm, &mut flights, p, c, r);
                } else {
                    maybe_steal(
                        transport,
                        paths,
                        &mut rate,
                        &mut warm,
                        &mut flights,
                        &mut bytes_done,
                        &mut reassignments,
                        p,
                        rb,
                        transfer_index,
                        tel,
                    );
                }
            }
            None => {
                // Window expired with no completion: sweep for stalls.
                let now = transport.now();
                let mut dead: Vec<usize> = Vec::new();
                for (i, f) in flights.iter_mut().enumerate() {
                    let delivered = transport.progress(f.handle);
                    if delivered > f.seen {
                        f.seen = delivered;
                        f.last_progress_at = now;
                    } else if now - f.last_progress_at >= rb.stall_window {
                        dead.push(i);
                    }
                }
                for i in dead.into_iter().rev() {
                    let f = flights.remove(i);
                    let p = f.path;
                    alive[p] = false;
                    warm[p] = false;
                    deaths += 1;
                    failovers += 1;
                    stall_ms += (now - f.last_progress_at).as_micros() / 1000;
                    transport.cancel(f.handle);
                    bytes_done[p] += f.seen;
                    let rest = f.chunk.len - f.seen;
                    if rest > 0 {
                        reassignments += 1;
                        if let Some(tel) = tel {
                            tel.metrics.counter("stripe_path_deaths", vec![]).inc();
                            tel.metrics
                                .counter("stripe_chunks_reassigned", vec![])
                                .inc();
                            tel.tracer.record(
                                Event::new(
                                    EventKind::ChunkReassigned,
                                    now.as_micros(),
                                    transfer_index,
                                )
                                .with_u64("chunk", u64::from(f.chunk.id))
                                .with_str("from", paths[p].to_string())
                                .with_str("reason", "stall")
                                .with_u64("remaining", rest),
                            );
                        }
                        pending.push_front((
                            ChunkRange {
                                id: f.chunk.id,
                                offset: f.chunk.offset + f.seen,
                                len: rest,
                            },
                            f.reassigns + 1,
                        ));
                    } else if let Some(tel) = tel {
                        tel.metrics.counter("stripe_path_deaths", vec![]).inc();
                    }
                }
                // Hand the reassigned remainders to the survivors.
                for p in free_paths(&rate, &alive, &flights) {
                    let Some((c, r)) = pending.pop_front() else {
                        break;
                    };
                    launch(transport, paths, &mut warm, &mut flights, p, c, r);
                }
            }
        }
    }

    let end = transport.now();
    let wall = (end - started).as_secs_f64();
    let agg = if wall > 0.0 {
        total as f64 / wall
    } else {
        f64::INFINITY
    };
    SchedOutcome {
        selected: best_path(&bytes_done, winner),
        finished: true,
        rate: agg,
        failovers,
        stall_ms,
        abandoned: false,
        chunks_done,
        bytes_done,
        reassignments,
        deaths,
    }
}

/// The path that delivered the most remainder bytes; the probe winner
/// keeps ties (single-chunk sessions thus report the probe decision).
fn best_path(bytes_done: &[u64], winner: usize) -> usize {
    let mut best = winner;
    for (p, &b) in bytes_done.iter().enumerate() {
        if b > bytes_done[best] {
            best = p;
        }
    }
    best
}

/// Drift rebalancing: free path `p` (just finished a chunk, queue
/// empty) steals the largest remaining chunk whose current owner's
/// observed rate has drifted `drift_ratio`× below `p`'s estimate. The
/// victim's estimate is dragged down to its observed rate first, so it
/// cannot immediately steal the chunk back.
#[allow(clippy::too_many_arguments)] // scheduler interior; shares the loop's working set
fn maybe_steal(
    transport: &mut dyn Transport,
    paths: &[PathSpec],
    rate: &mut [EwmaRate],
    warm: &mut [bool],
    flights: &mut Vec<Flight>,
    bytes_done: &mut [u64],
    reassignments: &mut u32,
    p: usize,
    rb: &RebalanceConfig,
    transfer_index: u64,
    tel: Option<&Telemetry>,
) {
    if rate[p].get() <= 0.0 {
        return;
    }
    let now = transport.now();
    let mut victim: Option<(usize, u64, f64)> = None; // (flight, remaining, observed)
    for (i, f) in flights.iter().enumerate() {
        if f.reassigns >= MAX_CHUNK_REASSIGNS {
            continue;
        }
        let delivered = transport.progress(f.handle);
        let remaining = f.chunk.len.saturating_sub(delivered);
        if remaining == 0 {
            continue;
        }
        let dt = (now - f.launched).as_secs_f64();
        // A flight that has moved is judged on its realized rate; one
        // that has not yet moved is judged on its path's estimate, so a
        // freshly-launched healthy flight is not stolen on a technicality.
        let observed = if delivered > 0 && dt > 0.0 {
            delivered as f64 / dt
        } else {
            rate[f.path].get()
        };
        if rate[p].get() > rb.drift_ratio * observed {
            let better = match victim {
                None => true,
                Some((_, best_remaining, _)) => remaining > best_remaining,
            };
            if better {
                victim = Some((i, remaining, observed));
            }
        }
    }
    let Some((i, remaining, observed)) = victim else {
        return;
    };
    let f = flights.remove(i);
    let delivered = f.chunk.len - remaining;
    transport.cancel(f.handle);
    warm[f.path] = false;
    bytes_done[f.path] += delivered;
    rate[f.path].observe(observed);
    *reassignments += 1;
    if let Some(tel) = tel {
        tel.metrics
            .counter("stripe_chunks_reassigned", vec![])
            .inc();
        tel.tracer.record(
            Event::new(EventKind::ChunkReassigned, now.as_micros(), transfer_index)
                .with_u64("chunk", u64::from(f.chunk.id))
                .with_str("from", paths[f.path].to_string())
                .with_str("reason", "drift")
                .with_u64("remaining", remaining),
        );
    }
    launch(
        transport,
        paths,
        warm,
        flights,
        p,
        ChunkRange {
            id: f.chunk.id,
            offset: f.chunk.offset + delivered,
            len: remaining,
        },
        f.reassigns + 1,
    );
}
