//! Chunk partitioning and the shared claim queue.
//!
//! [`partition`] splits the remainder range into near-equal chunks; the
//! simulated scheduler (`session`) owns its chunks directly, while the
//! socket-backed striped client (`ir-relay`) shares a [`ChunkQueue`]
//! between per-path worker threads, each claiming the next chunk with
//! one atomic increment.

use std::sync::atomic::{AtomicUsize, Ordering};

/// One contiguous byte range of the transfer, identified by its
/// position in the original partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRange {
    /// Index in the original partition (stable across rebalancing — a
    /// reassigned remainder keeps its chunk id).
    pub id: u32,
    /// Absolute offset of the first byte.
    pub offset: u64,
    /// Length in bytes (> 0 for every chunk `partition` emits).
    pub len: u64,
}

impl ChunkRange {
    /// One past the last byte.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Splits `[start, start + total)` into at most `chunks` contiguous,
/// disjoint, non-empty ranges covering it exactly. Fewer chunks come
/// back when `total < chunks` (every chunk carries at least one byte);
/// `total == 0` yields no chunks. Earlier chunks absorb the remainder,
/// so sizes differ by at most one byte.
pub fn partition(start: u64, total: u64, chunks: u32) -> Vec<ChunkRange> {
    let n = u64::from(chunks.max(1)).min(total);
    let mut out = Vec::with_capacity(n as usize);
    let base = total.checked_div(n).unwrap_or(0);
    let extra = total.checked_rem(n).unwrap_or(0);
    let mut offset = start;
    for id in 0..n {
        let len = base + u64::from(id < extra);
        out.push(ChunkRange {
            id: id as u32,
            offset,
            len,
        });
        offset += len;
    }
    out
}

/// A lock-free multi-claimer chunk queue: each worker thread claims the
/// next unclaimed chunk with one `fetch_add`, so every chunk is claimed
/// exactly once no matter how claims interleave (model-checked under
/// loom in `tests/permutation.rs`).
#[derive(Debug)]
pub struct ChunkQueue {
    chunks: Vec<ChunkRange>,
    next: AtomicUsize,
}

impl ChunkQueue {
    /// A queue over a fixed chunk list.
    pub fn new(chunks: Vec<ChunkRange>) -> ChunkQueue {
        ChunkQueue {
            chunks,
            next: AtomicUsize::new(0),
        }
    }

    /// Claims the next unclaimed chunk, or `None` once all are taken.
    pub fn claim(&self) -> Option<ChunkRange> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.chunks.get(i).copied()
    }

    /// Total chunks (claimed or not).
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True when the queue was built over no chunks at all.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_range_exactly() {
        for (start, total, chunks) in [
            (0, 100, 4),
            (131072, 1_997_152, 8),
            (5, 7, 3),
            (0, 1, 9),
            (9, 10, 1),
        ] {
            let parts = partition(start, total, chunks);
            assert!(!parts.is_empty());
            assert!(parts.len() as u64 <= u64::from(chunks).min(total));
            assert_eq!(parts[0].offset, start);
            assert_eq!(parts.last().unwrap().end(), start + total);
            for w in parts.windows(2) {
                assert_eq!(w[0].end(), w[1].offset, "gap or overlap");
            }
            assert_eq!(parts.iter().map(|c| c.len).sum::<u64>(), total);
            // Near-equal: sizes differ by at most one byte.
            let min = parts.iter().map(|c| c.len).min().unwrap();
            let max = parts.iter().map(|c| c.len).max().unwrap();
            assert!(max - min <= 1, "{min}..{max}");
            // Ids are the partition order.
            for (i, c) in parts.iter().enumerate() {
                assert_eq!(c.id, i as u32);
                assert!(c.len > 0);
            }
        }
    }

    #[test]
    fn partition_degenerates_gracefully() {
        assert!(partition(10, 0, 4).is_empty());
        // More chunks than bytes: one single-byte chunk per byte.
        assert_eq!(partition(0, 3, 100).len(), 3);
        // chunks == 0 is treated as 1 (the mode validator rejects it
        // upstream; the planner still never divides by zero).
        assert_eq!(partition(0, 50, 0).len(), 1);
    }

    #[test]
    fn queue_claims_each_chunk_once_in_order() {
        let q = ChunkQueue::new(partition(0, 100, 4));
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        let ids: Vec<u32> = std::iter::from_fn(|| q.claim().map(|c| c.id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(q.claim().is_none(), "exhausted queue stays exhausted");
    }
}
