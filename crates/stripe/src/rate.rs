//! Per-path EWMA rate tracking for the chunk scheduler.

/// An exponentially-weighted moving average over observed per-chunk
/// throughputs. A rate of zero means "no estimate yet": the first
/// finite positive observation is adopted wholesale rather than blended
/// against nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaRate {
    alpha: f64,
    rate: f64,
}

impl EwmaRate {
    /// A tracker with no estimate yet.
    pub fn new(alpha: f64) -> EwmaRate {
        EwmaRate { alpha, rate: 0.0 }
    }

    /// A tracker seeded with an initial estimate (e.g. the probe rate).
    /// Non-finite or negative seeds collapse to "no estimate".
    pub fn seeded(alpha: f64, rate: f64) -> EwmaRate {
        let mut e = EwmaRate::new(alpha);
        if rate.is_finite() && rate > 0.0 {
            e.rate = rate;
        }
        e
    }

    /// Folds one observed throughput into the estimate. Non-finite or
    /// negative observations are ignored (a cancelled flow measures
    /// nothing); an observed zero is blended in — sustained silence
    /// should drag the estimate down, not freeze it.
    pub fn observe(&mut self, observed: f64) {
        if !observed.is_finite() || observed < 0.0 {
            return;
        }
        if self.rate > 0.0 {
            self.rate = self.alpha * observed + (1.0 - self.alpha) * self.rate;
        } else {
            self.rate = observed;
        }
    }

    /// Current estimate in bytes/sec (zero while unseeded).
    pub fn get(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_adopted() {
        let mut e = EwmaRate::new(0.3);
        assert_eq!(e.get(), 0.0);
        e.observe(1000.0);
        assert_eq!(e.get(), 1000.0);
    }

    #[test]
    fn later_observations_blend() {
        let mut e = EwmaRate::seeded(0.25, 1000.0);
        e.observe(2000.0);
        assert!((e.get() - 1250.0).abs() < 1e-9);
        e.observe(0.0); // silence drags the estimate down
        assert!((e.get() - 937.5).abs() < 1e-9);
    }

    #[test]
    fn garbage_is_ignored() {
        let mut e = EwmaRate::seeded(0.5, 500.0);
        e.observe(f64::NAN);
        e.observe(f64::INFINITY);
        e.observe(-1.0);
        assert_eq!(e.get(), 500.0);
        assert_eq!(EwmaRate::seeded(0.5, f64::NAN).get(), 0.0);
        assert_eq!(EwmaRate::seeded(0.5, -3.0).get(), 0.0);
    }
}
