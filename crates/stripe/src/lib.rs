//! `ir-stripe` — mHTTP-style multi-source range striping.
//!
//! The paper's protocol is winner-take-all: the probe race picks one
//! path and the whole remainder rides it, so a prediction that goes
//! stale right after the decision is paid for until the horizon (the
//! penalty tail of the variability studies). This crate generalizes
//! the remainder phase: partition the remaining `n − x` bytes into
//! chunks and fetch disjoint chunks concurrently over the **direct
//! path plus the best `k` indirect candidates**, tracking a per-path
//! EWMA rate and reassigning remaining bytes when a path stalls, dies,
//! or drifts — so a stale single-path prediction costs one chunk, not
//! the whole file.
//!
//! * [`plan`] — [`plan::partition`] (near-equal chunking) and
//!   [`plan::ChunkQueue`] (the atomic claim queue the socket-backed
//!   striped client shares between per-path workers).
//! * [`rate`] — [`rate::EwmaRate`], the per-path throughput tracker.
//! * [`session`] — [`session::run_striped_paths_session_traced`], the
//!   striped twin of `ir_core::run_paths_session_traced`: identical
//!   prologue and probe phase, striped remainder. With
//!   `SessionMode::Striped { chunks: 1, k: 1, .. }` on a healthy
//!   network its record is bit-identical to the racing runner's
//!   (pinned by `tests/differential.rs`).
//!
//! Configuration lives in `ir-core` ([`ir_core::SessionMode::Striped`]
//! and [`ir_core::RebalanceConfig`]) so session fingerprints cover the
//! striping knobs; this crate is the execution engine.

pub mod plan;
pub mod rate;
pub mod session;

pub use plan::{partition, ChunkQueue, ChunkRange};
pub use rate::EwmaRate;
pub use session::{
    run_striped_paths_session_stats, run_striped_paths_session_traced, PathStripeStats,
    StripeStats, MAX_CHUNK_REASSIGNS,
};
