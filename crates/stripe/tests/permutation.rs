#![cfg(loom)]
//! Loom model test for the shared chunk claim queue.
//!
//! The socket-backed striped client (`ir-relay`) shares one
//! [`ChunkQueue`] between per-path worker threads; each worker loops
//! `claim()` until the queue runs dry. Under the loom shim every
//! thread completion order is explored: in all of them, every chunk
//! must be claimed exactly once and no worker may observe a chunk
//! twice — the invariant the byte-identical reassembly rests on.

use ir_stripe::plan::{partition, ChunkQueue};
use loom::sync::{Arc, Mutex};

#[test]
fn every_chunk_claimed_exactly_once_under_all_orders() {
    loom::model(|| {
        let queue = Arc::new(ChunkQueue::new(partition(131_072, 1_965_056, 5)));
        let claimed = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let claimed = Arc::clone(&claimed);
                loom::thread::spawn(move || {
                    let mut mine = 0usize;
                    while let Some(chunk) = queue.claim() {
                        claimed.lock().unwrap().push(chunk.id);
                        mine += 1;
                    }
                    mine
                })
            })
            .collect();
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 5, "five chunks, five claims");
        let mut ids = claimed.lock().unwrap().clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "each chunk claimed exactly once");
    });
}
