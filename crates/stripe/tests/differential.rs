//! Differential and fault-injection tests for the striped runner.
//!
//! The load-bearing guarantee: `SessionMode::Striped { chunks: 1,
//! k: 1 }` on a healthy network produces a record **bit-identical** to
//! the racing runner's. Everything striping adds (multi-chunk fan-out,
//! drift stealing, stall-death reassignment) must therefore be visible
//! only on the geometries it exists for.

use ir_core::predictor::FirstPortion;
use ir_core::sim_transport::SimTransport;
use ir_core::{
    run_paths_session_traced, PathSpec, ProbeMode, RebalanceConfig, SessionConfig, SessionMode,
};
use ir_simnet::bandwidth::ConstantProcess;
use ir_simnet::faults::FaultPlan;
use ir_simnet::sim::Network;
use ir_simnet::time::{SimDuration, SimTime};
use ir_simnet::topology::{LinkId, NodeId, NodeKind, Topology};
use ir_stripe::{run_striped_paths_session_stats, run_striped_paths_session_traced};
use ir_telemetry::trace::EventKind;
use ir_telemetry::Telemetry;

/// A 3-node world where the indirect path runs at `overlay_rate` and
/// the direct path at `direct_rate` (mirrors `ir-core`'s session test
/// world so the differential baselines match its fixtures).
fn world(direct_rate: f64, overlay_rate: f64) -> (SimTransport, NodeId, NodeId, NodeId) {
    faulty_world(direct_rate, overlay_rate, |_, _| FaultPlan::default())
}

fn faulty_world(
    direct_rate: f64,
    overlay_rate: f64,
    plan: impl FnOnce(LinkId, LinkId) -> FaultPlan,
) -> (SimTransport, NodeId, NodeId, NodeId) {
    let mut t = Topology::new();
    let c = t.add_node("client", NodeKind::Client);
    let v = t.add_node("relay", NodeKind::Intermediate);
    let s = t.add_node("server", NodeKind::Server);
    let l_cs = t.add_link(c, s, SimDuration::from_millis(80));
    let l_cv = t.add_link(c, v, SimDuration::from_millis(50));
    let l_vs = t.add_link(v, s, SimDuration::from_millis(15));
    let mut net = Network::new(t, 1.0);
    net.set_link_process(l_cs, Box::new(ConstantProcess::new(direct_rate)));
    net.set_link_process(l_cv, Box::new(ConstantProcess::new(overlay_rate)));
    net.set_link_process(l_vs, Box::new(ConstantProcess::new(50e6)));
    net.set_fault_plan(&plan(l_cs, l_cv));
    (SimTransport::new(net), c, v, s)
}

fn striped(chunks: u32, k: u32) -> SessionConfig {
    let mut cfg = SessionConfig::paper_defaults();
    cfg.mode = SessionMode::Striped {
        chunks,
        k,
        rebalance: RebalanceConfig::paper_defaults(),
    };
    cfg
}

fn run_racing(
    tp: &mut SimTransport,
    c: NodeId,
    v: NodeId,
    s: NodeId,
    cfg: &SessionConfig,
) -> ir_core::TransferRecord {
    run_paths_session_traced(
        tp,
        &mut FirstPortion,
        c,
        s,
        &[PathSpec::indirect(c, s, v)],
        vec![v],
        0,
        cfg,
        None,
    )
}

fn run_striped(
    tp: &mut SimTransport,
    c: NodeId,
    v: NodeId,
    s: NodeId,
    cfg: &SessionConfig,
) -> (ir_core::TransferRecord, ir_stripe::StripeStats) {
    run_striped_paths_session_stats(
        tp,
        &mut FirstPortion,
        c,
        s,
        &[PathSpec::indirect(c, s, v)],
        vec![v],
        0,
        cfg,
        None,
    )
}

/// The tentpole identity: one chunk, k = 1, healthy network — the
/// striper's record is the racing record, bit for bit, in both probe
/// modes and regardless of which path wins the probe.
#[test]
fn single_chunk_k1_is_bit_identical_to_racing() {
    for (direct, overlay) in [(100_000.0, 800_000.0), (800_000.0, 50_000.0)] {
        for probe_mode in [ProbeMode::FirstToFinish, ProbeMode::MeasureAll] {
            let mut racing_cfg = SessionConfig::paper_defaults();
            racing_cfg.probe_mode = probe_mode;
            let mut striped_cfg = striped(1, 1);
            striped_cfg.probe_mode = probe_mode;

            let (mut tp1, c1, v1, s1) = world(direct, overlay);
            let raced = run_racing(&mut tp1, c1, v1, s1, &racing_cfg);

            let (mut tp2, c2, v2, s2) = world(direct, overlay);
            let (striped_rec, stats) = run_striped(&mut tp2, c2, v2, s2, &striped_cfg);

            assert_eq!(
                raced, striped_rec,
                "striped {{1, 1}} diverged from racing (direct {direct}, overlay {overlay}, {probe_mode:?})"
            );
            // The whole remainder rode the probe winner, in one chunk.
            assert_eq!(stats.per_path.iter().map(|p| p.chunks).sum::<u64>(), 1);
            assert_eq!(stats.reassignments, 0);
            assert_eq!(stats.deaths, 0);
        }
    }
}

/// Racing-mode configs pass through to the `ir-core` runner untouched.
#[test]
fn racing_mode_delegates_to_core() {
    let cfg = SessionConfig::paper_defaults();
    let (mut tp1, c1, v1, s1) = world(100_000.0, 800_000.0);
    let raced = run_racing(&mut tp1, c1, v1, s1, &cfg);
    let (mut tp2, c2, v2, s2) = world(100_000.0, 800_000.0);
    let (delegated, stats) = run_striped(&mut tp2, c2, v2, s2, &cfg);
    assert_eq!(raced, delegated);
    assert!(stats.per_path.is_empty(), "racing mode has no stripe stats");
}

/// Telemetry is strictly observational: a traced striped session
/// returns the identical record and emits the stripe counters.
#[test]
fn traced_striped_session_is_bit_identical_and_counts_chunks() {
    let cfg = striped(6, 1);
    let (mut tp1, c1, v1, s1) = world(100_000.0, 800_000.0);
    let (plain, stats) = run_striped(&mut tp1, c1, v1, s1, &cfg);

    let (mut tp2, c2, v2, s2) = world(100_000.0, 800_000.0);
    let tel = Telemetry::new();
    let traced = run_striped_paths_session_traced(
        &mut tp2,
        &mut FirstPortion,
        c2,
        s2,
        &[PathSpec::indirect(c2, s2, v2)],
        vec![v2],
        0,
        &cfg,
        Some(&tel),
    );
    assert_eq!(plain, traced, "telemetry changed the record");
    let snap = tel.metrics.snapshot();
    assert_eq!(snap.counter("session_started", &vec![]), Some(1));
    assert_eq!(snap.counter("stripe_chunks_completed", &vec![]), Some(6));
    // Per-path chunk counters reconcile with the stats the scheduler
    // reported on the untraced run.
    for p in stats.per_path.iter().filter(|p| p.chunks > 0) {
        assert_eq!(
            snap.counter("stripe_path_chunks", &vec![("path", p.path.to_string())]),
            Some(p.chunks),
            "path {} chunk counter",
            p.path
        );
    }
}

/// Multi-chunk striping on a healthy asymmetric network: both paths
/// carry bytes, every chunk completes, and the session beats the
/// winner-take-all racer (the direct path's idle capacity is free).
#[test]
fn multi_chunk_striping_uses_both_paths_and_completes() {
    let cfg = striped(8, 1);
    let (mut tp, c, v, s) = world(400_000.0, 800_000.0);
    let (rec, stats) = run_striped(&mut tp, c, v, s, &cfg);
    assert!(!rec.abandoned);
    assert!(rec.selected_throughput > 0.0);
    assert_eq!(stats.per_path.iter().map(|p| p.chunks).sum::<u64>(), 8);
    assert_eq!(stats.per_path.len(), 2, "direct + one candidate");
    for p in &stats.per_path {
        assert!(p.chunks > 0, "path {} sat idle", p.path);
    }
    assert_eq!(stats.deaths, 0);
    assert_eq!(
        rec.file_bytes,
        cfg.probe_bytes + stats.per_path.iter().map(|p| p.bytes).sum::<u64>(),
        "every remainder byte accounted to exactly one path"
    );
}

/// The stale-prediction geometry striping exists for: the overlay wins
/// the probe, then browns out to a crawl immediately after the
/// decision. Racing (even with failover) keeps waiting — the path
/// still trickles, so no stall ever fires — while the striper's drift
/// rebalancer moves the remaining chunks to the healthy direct path.
#[test]
fn striping_beats_racing_on_stale_prediction_brownout() {
    let brownout = |_cs: LinkId, cv: LinkId| {
        FaultPlan::default().brownout(cv, SimTime::from_secs(1), SimTime::from_secs(4000), 0.02)
    };
    let mut racing_cfg = SessionConfig::paper_defaults();
    racing_cfg.failover = Some(ir_core::FailoverConfig::paper_defaults());
    racing_cfg.horizon = SimDuration::from_secs(3600);
    let (mut tp1, c1, v1, s1) = faulty_world(100_000.0, 800_000.0, brownout);
    let raced = run_racing(&mut tp1, c1, v1, s1, &racing_cfg);

    let mut striped_cfg = striped(8, 1);
    striped_cfg.horizon = SimDuration::from_secs(3600);
    let (mut tp2, c2, v2, s2) = faulty_world(100_000.0, 800_000.0, brownout);
    let (striped_rec, stats) = run_striped(&mut tp2, c2, v2, s2, &striped_cfg);

    assert!(!raced.abandoned && !striped_rec.abandoned);
    assert!(
        striped_rec.selected_throughput > 1.5 * raced.selected_throughput,
        "striping should dodge the stale-prediction penalty: striped {} vs raced {}",
        striped_rec.selected_throughput,
        raced.selected_throughput
    );
    assert!(
        stats.reassignments > 0,
        "the win must come from rebalancing"
    );
    let direct_bytes = stats
        .per_path
        .iter()
        .filter(|p| !p.path.is_indirect())
        .map(|p| p.bytes)
        .sum::<u64>();
    let total: u64 = stats.per_path.iter().map(|p| p.bytes).sum();
    assert!(
        direct_bytes * 2 > total,
        "most remainder bytes should migrate to the healthy direct path"
    );
}

/// Path death mid-transfer: the overlay's uplink dies outright after
/// the probe decision. The striper declares the path dead after one
/// stall window, reassigns its remaining bytes, finishes on the direct
/// path, and records the death as a failover.
#[test]
fn path_death_mid_transfer_is_reassigned_and_survives() {
    let outage = |_cs: LinkId, cv: LinkId| {
        FaultPlan::default().link_outage(cv, SimTime::from_secs(1), SimTime::from_secs(4000))
    };
    let mut cfg = striped(4, 1);
    if let SessionMode::Striped { rebalance, .. } = &mut cfg.mode {
        rebalance.stall_window = SimDuration::from_secs(5);
    }
    let (mut tp, c, v, s) = faulty_world(100_000.0, 800_000.0, outage);
    let tel = Telemetry::new();
    let (rec, stats) = run_striped_paths_session_stats(
        &mut tp,
        &mut FirstPortion,
        c,
        s,
        &[PathSpec::indirect(c, s, v)],
        vec![v],
        0,
        &cfg,
        Some(&tel),
    );
    assert!(!rec.abandoned, "direct path survived");
    assert!(rec.selected_throughput > 0.0);
    assert!(stats.deaths >= 1);
    assert!(rec.failovers >= 1, "death is recorded as a failover");
    assert!(rec.stall_ms > 0, "the stall window was paid");
    assert!(stats.reassignments >= 1, "the dead path's bytes moved");
    let kinds: Vec<EventKind> = tel.tracer.snapshot().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::ChunkReassigned));
    let snap = tel.metrics.snapshot();
    assert!(snap.counter("stripe_path_deaths", &vec![]).unwrap_or(0) >= 1);
    assert!(
        snap.counter("stripe_chunks_reassigned", &vec![])
            .unwrap_or(0)
            >= 1
    );
}

/// When every path dies the striper abandons — no fabricated
/// throughput, stats still account for the bytes that did arrive.
#[test]
fn abandons_when_every_path_dies() {
    let all_dead = |cs: LinkId, cv: LinkId| {
        FaultPlan::default()
            .link_outage(cs, SimTime::from_secs(3), SimTime::from_secs(10_000))
            .link_outage(cv, SimTime::from_secs(3), SimTime::from_secs(10_000))
    };
    let mut cfg = striped(4, 1);
    cfg.horizon = SimDuration::from_secs(60);
    if let SessionMode::Striped { rebalance, .. } = &mut cfg.mode {
        rebalance.stall_window = SimDuration::from_secs(5);
    }
    let (mut tp, c, v, s) = faulty_world(100_000.0, 300_000.0, all_dead);
    let (rec, stats) = run_striped(&mut tp, c, v, s, &cfg);
    assert!(rec.abandoned);
    assert_eq!(rec.selected_throughput, 0.0, "no fabricated throughput");
    assert!(stats.deaths >= 2, "both paths declared dead");
    assert!(rec.selected_path_rate.is_nan());
}

/// Striped sessions are deterministic: identical worlds and configs
/// produce identical records and identical chunk accounting.
#[test]
fn striped_sessions_are_deterministic() {
    let cfg = striped(8, 1);
    let mut outcomes = Vec::new();
    for _ in 0..2 {
        let (mut tp, c, v, s) = world(400_000.0, 800_000.0);
        outcomes.push(run_striped(&mut tp, c, v, s, &cfg));
    }
    assert_eq!(outcomes[0].0, outcomes[1].0, "records diverged");
    assert_eq!(outcomes[0].1, outcomes[1].1, "stripe stats diverged");
}

/// `k` caps the stripe width: with two candidates and `k = 1` only the
/// first candidate is probed or striped over.
#[test]
fn k_caps_the_probe_and_stripe_set() {
    let mut t = Topology::new();
    let c = t.add_node("client", NodeKind::Client);
    let v1 = t.add_node("relay1", NodeKind::Intermediate);
    let v2 = t.add_node("relay2", NodeKind::Intermediate);
    let s = t.add_node("server", NodeKind::Server);
    let l_cs = t.add_link(c, s, SimDuration::from_millis(80));
    let l_cv1 = t.add_link(c, v1, SimDuration::from_millis(50));
    let l_v1s = t.add_link(v1, s, SimDuration::from_millis(15));
    let l_cv2 = t.add_link(c, v2, SimDuration::from_millis(50));
    let l_v2s = t.add_link(v2, s, SimDuration::from_millis(15));
    let mut net = Network::new(t, 1.0);
    net.set_link_process(l_cs, Box::new(ConstantProcess::new(200_000.0)));
    net.set_link_process(l_cv1, Box::new(ConstantProcess::new(500_000.0)));
    net.set_link_process(l_v1s, Box::new(ConstantProcess::new(50e6)));
    net.set_link_process(l_cv2, Box::new(ConstantProcess::new(900_000.0)));
    net.set_link_process(l_v2s, Box::new(ConstantProcess::new(50e6)));
    let mut tp = SimTransport::new(net);
    let paths = vec![PathSpec::indirect(c, s, v1), PathSpec::indirect(c, s, v2)];
    let (rec, stats) = run_striped_paths_session_stats(
        &mut tp,
        &mut FirstPortion,
        c,
        s,
        &paths,
        vec![v1, v2],
        0,
        &striped(4, 1),
        None,
    );
    assert!(!rec.abandoned);
    // Only direct + the first candidate are in the roster; the faster
    // second candidate was cut by k.
    assert_eq!(stats.per_path.len(), 2);
    assert!(stats.per_path.iter().all(|p| p.path.via() != Some(v2)));
}
