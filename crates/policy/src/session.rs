//! Session driver for the path plane.
//!
//! [`run_selector_session_traced`] is the path-plane analogue of
//! `ir_core::run_session_traced`: it asks a [`PathSelector`] for the
//! indirect paths to probe, records the decision (a `selection_decision`
//! trace span plus per-policy probe-overhead counters), and hands the
//! probe race to `ir_core::run_paths_session_traced` unchanged — so the
//! §2.1 protocol semantics, failover behavior, and goldens are shared
//! with the relay plane, not reimplemented.

use crate::selector::{PathCtx, PathSelector};
use ir_core::{run_paths_session_traced, Predictor, SessionConfig, TransferRecord, Transport};
use ir_simnet::topology::{NodeId, Topology};
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;

/// Runs one transfer session through a path selector, untraced.
#[allow(clippy::too_many_arguments)] // mirrors run_session's protocol free parameters
pub fn run_selector_session(
    transport: &mut dyn Transport,
    selector: &mut dyn PathSelector,
    predictor: &mut dyn Predictor,
    client: NodeId,
    server: NodeId,
    relays: &[NodeId],
    topo: &Topology,
    transfer_index: u64,
    cfg: &SessionConfig,
) -> TransferRecord {
    run_selector_session_traced(
        transport,
        selector,
        predictor,
        client,
        server,
        relays,
        topo,
        transfer_index,
        cfg,
        None,
    )
}

/// Runs one transfer session through a path selector.
///
/// The selector's decision is instrumented per policy name:
///
/// * counter `policy_decisions{policy}` — decisions taken;
/// * counter `policy_probe_paths{policy}` — indirect paths emitted,
///   i.e. the probe overhead this policy asks the network to pay;
/// * a [`EventKind::SelectionDecision`] span carrying the policy name
///   and path count.
///
/// The record's `candidates` field keeps its relay-plane meaning: the
/// distinct first hops of the probed paths, in probe order. For ported
/// 1-hop policies this is byte-identical to the legacy field.
#[allow(clippy::too_many_arguments)] // traced twin of run_selector_session; same signature
pub fn run_selector_session_traced(
    transport: &mut dyn Transport,
    selector: &mut dyn PathSelector,
    predictor: &mut dyn Predictor,
    client: NodeId,
    server: NodeId,
    relays: &[NodeId],
    topo: &Topology,
    transfer_index: u64,
    cfg: &SessionConfig,
    tel: Option<&Telemetry>,
) -> TransferRecord {
    let ctx = PathCtx {
        client,
        server,
        relays,
        topo,
        transfer_index,
    };
    let t0 = transport.now();
    let paths = selector.paths(&ctx);
    let decided = transport.now();
    debug_assert!(
        paths.iter().all(|p| p.is_indirect()),
        "selector {} returned the direct path as a candidate",
        selector.name()
    );

    // First hops, deduped in probe order: the relay-plane view of the
    // decision, used for utilization accounting and reports.
    let mut candidates: Vec<NodeId> = Vec::with_capacity(paths.len());
    for p in &paths {
        if let Some(via) = p.via() {
            if !candidates.contains(&via) {
                candidates.push(via);
            }
        }
    }

    if let Some(tel) = tel {
        let labels = vec![("policy", selector.name().to_string())];
        tel.metrics
            .counter("policy_decisions", labels.clone())
            .inc();
        tel.metrics
            .counter("policy_probe_paths", labels)
            .add(paths.len() as u64);
        tel.tracer.record(
            Event::span(
                EventKind::SelectionDecision,
                t0.as_micros(),
                decided.as_micros().saturating_sub(t0.as_micros()),
                transfer_index,
            )
            .with_str("policy", selector.name())
            .with_u64("paths", paths.len() as u64)
            .with_u64(
                "max_hops",
                paths.iter().map(|p| p.hop_count()).max().unwrap_or(0) as u64,
            ),
        );
    }

    let record = run_paths_session_traced(
        transport,
        predictor,
        client,
        server,
        &paths,
        candidates,
        transfer_index,
        cfg,
        tel,
    );
    selector.observe(&record);
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kshortest::{KShortest, KShortestConfig};
    use crate::legacy::PolicySelector;
    use ir_core::{run_session_traced, FirstPortion, RandomSet, SimTransport, UtilizationWeighted};
    use ir_simnet::bandwidth::ConstantProcess;
    use ir_simnet::sim::Network;
    use ir_simnet::time::SimDuration;
    use ir_simnet::topology::{NodeKind, Topology};
    use ir_telemetry::Telemetry;

    const MBPS: f64 = 1e6 / 8.0; // bytes/sec per "megabit"

    /// A star with one relay per rate; extra relay-relay "ridge" links
    /// (with their own rates) can be spliced in before the network is
    /// sealed.
    fn star(
        relay_rates_mbps: &[f64],
        ridges: &[(usize, usize, f64)],
    ) -> (Network, NodeId, NodeId, Vec<NodeId>) {
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let s = t.add_node("s", NodeKind::Server);
        let lat = SimDuration::from_millis(5);
        let mut relays = Vec::new();
        let mut planned = vec![(t.add_link(c, s, lat), 2.0)];
        for (i, &r_mbps) in relay_rates_mbps.iter().enumerate() {
            let r = t.add_node(format!("r{i}"), NodeKind::Intermediate);
            planned.push((t.add_link(c, r, lat), r_mbps));
            planned.push((t.add_link(r, s, lat), r_mbps));
            relays.push(r);
        }
        for &(a, b, mbps) in ridges {
            let l = t.add_link(relays[a], relays[b], SimDuration::from_millis(1));
            planned.push((l, mbps));
        }
        let mut net = Network::new(t, 1.0);
        for (l, mbps) in planned {
            net.set_link_process(l, Box::new(ConstantProcess::new(mbps * MBPS)));
        }
        (net, c, s, relays)
    }

    /// Acceptance: a ported legacy policy produces records identical to
    /// the relay-plane entry point, transfer for transfer.
    #[test]
    fn ported_policy_matches_relay_plane_byte_for_byte() {
        for seed in [1u64, 7, 42] {
            let (net, c, s, relays) = star(&[1.0, 3.0, 5.0, 0.5], &[]);
            let cfg = SessionConfig::paper_defaults();
            let mut legacy_records = Vec::new();
            {
                let mut transport = SimTransport::new(net.clone());
                let mut policy = UtilizationWeighted::new(2, seed);
                for k in 0..12 {
                    legacy_records.push(run_session_traced(
                        &mut transport,
                        &mut policy,
                        &mut FirstPortion,
                        c,
                        s,
                        &relays,
                        k,
                        &cfg,
                        None,
                    ));
                }
            }
            let topo = net.topology().clone();
            let mut transport = SimTransport::new(net);
            let mut sel = PolicySelector::new(UtilizationWeighted::new(2, seed));
            for (k, want) in legacy_records.iter().enumerate() {
                let got = run_selector_session(
                    &mut transport,
                    &mut sel,
                    &mut FirstPortion,
                    c,
                    s,
                    &relays,
                    &topo,
                    k as u64,
                    &cfg,
                );
                assert_eq!(&got, want, "seed {seed} transfer {k} diverged");
            }
        }
    }

    #[test]
    fn decision_telemetry_is_emitted_per_policy() {
        let (net, c, s, relays) = star(&[4.0, 1.0], &[]);
        let topo = net.topology().clone();
        let mut transport = SimTransport::new(net);
        let mut sel = PolicySelector::new(RandomSet::new(2, 9));
        let tel = Telemetry::new();
        for k in 0..3 {
            run_selector_session_traced(
                &mut transport,
                &mut sel,
                &mut FirstPortion,
                c,
                s,
                &relays,
                &topo,
                k,
                &SessionConfig::paper_defaults(),
                Some(&tel),
            );
        }
        let labels = vec![("policy", "random-set".to_string())];
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("policy_decisions", &labels), Some(3));
        assert_eq!(snap.counter("policy_probe_paths", &labels), Some(6));
        let decisions = tel
            .tracer
            .snapshot()
            .iter()
            .filter(|e| e.kind == EventKind::SelectionDecision)
            .count();
        assert_eq!(decisions, 3);
    }

    /// Acceptance: with a fast relay-relay ridge the k-shortest
    /// selector probes a 2-hop chain and the race picks it over every
    /// 1-hop path.
    #[test]
    fn two_hop_chain_wins_probe_race_end_to_end() {
        // r0 has a fat uplink but a thin 1-hop downlink; r1 the
        // reverse. Only the chain c -> r0 -> r1 -> s is fat end to
        // end, so every 1-hop path bottlenecks at 1 Mbps while the
        // 2-hop chain runs at 20.
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let s = t.add_node("s", NodeKind::Server);
        let r0 = t.add_node("r0", NodeKind::Intermediate);
        let r1 = t.add_node("r1", NodeKind::Intermediate);
        let ms = |n: u64| SimDuration::from_millis(n);
        let fat = 20.0 * MBPS;
        let thin = 1.0 * MBPS;
        let planned = [
            (t.add_link(c, s, ms(5)), 2.0 * MBPS),
            (t.add_link(c, r0, ms(5)), fat),
            (t.add_link(r0, s, ms(5)), thin), // r0's 1-hop path is thin
            (t.add_link(c, r1, ms(5)), thin), // r1's 1-hop path is thin
            (t.add_link(r1, s, ms(5)), fat),
            (t.add_link(r0, r1, ms(1)), fat), // the ridge
        ];
        let mut net = Network::new(t, 1.0);
        for (l, rate) in planned {
            net.set_link_process(l, Box::new(ConstantProcess::new(rate)));
        }
        let relays = vec![r0, r1];
        let topo = net.topology().clone();
        let mut transport = SimTransport::new(net);
        let mut sel = KShortest::new(KShortestConfig::default());
        let rec = run_selector_session(
            &mut transport,
            &mut sel,
            &mut FirstPortion,
            c,
            s,
            &relays,
            &topo,
            0,
            &SessionConfig::paper_defaults(),
        );
        assert_eq!(rec.selected.hops(), &[r0, r1]);
        assert!(rec.selected_throughput > rec.direct_throughput);
    }
}
