//! K-shortest-candidate path generation over topology latency.

use std::collections::BTreeMap;

use crate::sanitize::{sanitize_candidates, sanitize_chain};
use crate::selector::{PathCtx, PathSelector};
use ir_core::{PathSpec, MAX_HOPS};
use ir_simnet::topology::{NodeId, Topology};

/// Configuration for [`KShortest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KShortestConfig {
    /// How many indirect chains to emit per decision.
    pub k: usize,
    /// Hop-count cap per chain; clamped to [`MAX_HOPS`].
    pub max_hops: usize,
}

impl Default for KShortestConfig {
    fn default() -> Self {
        KShortestConfig {
            k: 3,
            max_hops: MAX_HOPS,
        }
    }
}

/// Generates the k lowest-latency loopless indirect chains from client
/// to server whose interior nodes are drawn from the relay roster.
///
/// Chains are ranked by summed one-way link latency. Because chains are
/// hop-capped at [`MAX_HOPS`], the generator runs a
/// uniform-cost (Dijkstra-style) expansion over the bounded chain space
/// and keeps the k cheapest — exactly what Yen's algorithm yields on
/// this graph, without the spur-path bookkeeping. Ties break on the hop
/// sequence itself, so the ranking is fully deterministic.
///
/// Decisions are pure functions of `(client, server, roster, topology)`
/// and the topology is immutable for a selector's lifetime, so ranked
/// chains are memoized per endpoint pair.
pub struct KShortest {
    cfg: KShortestConfig,
    memo: BTreeMap<(NodeId, NodeId), Vec<Vec<NodeId>>>,
}

impl KShortest {
    /// Creates a generator with the given config.
    pub fn new(cfg: KShortestConfig) -> Self {
        KShortest {
            cfg,
            memo: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &KShortestConfig {
        &self.cfg
    }

    fn ranked_chains(&self, ctx: &PathCtx<'_>) -> Vec<Vec<NodeId>> {
        let relays = sanitize_candidates(ctx.client, ctx.server, ctx.relays);
        let cap = self.cfg.max_hops.min(MAX_HOPS);
        let mut found: Vec<(u64, Vec<NodeId>)> = Vec::new();
        let mut chain: Vec<NodeId> = Vec::with_capacity(cap);
        extend(
            ctx.topo, ctx.client, ctx.server, &relays, cap, 0, &mut chain, &mut found,
        );
        found.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        found.truncate(self.cfg.k);
        found.into_iter().map(|(_, c)| c).collect()
    }
}

/// One-way latency of the `a -> b` link in microseconds, if it exists.
fn edge(topo: &Topology, a: NodeId, b: NodeId) -> Option<u64> {
    topo.link_between(a, b)
        .map(|l| topo.link(l).latency.as_micros())
}

/// Depth-first expansion of loopless chains ending at `server`. `cost`
/// is the latency accumulated from the client up to the chain's last
/// relay; a chain is recorded when the closing hop to the server
/// exists.
#[allow(clippy::too_many_arguments)] // candidate-path extension mirrors Yen's algorithm state
fn extend(
    topo: &Topology,
    client: NodeId,
    server: NodeId,
    relays: &[NodeId],
    cap: usize,
    cost: u64,
    chain: &mut Vec<NodeId>,
    found: &mut Vec<(u64, Vec<NodeId>)>,
) {
    let tail = *chain.last().unwrap_or(&client);
    if !chain.is_empty() {
        if let Some(close) = edge(topo, tail, server) {
            found.push((cost + close, chain.clone()));
        }
    }
    if chain.len() == cap {
        return;
    }
    for &r in relays {
        if chain.contains(&r) {
            continue;
        }
        if let Some(step) = edge(topo, tail, r) {
            chain.push(r);
            extend(topo, client, server, relays, cap, cost + step, chain, found);
            chain.pop();
        }
    }
}

impl PathSelector for KShortest {
    fn name(&self) -> &'static str {
        "k-shortest"
    }

    fn paths(&mut self, ctx: &PathCtx<'_>) -> Vec<PathSpec> {
        let key = (ctx.client, ctx.server);
        if !self.memo.contains_key(&key) {
            let ranked = self.ranked_chains(ctx);
            self.memo.insert(key, ranked);
        }
        self.memo[&key]
            .iter()
            .filter_map(|c| {
                let hops = sanitize_chain(ctx.client, ctx.server, c);
                (!hops.is_empty()).then(|| PathSpec::chain(ctx.client, ctx.server, &hops))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::time::SimDuration;
    use ir_simnet::topology::NodeKind;

    /// client(0), server(1), relays 2..5. Direct latency is large;
    /// relay 2 is a slow 1-hop; relays 3->4 form a fast 2-hop ridge.
    fn ridge() -> (Topology, NodeId, NodeId, Vec<NodeId>) {
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let s = t.add_node("s", NodeKind::Server);
        let r2 = t.add_node("r2", NodeKind::Intermediate);
        let r3 = t.add_node("r3", NodeKind::Intermediate);
        let r4 = t.add_node("r4", NodeKind::Intermediate);
        let ms = |n: u64| SimDuration::from_micros(n * 1_000);
        t.add_link(c, s, ms(100));
        t.add_link(c, r2, ms(40));
        t.add_link(r2, s, ms(40));
        t.add_link(c, r3, ms(10));
        t.add_link(r3, r4, ms(10));
        t.add_link(r4, s, ms(10));
        (t, c, s, vec![r2, r3, r4])
    }

    fn ctx<'a>(topo: &'a Topology, c: NodeId, s: NodeId, relays: &'a [NodeId]) -> PathCtx<'a> {
        PathCtx {
            client: c,
            server: s,
            relays,
            topo,
            transfer_index: 0,
        }
    }

    #[test]
    fn ranks_two_hop_ridge_above_slow_one_hop() {
        let (topo, c, s, relays) = ridge();
        let mut sel = KShortest::new(KShortestConfig::default());
        let paths = sel.paths(&ctx(&topo, c, s, &relays));
        assert!(!paths.is_empty());
        // Cheapest chain is the 30ms c->r3->r4->s ridge.
        assert_eq!(paths[0], PathSpec::chain(c, s, &[relays[1], relays[2]]));
        assert!(paths.contains(&PathSpec::indirect(c, s, relays[0])));
    }

    #[test]
    fn respects_k_and_hop_cap() {
        let (topo, c, s, relays) = ridge();
        let mut one = KShortest::new(KShortestConfig { k: 1, max_hops: 3 });
        assert_eq!(one.paths(&ctx(&topo, c, s, &relays)).len(), 1);
        let mut flat = KShortest::new(KShortestConfig { k: 8, max_hops: 1 });
        for p in flat.paths(&ctx(&topo, c, s, &relays)) {
            assert_eq!(p.hop_count(), 1);
        }
    }

    #[test]
    fn skips_unreachable_relays_and_is_deterministic() {
        let (mut topo, c, s, mut relays) = ridge();
        // An island relay with no links never appears in any chain.
        let island = topo.add_node("island", NodeKind::Intermediate);
        relays.push(island);
        let mut a = KShortest::new(KShortestConfig::default());
        let mut b = KShortest::new(KShortestConfig::default());
        let pa = a.paths(&ctx(&topo, c, s, &relays));
        let pb = b.paths(&ctx(&topo, c, s, &relays));
        assert_eq!(pa, pb);
        assert!(pa.iter().all(|p| !p.hops().contains(&island)));
    }

    #[test]
    fn no_usable_links_means_direct_only() {
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let s = t.add_node("s", NodeKind::Server);
        let r = t.add_node("r", NodeKind::Intermediate);
        t.add_link(c, s, SimDuration::from_micros(10_000));
        let relays = vec![r];
        let mut sel = KShortest::new(KShortestConfig::default());
        assert!(sel.paths(&ctx(&t, c, s, &relays)).is_empty());
    }
}
