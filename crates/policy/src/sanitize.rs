//! Shared candidate sanitization.
//!
//! `PathSpec::indirect`/`PathSpec::chain` assert that relays are
//! distinct from both endpoints and from each other — correct for the
//! session layer, but a selection policy working from learned state or
//! a stale roster can easily emit the client itself, the server, or a
//! duplicate. Every selector funnels its raw output through these
//! helpers so the degenerate cases are dropped in exactly one place
//! instead of tripping asserts downstream.

use ir_core::MAX_HOPS;
use ir_simnet::topology::NodeId;

/// Drops `client`, `server`, and duplicates from a relay candidate
/// list, preserving first-occurrence order.
pub fn sanitize_candidates(client: NodeId, server: NodeId, nodes: &[NodeId]) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::with_capacity(nodes.len());
    for &n in nodes {
        if n != client && n != server && !out.contains(&n) {
            out.push(n);
        }
    }
    out
}

/// Sanitizes one hop chain: drops endpoints and revisited relays
/// (keeping the first occurrence) and truncates to
/// [`MAX_HOPS`]. The result is always a valid
/// argument to `PathSpec::chain`; an empty result means the chain
/// degenerated to the direct path and should be skipped.
pub fn sanitize_chain(client: NodeId, server: NodeId, chain: &[NodeId]) -> Vec<NodeId> {
    let mut out = sanitize_candidates(client, server, chain);
    out.truncate(MAX_HOPS);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::PathSpec;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn drops_endpoints_and_duplicates() {
        let out = sanitize_candidates(n(0), n(1), &[n(2), n(0), n(3), n(2), n(1), n(4)]);
        assert_eq!(out, vec![n(2), n(3), n(4)]);
    }

    #[test]
    fn chain_truncates_to_max_hops() {
        let raw: Vec<NodeId> = (10..10 + MAX_HOPS as u32 + 3).map(NodeId).collect();
        let out = sanitize_chain(n(0), n(1), &raw);
        assert_eq!(out.len(), MAX_HOPS);
        assert_eq!(out, raw[..MAX_HOPS]);
    }

    /// The regression the helper exists for: every degenerate shape a
    /// policy can emit must come out as a constructible chain instead
    /// of tripping the `PathSpec` asserts.
    #[test]
    fn degenerate_outputs_always_construct() {
        let (c, s) = (n(0), n(1));
        let degenerate: &[&[NodeId]] = &[
            &[],                                   // empty
            &[c],                                  // client itself
            &[s],                                  // server itself
            &[c, s],                               // both endpoints
            &[n(2), n(2)],                         // duplicate relay
            &[n(2), c, n(2), s, n(3), n(3)],       // everything at once
            &[n(2), n(3), n(4), n(5), n(6), n(7)], // overlong
        ];
        for raw in degenerate {
            let hops = sanitize_chain(c, s, raw);
            // Must not panic:
            let p = PathSpec::chain(c, s, &hops);
            assert_eq!(p.hops(), &hops[..]);
        }
    }

    #[test]
    fn clean_input_passes_through() {
        let clean = vec![n(5), n(3), n(7)];
        assert_eq!(sanitize_candidates(n(0), n(1), &clean), clean);
        assert_eq!(sanitize_chain(n(0), n(1), &clean), clean);
    }
}
