//! `ir-policy` — the pluggable path-selection policy plane.
//!
//! `ir-core`'s [`SelectionPolicy`](ir_core::SelectionPolicy) answers
//! "which **relays** are candidates"; every candidate becomes one 1-hop
//! path. This crate generalizes the question to "which **paths** —
//! direct, 1-hop, or multi-hop chains — should the session probe, and
//! in what order" ([`PathSelector`]), which is what the paper's §6
//! proposals and the related overlay-routing work actually need:
//!
//! * [`PolicySelector`] — adapter porting any `SelectionPolicy`
//!   (random set, utilization-weighted, …) into the path plane,
//!   byte-identically.
//! * [`KShortest`] — Yen's k-shortest-paths over topology latency,
//!   feeding the probe race its top-k chains (1 to
//!   [`ir_core::MAX_HOPS`] hops).
//! * [`AdaptiveLearner`] — reweights intermediates per client from
//!   observed [`TransferRecord`](ir_core::TransferRecord) improvements
//!   across a session sequence.
//! * [`Backpressure`] — throughput/backpressure-style baseline in the
//!   spirit of Rai–Singh–Modiano: service-rate estimates discounted by
//!   virtual queue pressure.
//!
//! [`run_selector_session_traced`] drives one §2.1 session through a
//! selector (probe race over the returned paths plus direct), with
//! per-policy probe-overhead counters and a selection-decision trace
//! event.

pub mod adaptive;
pub mod backpressure;
pub mod kshortest;
pub mod legacy;
pub mod sanitize;
pub mod selector;
pub mod session;
pub mod stable;
pub mod weights;

pub use adaptive::{AdaptiveConfig, AdaptiveLearner};
pub use backpressure::{Backpressure, BackpressureConfig};
pub use kshortest::{KShortest, KShortestConfig};
pub use legacy::PolicySelector;
pub use sanitize::{sanitize_candidates, sanitize_chain};
pub use selector::{PathCtx, PathSelector};
pub use session::{run_selector_session, run_selector_session_traced};
pub use weights::weighted_index_or_uniform;
