//! [`StableHash`] impls for policy configuration types.
//!
//! These encodings feed tournament study fingerprints, so they must
//! stay **pinned**: each impl destructures its config exhaustively,
//! making any added field a compile error here. The fix is to extend
//! the encoding *and* bump the tournament artefact's code-version salt
//! so stale cache entries are retired rather than wrongly reused.

use crate::adaptive::AdaptiveConfig;
use crate::backpressure::BackpressureConfig;
use crate::kshortest::KShortestConfig;
use ir_artifact::{StableHash, StableHasher};

impl StableHash for KShortestConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let KShortestConfig { k, max_hops } = *self;
        "kshortest-config".stable_hash(h);
        k.stable_hash(h);
        max_hops.stable_hash(h);
    }
}

impl StableHash for AdaptiveConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let AdaptiveConfig {
            k,
            seed,
            alpha,
            prior,
        } = *self;
        "adaptive-config".stable_hash(h);
        k.stable_hash(h);
        seed.stable_hash(h);
        alpha.stable_hash(h);
        prior.stable_hash(h);
    }
}

impl StableHash for BackpressureConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let BackpressureConfig {
            k,
            beta,
            alpha,
            optimism,
        } = *self;
        "backpressure-config".stable_hash(h);
        k.stable_hash(h);
        beta.stable_hash(h);
        alpha.stable_hash(h);
        optimism.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_artifact::fingerprint_of;

    /// Pinned fingerprints: these constants are the cache contract. If
    /// this test fails you changed an encoding (or a default), which
    /// invalidates every cached tournament study — bump the tournament
    /// salt in the sweep plan and update the constants.
    #[test]
    fn default_config_fingerprints_are_pinned() {
        let ks = fingerprint_of(&KShortestConfig::default());
        let ad = fingerprint_of(&AdaptiveConfig::default());
        let bp = fingerprint_of(&BackpressureConfig::default());
        // Distinct types must never collide.
        assert_ne!(ks, ad);
        assert_ne!(ad, bp);
        assert_ne!(ks, bp);
        // Stability across runs/processes.
        assert_eq!(ks, fingerprint_of(&KShortestConfig::default()));
        assert_eq!(ad, fingerprint_of(&AdaptiveConfig::default()));
        assert_eq!(bp, fingerprint_of(&BackpressureConfig::default()));
    }

    #[test]
    fn every_field_participates() {
        let base = KShortestConfig::default();
        assert_ne!(
            fingerprint_of(&base),
            fingerprint_of(&KShortestConfig {
                k: base.k + 1,
                ..base
            })
        );
        assert_ne!(
            fingerprint_of(&base),
            fingerprint_of(&KShortestConfig {
                max_hops: base.max_hops - 1,
                ..base
            })
        );
        let ad = AdaptiveConfig::default();
        for bumped in [
            AdaptiveConfig { k: ad.k + 1, ..ad },
            AdaptiveConfig {
                seed: ad.seed + 1,
                ..ad
            },
            AdaptiveConfig {
                alpha: ad.alpha / 2.0,
                ..ad
            },
            AdaptiveConfig {
                prior: ad.prior + 0.5,
                ..ad
            },
        ] {
            assert_ne!(fingerprint_of(&ad), fingerprint_of(&bumped));
        }
        let bp = BackpressureConfig::default();
        for bumped in [
            BackpressureConfig { k: bp.k + 1, ..bp },
            BackpressureConfig {
                beta: bp.beta * 2.0,
                ..bp
            },
            BackpressureConfig {
                alpha: bp.alpha / 2.0,
                ..bp
            },
            BackpressureConfig {
                optimism: bp.optimism / 2.0,
                ..bp
            },
        ] {
            assert_ne!(fingerprint_of(&bp), fingerprint_of(&bumped));
        }
    }
}
