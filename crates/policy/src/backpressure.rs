//! Throughput/backpressure baseline selector.

use std::collections::BTreeMap;

use crate::sanitize::sanitize_candidates;
use crate::selector::{PathCtx, PathSelector};
use ir_core::{PathSpec, TransferRecord};
use ir_simnet::topology::NodeId;

/// Configuration for [`Backpressure`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackpressureConfig {
    /// Candidate paths per decision.
    pub k: usize,
    /// Virtual-queue pressure penalty per queued probe.
    pub beta: f64,
    /// EWMA smoothing for the per-relay service-rate estimate.
    pub alpha: f64,
    /// Initial service-rate estimate for never-observed relays. A high
    /// value makes the selector explore cold relays first.
    pub optimism: f64,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            k: 2,
            beta: 0.5,
            alpha: 0.3,
            optimism: 1e9,
        }
    }
}

/// Backpressure-style relay scoring in the spirit of the
/// Rai–Singh–Modiano throughput-optimal overlay work: each relay `r`
/// keeps a service-rate estimate `μ_r` (EWMA of observed path rate)
/// and a virtual queue `Q_r` counting outstanding probe load. A
/// decision scores relays by `μ_r − β·Q_r` and probes the top-k, so
/// hot relays are backed off as their virtual queues grow and drained
/// relays become attractive again.
///
/// Fully deterministic: no RNG, `BTreeMap` state, ties broken by
/// `NodeId`.
pub struct Backpressure {
    cfg: BackpressureConfig,
    mu: BTreeMap<NodeId, f64>,
    queue: BTreeMap<NodeId, f64>,
}

impl Backpressure {
    /// Creates a selector with the given config.
    pub fn new(cfg: BackpressureConfig) -> Self {
        Backpressure {
            cfg,
            mu: BTreeMap::new(),
            queue: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BackpressureConfig {
        &self.cfg
    }

    /// The current score of a relay.
    pub fn score(&self, relay: NodeId) -> f64 {
        let mu = self.mu.get(&relay).copied().unwrap_or(self.cfg.optimism);
        let q = self.queue.get(&relay).copied().unwrap_or(0.0);
        mu - self.cfg.beta * q
    }
}

impl PathSelector for Backpressure {
    fn name(&self) -> &'static str {
        "backpressure"
    }

    fn paths(&mut self, ctx: &PathCtx<'_>) -> Vec<PathSpec> {
        let pool = sanitize_candidates(ctx.client, ctx.server, ctx.relays);
        let mut scored: Vec<(NodeId, f64)> = pool.iter().map(|&r| (r, self.score(r))).collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite score")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(self.cfg.k);
        let mut picked: Vec<NodeId> = scored.into_iter().map(|(r, _)| r).collect();
        picked.sort();
        for &r in &picked {
            *self.queue.entry(r).or_insert(0.0) += 1.0;
        }
        picked
            .into_iter()
            .map(|via| PathSpec::indirect(ctx.client, ctx.server, via))
            .collect()
    }

    fn observe(&mut self, rec: &TransferRecord) {
        // Completed probes drain the virtual queues they occupied.
        for &r in &rec.candidates {
            if let Some(q) = self.queue.get_mut(&r) {
                *q = (*q - 1.0).max(0.0);
            }
        }
        if let Some(via) = rec.selected.via() {
            let alpha = self.cfg.alpha;
            let slot = self.mu.entry(via).or_insert(rec.selected_path_rate);
            *slot = (1.0 - alpha) * *slot + alpha * rec.selected_path_rate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::time::SimTime;
    use ir_simnet::topology::{NodeKind, Topology};

    fn topo() -> Topology {
        let mut t = Topology::new();
        t.add_node("c", NodeKind::Client);
        t.add_node("s", NodeKind::Server);
        for i in 0..4 {
            t.add_node(format!("r{i}"), NodeKind::Intermediate);
        }
        t
    }

    fn ctx<'a>(topo: &'a Topology, relays: &'a [NodeId], k: u64) -> PathCtx<'a> {
        PathCtx {
            client: NodeId(0),
            server: NodeId(1),
            relays,
            topo,
            transfer_index: k,
        }
    }

    fn rec(via: Option<NodeId>, rate: f64, cands: &[NodeId]) -> TransferRecord {
        let (c, s) = (NodeId(0), NodeId(1));
        TransferRecord {
            client: c,
            server: s,
            started: SimTime::ZERO,
            file_bytes: 1,
            selected: match via {
                None => PathSpec::direct(c, s),
                Some(v) => PathSpec::indirect(c, s, v),
            },
            candidates: cands.to_vec(),
            direct_throughput: 1.0,
            selected_throughput: rate,
            probe_throughput: rate,
            selected_path_rate: rate,
            probe_timeout: false,
            failovers: 0,
            stall_ms: 0,
            abandoned: false,
        }
    }

    #[test]
    fn cold_start_explores_in_id_order_and_is_deterministic() {
        let topo = topo();
        let relays: Vec<NodeId> = (2..6).map(NodeId).collect();
        let mut a = Backpressure::new(BackpressureConfig::default());
        let mut b = Backpressure::new(BackpressureConfig::default());
        let pa = a.paths(&ctx(&topo, &relays, 0));
        assert_eq!(pa, b.paths(&ctx(&topo, &relays, 0)));
        let vias: Vec<NodeId> = pa.iter().filter_map(|p| p.via()).collect();
        assert_eq!(vias, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn unserviced_probes_build_pressure_and_rotate_relays() {
        let topo = topo();
        let relays: Vec<NodeId> = (2..6).map(NodeId).collect();
        let mut sel = Backpressure::new(BackpressureConfig {
            k: 1,
            beta: 1.0,
            // Uniform cold estimates so only queue pressure moves scores.
            optimism: 10.0,
            ..BackpressureConfig::default()
        });
        let mut seen = Vec::new();
        // Never observing completions: queues only grow, so the
        // selector must rotate through all relays.
        for k in 0..4 {
            let p = sel.paths(&ctx(&topo, &relays, k));
            seen.push(p[0].via().unwrap());
        }
        assert_eq!(seen, relays);
    }

    #[test]
    fn high_service_rate_relay_is_preferred_once_observed() {
        let topo = topo();
        let relays: Vec<NodeId> = (2..6).map(NodeId).collect();
        let mut sel = Backpressure::new(BackpressureConfig {
            k: 1,
            optimism: 1.0,
            ..BackpressureConfig::default()
        });
        for _ in 0..5 {
            let probed: Vec<NodeId> = sel
                .paths(&ctx(&topo, &relays, 0))
                .iter()
                .filter_map(|p| p.via())
                .collect();
            sel.observe(&rec(Some(NodeId(4)), 50.0, &probed));
        }
        assert!(sel.score(NodeId(4)) > sel.score(NodeId(2)));
        let p = sel.paths(&ctx(&topo, &relays, 9));
        assert_eq!(p[0].via(), Some(NodeId(4)));
    }

    #[test]
    fn observe_drains_the_virtual_queue() {
        let topo = topo();
        let relays = [NodeId(2)];
        let mut sel = Backpressure::new(BackpressureConfig {
            k: 1,
            ..BackpressureConfig::default()
        });
        let before = sel.score(NodeId(2));
        sel.paths(&ctx(&topo, &relays, 0));
        assert!(sel.score(NodeId(2)) < before, "probe must add pressure");
        sel.observe(&rec(None, 1.0, &[NodeId(2)]));
        // Queue drained; only the (unchanged) mu estimate remains.
        assert_eq!(sel.score(NodeId(2)), before);
    }
}
