//! The [`PathSelector`] trait and its decision context.

use ir_core::{PathSpec, TransferRecord};
use ir_simnet::topology::{NodeId, Topology};

/// Context for one path-selection decision.
///
/// Unlike `ir-core`'s `SelectCtx`, this carries the **topology**: path
/// selectors may inspect link latency to build chains, where relay
/// policies only choose among opaque relay ids.
#[derive(Debug, Clone)]
pub struct PathCtx<'a> {
    /// The client about to transfer.
    pub client: NodeId,
    /// The destination server.
    pub server: NodeId,
    /// Every relay available to this client (the paper's "full set").
    pub relays: &'a [NodeId],
    /// The network topology the transfer will run over.
    pub topo: &'a Topology,
    /// Sequence number of this transfer for this client (0-based).
    pub transfer_index: u64,
}

/// A path-selection policy: decides which indirect paths (1-hop or
/// multi-hop chains) a session probes against the direct path, and in
/// what order. The probe race still makes the final call — a selector
/// shapes the candidate field, it does not override measurement.
pub trait PathSelector: Send {
    /// Short name for reports and per-policy telemetry labels.
    fn name(&self) -> &'static str;

    /// Indirect candidate paths to probe for this transfer, in probe
    /// order. Empty means direct-only. The direct path is always raced
    /// and must not be returned here.
    fn paths(&mut self, ctx: &PathCtx<'_>) -> Vec<PathSpec>;

    /// Learns from a completed transfer.
    fn observe(&mut self, _rec: &TransferRecord) {}

    /// The best `k` candidate paths: the first `k` distinct entries of
    /// [`PathSelector::paths`], preserving probe order. The striper
    /// (`ir-stripe`) widths its stripe with this, so racer and striper
    /// share one selection path — `best_k(ctx, 1)` is exactly the path
    /// the racer would commit to first. Selectors with a smarter
    /// notion of "best" (e.g. rate-ordered) may override.
    fn best_k(&mut self, ctx: &PathCtx<'_>, k: usize) -> Vec<PathSpec> {
        let mut out: Vec<PathSpec> = Vec::with_capacity(k);
        for p in self.paths(ctx) {
            if out.len() == k {
                break;
            }
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kshortest::{KShortest, KShortestConfig};
    use ir_simnet::time::SimDuration;
    use ir_simnet::topology::NodeKind;

    /// A canned selector returning a fixed list (with a duplicate, to
    /// exercise the default `best_k` dedup).
    struct Canned(Vec<PathSpec>);

    impl PathSelector for Canned {
        fn name(&self) -> &'static str {
            "canned"
        }
        fn paths(&mut self, _ctx: &PathCtx<'_>) -> Vec<PathSpec> {
            self.0.clone()
        }
    }

    fn world() -> (Topology, NodeId, NodeId, Vec<NodeId>) {
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let s = t.add_node("s", NodeKind::Server);
        let r2 = t.add_node("r2", NodeKind::Intermediate);
        let r3 = t.add_node("r3", NodeKind::Intermediate);
        let ms = |n: u64| SimDuration::from_micros(n * 1_000);
        t.add_link(c, s, ms(100));
        t.add_link(c, r2, ms(40));
        t.add_link(r2, s, ms(40));
        t.add_link(c, r3, ms(10));
        t.add_link(r3, s, ms(10));
        (t, c, s, vec![r2, r3])
    }

    fn ctx<'a>(topo: &'a Topology, c: NodeId, s: NodeId, relays: &'a [NodeId]) -> PathCtx<'a> {
        PathCtx {
            client: c,
            server: s,
            relays,
            topo,
            transfer_index: 0,
        }
    }

    /// The striper/racer contract: `best_k(ctx, 1)` is exactly the
    /// path the racer probes first — `paths(ctx)[0]` — for a real
    /// selector, not just a stub.
    #[test]
    fn best_one_equals_first_probe_path() {
        let (topo, c, s, relays) = world();
        let mut sel = KShortest::new(KShortestConfig::default());
        let first = sel.paths(&ctx(&topo, c, s, &relays))[0];
        let best = sel.best_k(&ctx(&topo, c, s, &relays), 1);
        assert_eq!(best, vec![first]);
    }

    #[test]
    fn best_k_truncates_dedups_and_preserves_order() {
        let (topo, c, s, relays) = world();
        let p2 = PathSpec::indirect(c, s, relays[0]);
        let p3 = PathSpec::indirect(c, s, relays[1]);
        let mut sel = Canned(vec![p2, p2, p3]);
        assert_eq!(sel.best_k(&ctx(&topo, c, s, &relays), 1), vec![p2]);
        assert_eq!(sel.best_k(&ctx(&topo, c, s, &relays), 2), vec![p2, p3]);
        // Asking for more than exists returns what exists.
        assert_eq!(sel.best_k(&ctx(&topo, c, s, &relays), 9), vec![p2, p3]);
        assert!(sel.best_k(&ctx(&topo, c, s, &relays), 0).is_empty());
    }
}
