//! The [`PathSelector`] trait and its decision context.

use ir_core::{PathSpec, TransferRecord};
use ir_simnet::topology::{NodeId, Topology};

/// Context for one path-selection decision.
///
/// Unlike `ir-core`'s `SelectCtx`, this carries the **topology**: path
/// selectors may inspect link latency to build chains, where relay
/// policies only choose among opaque relay ids.
#[derive(Debug, Clone)]
pub struct PathCtx<'a> {
    /// The client about to transfer.
    pub client: NodeId,
    /// The destination server.
    pub server: NodeId,
    /// Every relay available to this client (the paper's "full set").
    pub relays: &'a [NodeId],
    /// The network topology the transfer will run over.
    pub topo: &'a Topology,
    /// Sequence number of this transfer for this client (0-based).
    pub transfer_index: u64,
}

/// A path-selection policy: decides which indirect paths (1-hop or
/// multi-hop chains) a session probes against the direct path, and in
/// what order. The probe race still makes the final call — a selector
/// shapes the candidate field, it does not override measurement.
pub trait PathSelector: Send {
    /// Short name for reports and per-policy telemetry labels.
    fn name(&self) -> &'static str;

    /// Indirect candidate paths to probe for this transfer, in probe
    /// order. Empty means direct-only. The direct path is always raced
    /// and must not be returned here.
    fn paths(&mut self, ctx: &PathCtx<'_>) -> Vec<PathSpec>;

    /// Learns from a completed transfer.
    fn observe(&mut self, _rec: &TransferRecord) {}
}
