//! Adaptive per-client relay reweighting from observed outcomes.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sanitize::sanitize_candidates;
use crate::selector::{PathCtx, PathSelector};
use crate::weights::weighted_index_or_uniform;
use ir_core::{PathSpec, TransferRecord};
use ir_simnet::topology::NodeId;

/// Configuration for [`AdaptiveLearner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Candidate paths per decision.
    pub k: usize,
    /// RNG seed for the weighted sampling.
    pub seed: u64,
    /// EWMA smoothing factor in `(0, 1]`; higher forgets faster.
    pub alpha: f64,
    /// Optimism prior added to every weight so unexplored relays keep
    /// nonzero probability. At `0.0` a cold learner has an all-zero
    /// weight vector and relies on the uniform fallback.
    pub prior: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            k: 2,
            seed: 0,
            alpha: 0.2,
            prior: 0.05,
        }
    }
}

/// Learns, per `(client, relay)` pair, an EWMA of the relative
/// improvement indirect routing delivered through that relay, and
/// samples each decision's candidate set proportionally to the learned
/// weights (clamped at zero, plus the optimism prior).
///
/// State lives in `BTreeMap`s and sampling runs through a seeded
/// [`StdRng`], so the selector is a deterministic function of its seed
/// and observation sequence.
pub struct AdaptiveLearner {
    cfg: AdaptiveConfig,
    rng: StdRng,
    /// `(client, relay)` → EWMA of `selected/direct − 1`.
    ewma: BTreeMap<(NodeId, NodeId), f64>,
}

impl AdaptiveLearner {
    /// Creates a learner with the given config.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(
            cfg.alpha > 0.0 && cfg.alpha <= 1.0,
            "alpha must be in (0, 1], got {}",
            cfg.alpha
        );
        AdaptiveLearner {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            ewma: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// The learned improvement EWMA for a `(client, relay)` pair.
    pub fn learned(&self, client: NodeId, relay: NodeId) -> Option<f64> {
        self.ewma.get(&(client, relay)).copied()
    }

    fn weight(&self, client: NodeId, relay: NodeId) -> f64 {
        let learned = self.ewma.get(&(client, relay)).copied().unwrap_or(0.0);
        learned.max(0.0) + self.cfg.prior
    }
}

impl PathSelector for AdaptiveLearner {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn paths(&mut self, ctx: &PathCtx<'_>) -> Vec<PathSpec> {
        let mut pool = sanitize_candidates(ctx.client, ctx.server, ctx.relays);
        let k = self.cfg.k.min(pool.len());
        let mut picked = Vec::with_capacity(k);
        for _ in 0..k {
            let weights: Vec<f64> = pool.iter().map(|&r| self.weight(ctx.client, r)).collect();
            let i = weighted_index_or_uniform(&mut self.rng, &weights);
            picked.push(pool.swap_remove(i));
        }
        picked.sort();
        picked
            .into_iter()
            .map(|via| PathSpec::indirect(ctx.client, ctx.server, via))
            .collect()
    }

    fn observe(&mut self, rec: &TransferRecord) {
        if rec.direct_throughput <= 0.0 {
            return;
        }
        let alpha = self.cfg.alpha;
        match rec.selected.via() {
            Some(via) => {
                // The winning relay absorbs the measured improvement.
                let sample = rec.selected_throughput / rec.direct_throughput - 1.0;
                let slot = self.ewma.entry((rec.client, via)).or_insert(0.0);
                *slot = (1.0 - alpha) * *slot + alpha * sample;
            }
            None => {
                // Direct won: every probed relay failed to beat it, so
                // their estimates decay toward zero.
                for &r in &rec.candidates {
                    if let Some(slot) = self.ewma.get_mut(&(rec.client, r)) {
                        *slot *= 1.0 - alpha;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::time::SimTime;
    use ir_simnet::topology::{NodeKind, Topology};

    fn topo() -> Topology {
        let mut t = Topology::new();
        t.add_node("c", NodeKind::Client);
        t.add_node("s", NodeKind::Server);
        for i in 0..4 {
            t.add_node(format!("r{i}"), NodeKind::Intermediate);
        }
        t
    }

    fn rec(client: NodeId, via: Option<NodeId>, ratio: f64, cands: &[NodeId]) -> TransferRecord {
        let s = NodeId(1);
        TransferRecord {
            client,
            server: s,
            started: SimTime::ZERO,
            file_bytes: 1,
            selected: match via {
                None => PathSpec::direct(client, s),
                Some(v) => PathSpec::indirect(client, s, v),
            },
            candidates: cands.to_vec(),
            direct_throughput: 1.0,
            selected_throughput: ratio,
            probe_throughput: ratio,
            selected_path_rate: ratio,
            probe_timeout: false,
            failovers: 0,
            stall_ms: 0,
            abandoned: false,
        }
    }

    #[test]
    fn good_outcomes_shift_sampling_toward_the_relay() {
        let topo = topo();
        let relays: Vec<NodeId> = (2..6).map(NodeId).collect();
        let mut sel = AdaptiveLearner::new(AdaptiveConfig {
            k: 1,
            ..AdaptiveConfig::default()
        });
        let c = NodeId(0);
        let count_hits = |sel: &mut AdaptiveLearner| -> usize {
            (0..600)
                .filter(|&k| {
                    let p = sel.paths(&PathCtx {
                        client: c,
                        server: NodeId(1),
                        relays: &relays,
                        topo: &topo,
                        transfer_index: k,
                    });
                    p[0].via() == Some(NodeId(3))
                })
                .count()
        };
        let before = count_hits(&mut sel);
        for _ in 0..30 {
            sel.observe(&rec(c, Some(NodeId(3)), 3.0, &relays));
        }
        let after = count_hits(&mut sel);
        assert!(
            after > before + 150,
            "learning had no effect: {before} -> {after}"
        );
        assert!(sel.learned(c, NodeId(3)).unwrap() > 1.0);
    }

    /// Satellite regression: a cold learner with no optimism prior has
    /// an all-zero weight vector and must fall back to uniform
    /// sampling instead of panicking inside `weighted_index`.
    #[test]
    fn zero_total_weights_sample_uniformly() {
        let topo = topo();
        let relays: Vec<NodeId> = (2..6).map(NodeId).collect();
        let mut sel = AdaptiveLearner::new(AdaptiveConfig {
            k: 1,
            prior: 0.0,
            ..AdaptiveConfig::default()
        });
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for k in 0..4_000 {
            let p = sel.paths(&PathCtx {
                client: NodeId(0),
                server: NodeId(1),
                relays: &relays,
                topo: &topo,
                transfer_index: k,
            });
            *counts.entry(p[0].via().unwrap()).or_insert(0) += 1;
        }
        for (&r, &c) in &counts {
            let frac = c as f64 / 4_000.0;
            assert!((frac - 0.25).abs() < 0.05, "relay {r:?} frac {frac}");
        }
    }

    #[test]
    fn direct_wins_decay_learned_weight() {
        let mut sel = AdaptiveLearner::new(AdaptiveConfig::default());
        let c = NodeId(0);
        sel.observe(&rec(c, Some(NodeId(2)), 2.0, &[NodeId(2)]));
        let peak = sel.learned(c, NodeId(2)).unwrap();
        for _ in 0..10 {
            sel.observe(&rec(c, None, 1.0, &[NodeId(2)]));
        }
        let decayed = sel.learned(c, NodeId(2)).unwrap();
        assert!(decayed < peak && decayed >= 0.0);
    }

    #[test]
    fn state_is_per_client() {
        let mut sel = AdaptiveLearner::new(AdaptiveConfig::default());
        sel.observe(&rec(NodeId(0), Some(NodeId(2)), 2.0, &[NodeId(2)]));
        assert!(sel.learned(NodeId(0), NodeId(2)).is_some());
        assert!(sel.learned(NodeId(7), NodeId(2)).is_none());
    }
}
