//! Defensive weighted sampling.
//!
//! `ir_stats::sampling::weighted_index` panics on empty, negative,
//! non-finite, or zero-sum weights — the right contract for the
//! workload generator, where such weights are bugs. Learned selector
//! weights are different: a cold-started or all-penalized learner
//! legitimately produces an all-zero weight vector, and the correct
//! behavior is to fall back to uniform exploration, not to crash the
//! sweep.

use ir_stats::sampling::weighted_index;
use rand::Rng;

/// Samples an index proportionally to `weights`, treating negative and
/// non-finite entries as zero. When every usable weight is zero the
/// draw is **uniform** over all indices instead of a panic.
///
/// # Panics
///
/// Panics only if `weights` is empty — there is nothing to select.
pub fn weighted_index_or_uniform<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "empty weight vector");
    let cleaned: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    if cleaned.iter().sum::<f64>() > 0.0 {
        weighted_index(rng, &cleaned)
    } else {
        rng.gen_range(0..weights.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn proportional_when_weights_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index_or_uniform(&mut rng, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn zero_total_falls_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = [0.0, 0.0, 0.0, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[weighted_index_or_uniform(&mut rng, &w)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02, "not uniform: {counts:?}");
        }
    }

    #[test]
    fn bad_weights_are_treated_as_zero() {
        let mut rng = StdRng::seed_from_u64(13);
        // NaN / negative / infinite entries must never be selected
        // while a positive entry exists.
        let w = [f64::NAN, -5.0, f64::INFINITY, 2.0];
        for _ in 0..1_000 {
            assert_eq!(weighted_index_or_uniform(&mut rng, &w), 3);
        }
        // All-bad degenerates to uniform, not a panic.
        let all_bad = [f64::NAN, -1.0];
        let i = weighted_index_or_uniform(&mut rng, &all_bad);
        assert!(i < 2);
    }

    #[test]
    #[should_panic(expected = "empty weight vector")]
    fn empty_still_panics() {
        weighted_index_or_uniform(&mut StdRng::seed_from_u64(1), &[]);
    }
}
