//! Adapter porting `ir-core`'s relay policies into the path plane.

use crate::sanitize::sanitize_candidates;
use crate::selector::{PathCtx, PathSelector};
use ir_core::{PathSpec, SelectCtx, SelectionPolicy, TransferRecord};

/// Wraps any [`SelectionPolicy`] as a [`PathSelector`]: each relay
/// candidate becomes one 1-hop path, in the policy's order.
///
/// The adapter is **byte-identical** to running the policy through
/// `ir_core::run_session_traced` on sane policies: same candidate
/// sequence, same RNG consumption, same paths in the same order. The
/// only behavioral addition is [`sanitize_candidates`] — a policy
/// emitting the client, the server, or a duplicate gets filtered here
/// instead of panicking in `PathSpec::indirect` (the legacy entry
/// point still panics, which no shipped policy triggers).
pub struct PolicySelector<P> {
    inner: P,
}

impl<P: SelectionPolicy> PolicySelector<P> {
    /// Ports `policy` into the path plane.
    pub fn new(policy: P) -> Self {
        PolicySelector { inner: policy }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: SelectionPolicy> PathSelector for PolicySelector<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn paths(&mut self, ctx: &PathCtx<'_>) -> Vec<PathSpec> {
        let sctx = SelectCtx {
            client: ctx.client,
            server: ctx.server,
            full_set: ctx.relays,
            transfer_index: ctx.transfer_index,
        };
        let raw = self.inner.candidates(&sctx);
        sanitize_candidates(ctx.client, ctx.server, &raw)
            .into_iter()
            .map(|via| PathSpec::indirect(ctx.client, ctx.server, via))
            .collect()
    }

    fn observe(&mut self, rec: &TransferRecord) {
        self.inner.observe(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::{RandomSet, StaticSingle, UtilizationWeighted};
    use ir_simnet::time::SimTime;
    use ir_simnet::topology::{NodeId, NodeKind, Topology};

    fn ctx_topo() -> Topology {
        let mut t = Topology::new();
        t.add_node("c", NodeKind::Client);
        t.add_node("s", NodeKind::Server);
        for i in 0..8 {
            t.add_node(format!("r{i}"), NodeKind::Intermediate);
        }
        t
    }

    fn rec_with(selected_via: Option<NodeId>, cands: &[NodeId]) -> TransferRecord {
        let c = NodeId(0);
        let s = NodeId(1);
        TransferRecord {
            client: c,
            server: s,
            started: SimTime::ZERO,
            file_bytes: 1,
            selected: match selected_via {
                None => PathSpec::direct(c, s),
                Some(v) => PathSpec::indirect(c, s, v),
            },
            candidates: cands.to_vec(),
            direct_throughput: 1.0,
            selected_throughput: 2.0,
            probe_throughput: 2.0,
            selected_path_rate: 2.0,
            probe_timeout: false,
            failovers: 0,
            stall_ms: 0,
            abandoned: false,
        }
    }

    /// The port must consume the policy's RNG identically: the adapted
    /// paths are exactly the raw candidates, one 1-hop path each.
    #[test]
    fn random_set_ports_byte_identically() {
        let topo = ctx_topo();
        let relays: Vec<NodeId> = (2..10).map(NodeId).collect();
        let mut raw = RandomSet::new(3, 42);
        let mut ported = PolicySelector::new(RandomSet::new(3, 42));
        for k in 0..32u64 {
            let sctx = SelectCtx {
                client: NodeId(0),
                server: NodeId(1),
                full_set: &relays,
                transfer_index: k,
            };
            let pctx = PathCtx {
                client: NodeId(0),
                server: NodeId(1),
                relays: &relays,
                topo: &topo,
                transfer_index: k,
            };
            let want: Vec<PathSpec> = raw
                .candidates(&sctx)
                .into_iter()
                .map(|v| PathSpec::indirect(NodeId(0), NodeId(1), v))
                .collect();
            assert_eq!(ported.paths(&pctx), want, "diverged at transfer {k}");
        }
    }

    /// Satellite regression: the §6 utilization-weighted policy's
    /// `observe` loop. A seeded sweep of repeated good outcomes for one
    /// relay must measurably raise its selection frequency through the
    /// ported plane.
    #[test]
    fn utilization_weighted_observe_raises_selection_frequency() {
        let topo = ctx_topo();
        let relays = [NodeId(2), NodeId(3)];
        let mut sel = PolicySelector::new(UtilizationWeighted::new(1, 5));
        let pctx = |k: u64| PathCtx {
            client: NodeId(0),
            server: NodeId(1),
            relays: &relays,
            topo: &topo,
            transfer_index: k,
        };
        // Baseline: cold weights are uniform → roughly 50/50.
        let before: usize = (0..400)
            .filter(|&k| sel.paths(&pctx(k))[0].via() == Some(NodeId(2)))
            .count();
        assert!((120..=280).contains(&before), "cold split {before}/400");
        // Seeded sweep: relay 2 is always chosen when it appears,
        // relay 3 never is.
        for _ in 0..40 {
            sel.observe(&rec_with(Some(NodeId(2)), &[NodeId(2)]));
            sel.observe(&rec_with(None, &[NodeId(3)]));
        }
        let after: usize = (0..400)
            .filter(|&k| sel.paths(&pctx(k))[0].via() == Some(NodeId(2)))
            .count();
        assert!(
            after > before + 60,
            "good outcomes did not raise frequency: {before} -> {after}"
        );
    }

    #[test]
    fn degenerate_policy_output_is_sanitized_not_fatal() {
        /// A policy that returns the endpoints and duplicates.
        struct Hostile;
        impl SelectionPolicy for Hostile {
            fn name(&self) -> &'static str {
                "hostile"
            }
            fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<NodeId> {
                vec![ctx.client, NodeId(4), ctx.server, NodeId(4), NodeId(5)]
            }
        }
        let topo = ctx_topo();
        let relays: Vec<NodeId> = (2..10).map(NodeId).collect();
        let mut sel = PolicySelector::new(Hostile);
        let paths = sel.paths(&PathCtx {
            client: NodeId(0),
            server: NodeId(1),
            relays: &relays,
            topo: &topo,
            transfer_index: 0,
        });
        let vias: Vec<Option<NodeId>> = paths.iter().map(|p| p.via()).collect();
        assert_eq!(vias, vec![Some(NodeId(4)), Some(NodeId(5))]);
    }

    #[test]
    fn observe_passes_through() {
        let mut sel = PolicySelector::new(StaticSingle(NodeId(2)));
        sel.observe(&rec_with(Some(NodeId(2)), &[NodeId(2)]));
        assert_eq!(sel.name(), "static-single");
    }
}
