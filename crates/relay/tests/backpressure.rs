//! Accept-side backpressure regression tests.
//!
//! With `max_connections = K`, the K+1-th connection must be refused
//! with a 503 (or parked, under [`ir_relay::Backpressure::Queue`]),
//! `relay_backpressure_drops` / `relay_backpressure_queued` must
//! count the event, and — crucially — connections admitted earlier
//! must keep serving byte-for-byte correct responses.

use bytes::BytesMut;
use ir_http::{encode_request, via_proxy, Parsed, Response, StatusCode};
use ir_relay::{
    body_byte, Backpressure, OriginConfig, OriginServer, RateSchedule, Relay, RelayConfig,
};
use ir_telemetry::Telemetry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn read_response(stream: &mut TcpStream) -> (Response, Vec<u8>) {
    let mut buf = BytesMut::new();
    let head = loop {
        match ir_http::parse_response(&buf[..]).unwrap() {
            Parsed::Complete { value, consumed } => {
                let _ = buf.split_to(consumed);
                break value;
            }
            Parsed::Partial => {
                let mut chunk = [0u8; 8192];
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "relay hung up mid-response");
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    };
    let len = head.headers.content_length().unwrap().unwrap_or(0) as usize;
    let mut body = buf.to_vec();
    while body.len() < len {
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "relay hung up mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(len);
    (head, body)
}

fn request_range(stream: &mut TcpStream, origin: SocketAddr, from: u64, to: u64) {
    let req = via_proxy(&origin.ip().to_string(), origin.port(), "/f")
        .with_header("Range", format!("bytes={from}-{to}"));
    let mut buf = BytesMut::new();
    encode_request(&req, &mut buf);
    stream.write_all(&buf).unwrap();
}

fn assert_body(body: &[u8], from: u64) {
    for (i, &b) in body.iter().enumerate() {
        assert_eq!(b, body_byte(from + i as u64), "corrupt byte at offset {i}");
    }
}

fn wait_for_active(relay: &Relay, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while relay.active_connections() != want {
        assert!(Instant::now() < deadline, "active never reached {want}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn refuse_policy_returns_503_and_spares_admitted_connections() {
    let tel = Arc::new(Telemetry::new());
    let origin = OriginServer::start(OriginConfig::new(20_000)).unwrap();
    let relay = Relay::start(
        RelayConfig::new()
            .with_telemetry(tel.clone())
            .with_max_connections(2, Backpressure::Refuse),
    )
    .unwrap();

    // Fill both slots with keep-alive connections that each complete a
    // full request.
    let mut first = TcpStream::connect(relay.addr()).unwrap();
    request_range(&mut first, origin.addr(), 0, 4_999);
    let (head, body) = read_response(&mut first);
    assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
    assert_body(&body, 0);
    let mut second = TcpStream::connect(relay.addr()).unwrap();
    request_range(&mut second, origin.addr(), 100, 5_099);
    let (_, body) = read_response(&mut second);
    assert_body(&body, 100);
    wait_for_active(&relay, 2);

    // The third connection is refused before it sends anything: the
    // relay answers 503 on accept and hangs up.
    let mut third = TcpStream::connect(relay.addr()).unwrap();
    let (head, body) = read_response(&mut third);
    assert_eq!(head.status, StatusCode::SERVICE_UNAVAILABLE);
    assert!(body.is_empty());
    let snap = tel.metrics.snapshot();
    assert_eq!(snap.counter("relay_backpressure_drops", &vec![]), Some(1));

    // Admitted connections are unaffected: byte-for-byte identical
    // service continues on the keep-alive sockets.
    request_range(&mut first, origin.addr(), 7_000, 11_999);
    let (head, body) = read_response(&mut first);
    assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
    assert_eq!(body.len(), 5_000);
    assert_body(&body, 7_000);

    // Releasing a slot re-opens admission.
    drop(first);
    drop(second);
    wait_for_active(&relay, 0);
    let mut fourth = TcpStream::connect(relay.addr()).unwrap();
    request_range(&mut fourth, origin.addr(), 0, 999);
    let (head, body) = read_response(&mut fourth);
    assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
    assert_body(&body, 0);
}

#[test]
fn queue_policy_parks_then_serves_and_overflows_to_503() {
    let tel = Arc::new(Telemetry::new());
    let origin = OriginServer::start(OriginConfig::new(150_000)).unwrap();
    // One slot, shaped so the first transfer occupies it long enough
    // for the others to pile up behind it.
    let relay = Relay::start(
        RelayConfig::shaped(RateSchedule::constant(300_000.0))
            .with_telemetry(tel.clone())
            .with_max_connections(1, Backpressure::Queue),
    )
    .unwrap();
    let addr = relay.addr();
    let o = origin.addr();

    let occupant = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        request_range(&mut stream, o, 0, 149_999);
        let (head, body) = read_response(&mut stream);
        assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
        assert_body(&body, 0);
        body.len()
        // Dropping the stream releases the slot.
    });

    // Give the occupant time to be admitted, then join the queue.
    wait_for_active(&relay, 1);
    let mut queued = TcpStream::connect(addr).unwrap();
    request_range(&mut queued, o, 500, 1_499);

    // While one connection is parked (queue capacity = max = 1), a
    // further arrival overflows to a refusal.
    std::thread::sleep(Duration::from_millis(100));
    let mut overflow = TcpStream::connect(addr).unwrap();
    let (head, _) = read_response(&mut overflow);
    assert_eq!(head.status, StatusCode::SERVICE_UNAVAILABLE);

    // The queued connection is eventually admitted and served
    // correctly — its request sat in the socket buffer all along.
    let (head, body) = read_response(&mut queued);
    assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
    assert_eq!(body.len(), 1_000);
    assert_body(&body, 500);

    assert_eq!(occupant.join().unwrap(), 150_000);
    let snap = tel.metrics.snapshot();
    assert!(
        snap.counter("relay_backpressure_queued", &vec![])
            .unwrap_or(0)
            >= 1
    );
    assert_eq!(snap.counter("relay_backpressure_drops", &vec![]), Some(1));
}
