//! Seeded state-machine sweep over the event-driven relay lifecycle.
//!
//! The reactor replaces blocked serve threads with per-connection state
//! machines (`accept → read request → latency → dial → send upstream →
//! read head → splice → keep-alive/drain/kill`). These tests drive
//! seeded scenarios — normal transfers, pipelined keep-alive, half-open
//! peers, slow readers, mid-splice kills, graceful drains — and assert
//! that every transition is reachable via the [`ir_relay::
//! LifecycleSnapshot`] counters and that nothing leaks: the kill
//! registry is empty and the active gauge is zero once connections end.

use bytes::BytesMut;
use ir_http::{encode_request, via_proxy, Parsed, Response, StatusCode};
use ir_relay::{
    body_byte, OriginConfig, OriginServer, RateSchedule, Relay, RelayConfig, RelayMode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn read_response(stream: &mut TcpStream) -> (Response, Vec<u8>) {
    let mut buf = BytesMut::new();
    let head = loop {
        match ir_http::parse_response(&buf[..]).unwrap() {
            Parsed::Complete { value, consumed } => {
                let _ = buf.split_to(consumed);
                break value;
            }
            Parsed::Partial => {
                let mut chunk = [0u8; 8192];
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "relay hung up mid-response");
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    };
    let len = head.headers.content_length().unwrap().unwrap_or(0) as usize;
    let mut body = buf.to_vec();
    while body.len() < len {
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "relay hung up mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(len);
    (head, body)
}

fn send_range(stream: &mut TcpStream, origin: SocketAddr, from: u64, to: u64) {
    let req = via_proxy(&origin.ip().to_string(), origin.port(), "/f")
        .with_header("Range", format!("bytes={from}-{to}"));
    let mut buf = BytesMut::new();
    encode_request(&req, &mut buf);
    stream.write_all(&buf).unwrap();
}

/// Polls until the relay has reaped every connection (reactor ticks
/// are ~10 ms; closes race the assertions without this).
fn wait_quiesced(relay: &Relay) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if relay.active_connections() == 0 && relay.registry_is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "relay did not quiesce: {} active, registry empty = {}",
        relay.active_connections(),
        relay.registry_is_empty()
    );
}

#[test]
fn seeded_sweep_reaches_every_transition() {
    const CONTENT: u64 = 64_000;
    let origin = OriginServer::start(OriginConfig::new(CONTENT)).unwrap();
    // Small latency makes the Latency state reachable; a short idle
    // deadline keeps the half-open scenario fast.
    let mut relay = Relay::start(
        RelayConfig::new()
            .with_latency(Duration::from_millis(20))
            .with_idle_timeout(Duration::from_millis(400)),
    )
    .unwrap();

    // Normal + keep-alive transfers, seeded ranges.
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(0x11FE + seed);
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        let requests = rng.gen_range(1..4usize);
        for _ in 0..requests {
            let from = rng.gen_range(0..CONTENT - 64);
            let to = rng.gen_range(from..CONTENT.min(from + 8192));
            send_range(&mut stream, origin.addr(), from, to);
            let (head, body) = read_response(&mut stream);
            assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
            assert_eq!(body.len() as u64, to - from + 1);
            for (i, &b) in body.iter().enumerate() {
                assert_eq!(b, body_byte(from + i as u64), "corrupt byte at {i}");
            }
        }
    }

    // Error paths: an origin-form request (400)…
    {
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        let req = ir_http::Request::get("/origin-form").with_header("Host", "x");
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        let (head, _) = read_response(&mut stream);
        assert_eq!(head.status, StatusCode::BAD_REQUEST);
    }
    // …and an unreachable origin (502).
    {
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        let req = via_proxy("127.0.0.1", 1, "/f");
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        let (head, _) = read_response(&mut stream);
        assert_eq!(head.status, StatusCode::BAD_GATEWAY);
    }

    // Half-open peer: connects, never sends, gets reaped by the
    // progress deadline.
    {
        let _half_open = TcpStream::connect(relay.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(700));
    }
    wait_quiesced(&relay);

    // Drain with one idle keep-alive connection parked: it closes
    // immediately rather than waiting out its deadline.
    let mut idle = TcpStream::connect(relay.addr()).unwrap();
    send_range(&mut idle, origin.addr(), 0, 99);
    let (_, body) = read_response(&mut idle);
    assert_eq!(body.len(), 100);
    let report = relay.drain(Duration::from_secs(5));
    assert!(report.completed && report.monotone, "report {report:?}");

    let snap = relay.lifecycle();
    assert!(snap.accepted >= 9, "accepted {snap:?}");
    assert!(snap.requests_read > 0, "{snap:?}");
    assert!(snap.latency_waits > 0, "{snap:?}");
    assert!(snap.origin_dials > 0, "{snap:?}");
    assert!(snap.upstream_sends > 0, "{snap:?}");
    assert!(snap.heads_read > 0, "{snap:?}");
    assert!(snap.splices_started > 0, "{snap:?}");
    assert!(snap.requests_completed > 0, "{snap:?}");
    assert!(snap.error_responses >= 2, "{snap:?}");
    assert!(snap.closed_clean > 0, "{snap:?}");
    assert!(snap.idle_timeouts >= 1, "{snap:?}");
    assert!(snap.drained_idle >= 1, "{snap:?}");
    // No state left behind.
    assert!(relay.registry_is_empty(), "registry leaked entries");
    assert_eq!(relay.active_connections(), 0);
}

#[test]
fn half_open_peer_is_reaped_without_leaking() {
    let relay =
        Relay::start(RelayConfig::new().with_idle_timeout(Duration::from_millis(200))).unwrap();
    let stream = TcpStream::connect(relay.addr()).unwrap();
    // Never send a byte; the reactor must reap us on its own.
    std::thread::sleep(Duration::from_millis(500));
    wait_quiesced(&relay);
    let snap = relay.lifecycle();
    assert_eq!(snap.idle_timeouts, 1, "{snap:?}");
    assert_eq!(snap.closed_error, 1, "{snap:?}");
    drop(stream);
}

#[test]
fn slow_reader_still_gets_every_byte() {
    const CONTENT: u64 = 4_000_000;
    let origin = OriginServer::start(OriginConfig::new(CONTENT)).unwrap();
    let relay = Relay::start(RelayConfig::new()).unwrap();
    let mut stream = TcpStream::connect(relay.addr()).unwrap();
    send_range(&mut stream, origin.addr(), 0, CONTENT - 1);

    // Read deliberately slowly so the kernel buffers fill and the
    // reactor parks the connection on client-writability.
    let mut got = 0u64;
    let mut chunk = [0u8; 16 * 1024];
    let mut reads = 0u32;
    loop {
        let n = stream.read(&mut chunk).unwrap();
        if n == 0 {
            break;
        }
        // Skip over the response head; spot-check body bytes.
        got += n as u64;
        reads += 1;
        if reads.is_multiple_of(8) {
            std::thread::sleep(Duration::from_millis(2));
        }
        if got >= CONTENT {
            break;
        }
    }
    assert!(got >= CONTENT, "short read: {got}");
    let deadline = Instant::now() + Duration::from_secs(5);
    while relay.lifecycle().requests_completed == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(relay.lifecycle().requests_completed, 1);
}

#[test]
fn mid_splice_kill_leaves_no_state_behind() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED + seed);
        let origin = OriginServer::start(OriginConfig::new(400_000)).unwrap();
        let mut relay =
            Relay::start(RelayConfig::shaped(RateSchedule::constant(200_000.0))).unwrap();
        let addr = relay.addr();
        let o = origin.addr();
        let t = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            send_range(&mut stream, o, 0, 399_999);
            let mut total = 0usize;
            let mut chunk = [0u8; 8192];
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n,
                }
            }
            total
        });
        std::thread::sleep(Duration::from_millis(rng.gen_range(100..400u64)));
        relay.kill();
        let got = t.join().expect("client must not panic");
        assert!(got < 400_000, "seed {seed}: transfer should be cut short");
        assert!(relay.registry_is_empty(), "seed {seed}: registry leaked");
        assert_eq!(relay.active_connections(), 0, "seed {seed}");
        let snap = relay.lifecycle();
        assert!(snap.killed >= 1, "seed {seed}: kill not observed {snap:?}");
    }
}

#[test]
fn threaded_mode_counts_its_lifecycle_too() {
    let origin = OriginServer::start(OriginConfig::new(5_000)).unwrap();
    let relay = Relay::start(RelayConfig::new().with_mode(RelayMode::Threaded)).unwrap();
    let mut stream = TcpStream::connect(relay.addr()).unwrap();
    send_range(&mut stream, origin.addr(), 0, 4_999);
    let (head, body) = read_response(&mut stream);
    assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
    assert_eq!(body.len(), 5_000);
    drop(stream);
    wait_quiesced(&relay);
    let snap = relay.lifecycle();
    assert_eq!(snap.accepted, 1);
    assert_eq!(snap.requests_completed, 1);
    assert_eq!(snap.closed_clean, 1);
}
