//! Minimal poll(2) readiness layer for the event-driven relay.
//!
//! The workspace vendors no `libc` crate, so the two syscalls the
//! reactor needs — `poll` and a non-blocking `connect` — are declared
//! directly against the platform C library (which every Rust binary
//! already links). Everything else stays on `std`: sockets are plain
//! `TcpStream`s flipped to non-blocking mode, and the acceptor→worker
//! wakeup channel is a `UnixStream` pair.
//!
//! Only Linux constants are used on the FFI path; non-Linux unix
//! targets fall back to a blocking `connect` + `set_nonblocking`,
//! which preserves semantics at a small latency cost in the dial.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

/// Readable readiness (data or EOF pending).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (connect completion or send-buffer space).
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;

/// `struct pollfd` as the C library expects it.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// Descriptor to watch (negative entries are ignored by the
    /// kernel, which the reactor uses for padding).
    pub fd: RawFd,
    /// Requested events.
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

impl PollFd {
    /// Watches `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// An entry the kernel skips (fd < 0): keeps index arithmetic
    /// simple when a connection has no origin socket yet.
    pub fn ignored() -> Self {
        PollFd {
            fd: -1,
            events: 0,
            revents: 0,
        }
    }

    /// Any readiness or error bit set.
    pub fn is_ready(&self) -> bool {
        self.revents != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until a descriptor in `fds` is ready or `timeout` elapses.
/// Returns the number of ready descriptors (0 on timeout). `EINTR`
/// retries transparently with the same timeout.
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let ms: c_int = timeout.as_millis().min(c_int::MAX as u128) as c_int;
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only
        // the `revents` field of the `fds.len()` entries passed.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// Outcome of a non-blocking dial.
pub enum Dial {
    /// Three-way handshake still in flight: poll the stream for
    /// `POLLOUT`, then call [`connect_errno`].
    Pending(TcpStream),
    /// Connected immediately (loopback fast path).
    Ready(TcpStream),
}

#[cfg(target_os = "linux")]
mod linux {
    use super::*;

    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_STREAM: c_int = 1;
    const SOCK_NONBLOCK: c_int = 0o4000;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const EINPROGRESS: i32 = 115;
    pub(super) const SOL_SOCKET: c_int = 1;
    pub(super) const SO_ERROR: c_int = 4;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: u32, // network byte order
        sin_zero: [u8; 8],
    }

    #[repr(C)]
    struct SockaddrIn6 {
        sin6_family: u16,
        sin6_port: u16, // network byte order
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn connect(fd: c_int, addr: *const u8, len: u32) -> c_int;
        fn close(fd: c_int) -> c_int;
        pub(super) fn getsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *mut u8,
            len: *mut u32,
        ) -> c_int;
    }

    /// Starts a non-blocking TCP connect to `addr`.
    pub(super) fn dial(addr: &SocketAddr) -> io::Result<Dial> {
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: plain syscall with constant arguments; the returned
        // fd is owned below (wrapped in TcpStream or closed on error).
        let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let rc = match addr {
            SocketAddr::V4(a) => {
                let sa = SockaddrIn {
                    sin_family: AF_INET as u16,
                    sin_port: a.port().to_be(),
                    sin_addr: u32::from_ne_bytes(a.ip().octets()),
                    sin_zero: [0; 8],
                };
                // SAFETY: `sa` is a correctly sized, correctly laid
                // out sockaddr_in living for the duration of the call.
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockaddrIn).cast(),
                        std::mem::size_of::<SockaddrIn>() as u32,
                    )
                }
            }
            SocketAddr::V6(a) => {
                let sa = SockaddrIn6 {
                    sin6_family: AF_INET6 as u16,
                    sin6_port: a.port().to_be(),
                    sin6_flowinfo: 0,
                    sin6_addr: a.ip().octets(),
                    sin6_scope_id: a.scope_id(),
                };
                // SAFETY: as above, for sockaddr_in6.
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockaddrIn6).cast(),
                        std::mem::size_of::<SockaddrIn6>() as u32,
                    )
                }
            }
        };
        if rc == 0 {
            // SAFETY: `fd` is a freshly created, connected socket we
            // exclusively own; from_raw_fd transfers that ownership.
            return Ok(Dial::Ready(unsafe {
                use std::os::unix::io::FromRawFd;
                TcpStream::from_raw_fd(fd)
            }));
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINPROGRESS) {
            // SAFETY: as above — ownership of the in-progress socket
            // moves into the TcpStream.
            return Ok(Dial::Pending(unsafe {
                use std::os::unix::io::FromRawFd;
                TcpStream::from_raw_fd(fd)
            }));
        }
        // SAFETY: `fd` is a socket we own and have not wrapped; close
        // exactly once on the error path.
        unsafe { close(fd) };
        Err(err)
    }
}

/// Starts a non-blocking TCP connect to `addr`. On Linux this never
/// blocks (the handshake completes under `POLLOUT`); elsewhere it
/// degrades to a blocking dial flipped non-blocking afterwards.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<Dial> {
    #[cfg(target_os = "linux")]
    {
        linux::dial(addr)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let s = TcpStream::connect(addr)?;
        s.set_nonblocking(true)?;
        Ok(Dial::Ready(s))
    }
}

/// Resolves the pending error of a non-blocking connect after the
/// socket polled writable: `Ok(())` means connected.
pub fn connect_errno(stream: &TcpStream) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        let mut err: i32 = 0;
        let mut len: u32 = std::mem::size_of::<i32>() as u32;
        // SAFETY: SO_ERROR reads an int; `err` and `len` are valid,
        // correctly sized out-parameters for the duration of the call.
        let rc = unsafe {
            linux::getsockopt(
                stream.as_raw_fd(),
                linux::SOL_SOCKET,
                linux::SO_ERROR,
                (&mut err as *mut i32).cast(),
                &mut len,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        if err != 0 {
            return Err(io::Error::from_raw_os_error(err));
        }
        Ok(())
    }
    #[cfg(not(target_os = "linux"))]
    {
        // The fallback dial already completed the handshake.
        stream.take_error()?.map_or(Ok(()), Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    #[test]
    fn poll_times_out_on_idle_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Duration::from_millis(20)).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].is_ready());
    }

    #[test]
    fn poll_sees_readable_data_and_ignores_negative_fds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.write_all(b"x").unwrap();
        let mut fds = [PollFd::ignored(), PollFd::new(client.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Duration::from_millis(500)).unwrap();
        assert_eq!(n, 1);
        assert!(!fds[0].is_ready());
        assert!(fds[1].revents & POLLIN != 0);
    }

    #[test]
    fn nonblocking_connect_reaches_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = match connect_nonblocking(&addr).unwrap() {
            Dial::Ready(s) => s,
            Dial::Pending(s) => {
                let mut fds = [PollFd::new(s.as_raw_fd(), POLLOUT)];
                poll_fds(&mut fds, Duration::from_secs(5)).unwrap();
                connect_errno(&s).unwrap();
                s
            }
        };
        // Prove the socket is genuinely connected end to end.
        let (mut server, _) = listener.accept().unwrap();
        server.write_all(b"ok").unwrap();
        drop(server);
        stream.set_nonblocking(false).unwrap();
        let mut buf = Vec::new();
        (&stream).read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"ok");
    }

    #[test]
    fn refused_connect_surfaces_an_error() {
        // Port 1 on loopback: nothing listens there.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        match connect_nonblocking(&addr) {
            Err(_) => {}
            Ok(Dial::Ready(_)) => panic!("connect to a dead port cannot succeed"),
            Ok(Dial::Pending(s)) => {
                let mut fds = [PollFd::new(s.as_raw_fd(), POLLOUT)];
                poll_fds(&mut fds, Duration::from_secs(5)).unwrap();
                assert!(connect_errno(&s).is_err());
            }
        }
    }
}
