//! Rate-shaped stream wrapper.
//!
//! Pacing happens on the **write** side: the sender of the bulk data
//! (origin or relay) pushes bytes through a [`TokenBucket`], emulating
//! the bottleneck on that leg of the path.

use crate::shaper::TokenBucket;
use std::io::{Read, Write};

/// Chunk size shared by every splice loop in the crate (the shaped
/// writer, the threaded forward path, and the reactor's pooled
/// buffers): big enough to amortize syscalls, small enough that rate
/// changes take effect quickly.
pub const SPLICE_CHUNK: usize = 16 * 1024;

/// Calls a hook exactly once, immediately after the first successful
/// non-empty write. The relay's threaded serve path uses this to
/// measure accept-to-first-byte without touching the splice loop.
pub struct FirstByteStamp<S, F: FnMut()> {
    inner: S,
    on_first: Option<F>,
}

impl<S, F: FnMut()> FirstByteStamp<S, F> {
    /// Wraps `inner`; `on_first` fires after the first byte goes out.
    pub fn new(inner: S, on_first: F) -> Self {
        FirstByteStamp {
            inner,
            on_first: Some(on_first),
        }
    }
}

impl<S: Write, F: FnMut()> Write for FirstByteStamp<S, F> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        if n > 0 {
            if let Some(mut hook) = self.on_first.take() {
                hook();
            }
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Read, F: FnMut()> Read for FirstByteStamp<S, F> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

/// A stream whose writes are paced by a token bucket. Reads pass
/// through untouched.
pub struct ThrottledStream<S> {
    inner: S,
    bucket: TokenBucket,
}

impl<S> ThrottledStream<S> {
    /// Wraps `inner`, pacing writes with `bucket`.
    pub fn new(inner: S, bucket: TokenBucket) -> Self {
        ThrottledStream { inner, bucket }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped stream (e.g. to set timeouts).
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for ThrottledStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<S: Write> Write for ThrottledStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            let want = buf.len().min(SPLICE_CHUNK);
            let granted = self.bucket.take(want);
            if granted > 0 {
                return self.inner.write(&buf[..granted]);
            }
            std::thread::sleep(self.bucket.eta(want));
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn writes_are_paced_to_rate() {
        // 100 KB at 400 KB/s ≈ 250 ms (minus the free burst).
        let sink = Vec::new();
        let mut s = ThrottledStream::new(sink, TokenBucket::at_rate(400_000.0));
        let payload = vec![7u8; 100_000];
        let t0 = Instant::now();
        s.write_all(&payload).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        // burst = 20 KB free; remaining 80 KB at 400 KB/s = 200 ms.
        assert!(dt > 0.12, "finished too fast: {dt}s");
        assert!(dt < 0.6, "finished too slow: {dt}s");
        assert_eq!(s.get_ref().len(), 100_000);
    }

    #[test]
    fn reads_pass_through() {
        let data = b"hello".to_vec();
        let mut s = ThrottledStream::new(std::io::Cursor::new(data), TokenBucket::at_rate(1.0));
        let mut out = String::new();
        let t0 = Instant::now();
        s.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello");
        assert!(t0.elapsed().as_secs_f64() < 0.1, "reads must not be shaped");
    }

    #[test]
    fn content_preserved_exactly() {
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let mut s = ThrottledStream::new(Vec::new(), TokenBucket::at_rate(1_000_000.0));
        s.write_all(&payload).unwrap();
        assert_eq!(s.into_inner(), payload);
    }

    #[test]
    fn empty_write_is_ok() {
        let mut s = ThrottledStream::new(Vec::new(), TokenBucket::at_rate(10.0));
        assert_eq!(s.write(&[]).unwrap(), 0);
    }
}
