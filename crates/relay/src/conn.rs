//! Per-connection state machine for the event-driven relay.
//!
//! Each accepted socket becomes a `Conn` driven entirely by
//! readiness: `accept → read request → latency → dial origin → send
//! upstream → read head → splice → keep-alive loop`, with error
//! responses re-entering the keep-alive loop exactly like the threaded
//! daemon. A connection never blocks a thread — every I/O call is
//! non-blocking, and `Conn::step` records *why* it parked
//! (`Blocked`) so the worker polls precisely the descriptor or timer
//! that can unpark it (no level-triggered busy loops).
//!
//! Rate shaping reuses [`TokenBucket`] with a carried grant budget:
//! tokens taken for a write that then hits `WouldBlock` are spent on
//! the retry rather than lost, so the shaped goodput matches the
//! blocking [`crate::stream::ThrottledStream`] path byte for byte.

use crate::poller::{connect_errno, connect_nonblocking, Dial};
use crate::shaper::TokenBucket;
use crate::stream::SPLICE_CHUNK;
use bytes::BytesMut;
use ir_http::{
    encode_request, encode_response, parse_request, parse_response, Parsed, Request, Response,
    StatusCode,
};
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Transition counters for the connection lifecycle, shared by every
/// worker. Integration tests sweep seeded scenarios and assert each
/// transition is reachable and that nothing leaks.
#[derive(Debug, Default)]
pub struct Lifecycle {
    /// Connections accepted into the reactor.
    pub accepted: AtomicU64,
    /// Requests parsed off client sockets.
    pub requests_read: AtomicU64,
    /// Requests that waited in the latency state.
    pub latency_waits: AtomicU64,
    /// Origin dials started.
    pub origin_dials: AtomicU64,
    /// Upstream requests fully written to an origin.
    pub upstream_sends: AtomicU64,
    /// Origin response heads parsed.
    pub heads_read: AtomicU64,
    /// Body splices started.
    pub splices_started: AtomicU64,
    /// Requests relayed to completion.
    pub requests_completed: AtomicU64,
    /// Synthesized 4xx/5xx responses sent to clients.
    pub error_responses: AtomicU64,
    /// Connections closed cleanly (EOF between requests, or drain
    /// after a completed request).
    pub closed_clean: AtomicU64,
    /// Connections closed on an error path.
    pub closed_error: AtomicU64,
    /// Connections reaped by the idle/progress deadline.
    pub idle_timeouts: AtomicU64,
    /// Idle connections closed immediately by a drain.
    pub drained_idle: AtomicU64,
    /// Connections severed by `kill()` or a drain deadline.
    pub killed: AtomicU64,
}

/// Point-in-time copy of [`Lifecycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleSnapshot {
    /// See [`Lifecycle::accepted`].
    pub accepted: u64,
    /// See [`Lifecycle::requests_read`].
    pub requests_read: u64,
    /// See [`Lifecycle::latency_waits`].
    pub latency_waits: u64,
    /// See [`Lifecycle::origin_dials`].
    pub origin_dials: u64,
    /// See [`Lifecycle::upstream_sends`].
    pub upstream_sends: u64,
    /// See [`Lifecycle::heads_read`].
    pub heads_read: u64,
    /// See [`Lifecycle::splices_started`].
    pub splices_started: u64,
    /// See [`Lifecycle::requests_completed`].
    pub requests_completed: u64,
    /// See [`Lifecycle::error_responses`].
    pub error_responses: u64,
    /// See [`Lifecycle::closed_clean`].
    pub closed_clean: u64,
    /// See [`Lifecycle::closed_error`].
    pub closed_error: u64,
    /// See [`Lifecycle::idle_timeouts`].
    pub idle_timeouts: u64,
    /// See [`Lifecycle::drained_idle`].
    pub drained_idle: u64,
    /// See [`Lifecycle::killed`].
    pub killed: u64,
}

impl Lifecycle {
    /// Snapshots every counter.
    pub fn snapshot(&self) -> LifecycleSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        LifecycleSnapshot {
            accepted: g(&self.accepted),
            requests_read: g(&self.requests_read),
            latency_waits: g(&self.latency_waits),
            origin_dials: g(&self.origin_dials),
            upstream_sends: g(&self.upstream_sends),
            heads_read: g(&self.heads_read),
            splices_started: g(&self.splices_started),
            requests_completed: g(&self.requests_completed),
            error_responses: g(&self.error_responses),
            closed_clean: g(&self.closed_clean),
            closed_error: g(&self.closed_error),
            idle_timeouts: g(&self.idle_timeouts),
            drained_idle: g(&self.drained_idle),
            killed: g(&self.killed),
        }
    }

    pub(crate) fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Pool of splice buffers: connections borrow one 16 KiB chunk for
/// their lifetime and return it on close, so a soak's allocation count
/// tracks peak concurrency instead of transfer count.
#[derive(Debug, Default)]
pub(crate) struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    const MAX_POOLED: usize = 256;

    pub(crate) fn take(&self) -> Vec<u8> {
        self.free
            .lock()
            .expect("buffer pool")
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(SPLICE_CHUNK))
    }

    pub(crate) fn give(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut free = self.free.lock().expect("buffer pool");
        if buf.capacity() >= SPLICE_CHUNK && free.len() < Self::MAX_POOLED {
            free.push(buf);
        }
    }

    #[cfg(test)]
    pub(crate) fn pooled(&self) -> usize {
        self.free.lock().expect("buffer pool").len()
    }
}

/// Why a connection parked. The worker's poll set is derived from
/// exactly this, so a blocked connection wakes only when the condition
/// it is waiting on can have changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Blocked {
    /// Waiting for request bytes from the client.
    ClientRead,
    /// Client send buffer full.
    ClientWrite,
    /// Waiting for origin response bytes.
    OriginRead,
    /// Origin send buffer full (or connect in flight).
    OriginWrite,
    /// Waiting on a timer (latency emulation or token refill).
    Timer(Instant),
}

/// How a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseKind {
    /// Orderly end: client EOF between requests, or drain completion.
    Clean,
    /// Any error path, including idle timeout.
    Error,
}

/// Result of driving a connection as far as it can go right now.
#[derive(Debug)]
pub(crate) enum Step {
    /// Parked; see [`Conn::blocked`].
    Blocked,
    /// Finished; the worker reaps the connection. Lifecycle counters
    /// record whether the close was clean or an error.
    Closed,
}

enum State {
    ReadRequest,
    Latency { until: Instant, req: Request },
    Connecting { origin: TcpStream },
    SendUpstream { origin: TcpStream },
    ReadHead { origin: TcpStream },
    Splice { origin: TcpStream, remaining: u64 },
    Respond,
}

/// Everything a step needs from the worker.
pub(crate) struct StepCtx<'a> {
    pub telemetry: &'a Option<Arc<Telemetry>>,
    pub latency: Duration,
    pub epoch: Instant,
    pub lifecycle: &'a Lifecycle,
    /// Graceful drain in progress: finish the in-flight request, then
    /// close instead of looping for keep-alive.
    pub draining: bool,
    pub now: Instant,
}

/// One client connection owned by a reactor worker.
pub(crate) struct Conn {
    pub(crate) id: u64,
    pub(crate) client: TcpStream,
    pub(crate) accept_at: Instant,
    pub(crate) blocked: Blocked,
    state: State,
    inbuf: BytesMut,
    headbuf: BytesMut,
    /// Pooled scratch/output buffer: pending client-bound bytes live
    /// in `outbuf[out_off..]`.
    outbuf: Vec<u8>,
    out_off: usize,
    upbuf: BytesMut,
    up_off: usize,
    bucket: Option<TokenBucket>,
    budget: usize,
    fwd_start: Instant,
    body_len: u64,
    first_byte_sent: bool,
    /// Progress deadline: no forward progress past this instant closes
    /// the connection (half-open peers, stalled readers).
    deadline: Instant,
}

impl Conn {
    pub(crate) fn new(
        id: u64,
        client: TcpStream,
        accept_at: Instant,
        bucket: Option<TokenBucket>,
        idle_timeout: Duration,
        outbuf: Vec<u8>,
    ) -> std::io::Result<Conn> {
        client.set_nonblocking(true)?;
        client.set_nodelay(true)?;
        Ok(Conn {
            id,
            client,
            accept_at,
            blocked: Blocked::ClientRead,
            state: State::ReadRequest,
            inbuf: BytesMut::new(),
            headbuf: BytesMut::new(),
            outbuf,
            out_off: 0,
            upbuf: BytesMut::new(),
            up_off: 0,
            bucket,
            budget: 0,
            fwd_start: accept_at,
            body_len: 0,
            first_byte_sent: false,
            deadline: accept_at + idle_timeout,
        })
    }

    /// True when the connection sits between requests with nothing
    /// buffered — a drain closes these immediately.
    pub(crate) fn is_idle(&self) -> bool {
        matches!(self.state, State::ReadRequest) && self.inbuf.is_empty()
    }

    /// Returns the pooled buffer on close.
    pub(crate) fn into_buffer(self) -> Vec<u8> {
        self.outbuf
    }

    /// The earliest timer that should wake this connection: the
    /// blocked-on timer (if any) and the progress deadline.
    pub(crate) fn next_timer(&self) -> Instant {
        match self.blocked {
            Blocked::Timer(t) => t.min(self.deadline),
            _ => self.deadline,
        }
    }

    /// The descriptor interest derived from the blocked reason:
    /// `(client_events, origin_fd_and_events)`.
    pub(crate) fn interest(&self) -> (i16, Option<(&TcpStream, i16)>) {
        use crate::poller::{POLLIN, POLLOUT};
        let origin = match &self.state {
            State::Connecting { origin }
            | State::SendUpstream { origin }
            | State::ReadHead { origin }
            | State::Splice { origin, .. } => Some(origin),
            _ => None,
        };
        match self.blocked {
            Blocked::ClientRead => (POLLIN, None),
            Blocked::ClientWrite => (POLLOUT, None),
            Blocked::OriginRead => (0, origin.map(|o| (o, POLLIN))),
            Blocked::OriginWrite => (0, origin.map(|o| (o, POLLOUT))),
            Blocked::Timer(_) => (0, None),
        }
    }

    fn touch(&mut self, now: Instant, idle_timeout: Duration) {
        self.deadline = now + idle_timeout;
    }

    /// Drives the state machine until it parks or closes.
    pub(crate) fn step(&mut self, ctx: &StepCtx<'_>, idle_timeout: Duration) -> Step {
        loop {
            if ctx.now >= self.deadline {
                Lifecycle::bump(&ctx.lifecycle.idle_timeouts);
                return self.close(ctx, CloseKind::Error);
            }
            match std::mem::replace(&mut self.state, State::ReadRequest) {
                State::ReadRequest => match self.on_read_request(ctx, idle_timeout) {
                    Some(step) => return step,
                    None => continue,
                },
                State::Latency { until, req } => {
                    if ctx.now >= until {
                        self.start_forward(ctx, req);
                        continue;
                    }
                    self.state = State::Latency { until, req };
                    self.blocked = Blocked::Timer(until);
                    return Step::Blocked;
                }
                State::Connecting { origin } => {
                    // Only a poll wakeup can resolve the handshake; the
                    // worker re-steps us once the socket turns writable
                    // (or errors), and `connect_errno` disambiguates.
                    match connect_errno(&origin) {
                        Ok(()) if writable_now(&origin) => {
                            let _ = origin.set_nodelay(true);
                            self.state = State::SendUpstream { origin };
                            continue;
                        }
                        Ok(()) => {
                            self.state = State::Connecting { origin };
                            self.blocked = Blocked::OriginWrite;
                            return Step::Blocked;
                        }
                        Err(_) => {
                            self.respond(ctx, StatusCode::BAD_GATEWAY);
                            continue;
                        }
                    }
                }
                State::SendUpstream { mut origin } => match self.pump_upstream(&mut origin) {
                    Pump::Done => {
                        Lifecycle::bump(&ctx.lifecycle.upstream_sends);
                        self.touch(ctx.now, idle_timeout);
                        self.headbuf.clear();
                        self.state = State::ReadHead { origin };
                        continue;
                    }
                    Pump::WouldBlock => {
                        self.state = State::SendUpstream { origin };
                        self.blocked = Blocked::OriginWrite;
                        return Step::Blocked;
                    }
                    Pump::Err => {
                        self.respond(ctx, StatusCode::BAD_GATEWAY);
                        continue;
                    }
                },
                State::ReadHead { mut origin } => match self.on_read_head(ctx, &mut origin) {
                    HeadStep::Parked(blocked) => {
                        self.state = State::ReadHead { origin };
                        self.blocked = blocked;
                        return Step::Blocked;
                    }
                    HeadStep::Splice { remaining } => {
                        self.touch(ctx.now, idle_timeout);
                        Lifecycle::bump(&ctx.lifecycle.splices_started);
                        self.state = State::Splice { origin, remaining };
                        continue;
                    }
                    HeadStep::Respond => continue,
                },
                State::Splice {
                    mut origin,
                    remaining,
                } => {
                    match self.on_splice(ctx, &mut origin, remaining, idle_timeout) {
                        SpliceStep::Parked(blocked, remaining) => {
                            self.state = State::Splice { origin, remaining };
                            self.blocked = blocked;
                            return Step::Blocked;
                        }
                        SpliceStep::Complete => {
                            // `origin` drops here; the state machine
                            // loops for keep-alive (or drains out).
                            self.after_request(ctx);
                            if ctx.draining {
                                return self.close(ctx, CloseKind::Clean);
                            }
                            self.touch(ctx.now, idle_timeout);
                            continue;
                        }
                        SpliceStep::Dead => {
                            self.count_error(ctx);
                            return self.close(ctx, CloseKind::Error);
                        }
                    }
                }
                State::Respond => match self.flush_out(ctx) {
                    Flush::Drained => {
                        if ctx.draining {
                            return self.close(ctx, CloseKind::Clean);
                        }
                        self.touch(ctx.now, idle_timeout);
                        self.state = State::ReadRequest;
                        continue;
                    }
                    Flush::Parked(blocked) => {
                        self.state = State::Respond;
                        self.blocked = blocked;
                        return Step::Blocked;
                    }
                    Flush::Dead => return self.close(ctx, CloseKind::Error),
                },
            }
        }
    }

    /// ReadRequest: parse buffered bytes first (pipelining), then pull
    /// more from the socket. `None` = keep stepping.
    fn on_read_request(&mut self, ctx: &StepCtx<'_>, idle_timeout: Duration) -> Option<Step> {
        loop {
            match parse_request(&self.inbuf[..]) {
                Err(_) => {
                    // Unparseable request line: drop the connection,
                    // matching the threaded daemon.
                    return Some(self.close(ctx, CloseKind::Error));
                }
                Ok(Parsed::Complete { value, consumed }) => {
                    let _ = self.inbuf.split_to(consumed);
                    Lifecycle::bump(&ctx.lifecycle.requests_read);
                    self.touch(ctx.now, idle_timeout);
                    if ctx.latency.is_zero() {
                        self.start_forward(ctx, value);
                    } else {
                        Lifecycle::bump(&ctx.lifecycle.latency_waits);
                        self.state = State::Latency {
                            until: ctx.now + ctx.latency,
                            req: value,
                        };
                    }
                    return None;
                }
                Ok(Parsed::Partial) => {
                    self.outbuf.resize(8192, 0);
                    match self.client.read(&mut self.outbuf[..]) {
                        Ok(0) => {
                            let kind = if self.inbuf.is_empty() {
                                CloseKind::Clean
                            } else {
                                CloseKind::Error
                            };
                            self.outbuf.clear();
                            return Some(self.close(ctx, kind));
                        }
                        Ok(n) => {
                            let (filled, _) = self.outbuf.split_at(n);
                            self.inbuf.extend_from_slice(filled);
                            self.outbuf.clear();
                            self.touch(ctx.now, idle_timeout);
                            continue;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            self.outbuf.clear();
                            self.state = State::ReadRequest;
                            self.blocked = Blocked::ClientRead;
                            return Some(Step::Blocked);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                            self.outbuf.clear();
                            continue;
                        }
                        Err(_) => {
                            self.outbuf.clear();
                            return Some(self.close(ctx, CloseKind::Error));
                        }
                    }
                }
            }
        }
    }

    /// Plans the forward, starts the origin dial, and encodes the
    /// upstream request. Any planning/dial failure turns into a
    /// synthesized response on the keep-alive path.
    fn start_forward(&mut self, ctx: &StepCtx<'_>, req: Request) {
        self.fwd_start = ctx.now;
        self.body_len = 0;
        let plan = match ir_http::plan_forward(&req) {
            Ok(p) => p,
            Err(_) => {
                // The client sent something we refuse to proxy.
                self.respond(ctx, StatusCode::BAD_REQUEST);
                return;
            }
        };
        let addr = match resolve(&plan.host, plan.port) {
            Some(a) => a,
            None => {
                self.respond(ctx, StatusCode::BAD_GATEWAY);
                return;
            }
        };
        Lifecycle::bump(&ctx.lifecycle.origin_dials);
        self.upbuf.clear();
        encode_request(&plan.request, &mut self.upbuf);
        self.up_off = 0;
        match connect_nonblocking(&addr) {
            Ok(Dial::Ready(origin)) => {
                let _ = origin.set_nodelay(true);
                self.state = State::SendUpstream { origin };
            }
            Ok(Dial::Pending(origin)) => {
                self.state = State::Connecting { origin };
            }
            Err(_) => self.respond(ctx, StatusCode::BAD_GATEWAY),
        }
    }

    fn pump_upstream(&mut self, origin: &mut TcpStream) -> Pump {
        while self.up_off < self.upbuf.len() {
            match origin.write(&self.upbuf[self.up_off..]) {
                Ok(0) => return Pump::Err,
                Ok(n) => self.up_off += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Pump::WouldBlock,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Pump::Err,
            }
        }
        Pump::Done
    }

    fn on_read_head(&mut self, ctx: &StepCtx<'_>, origin: &mut TcpStream) -> HeadStep {
        loop {
            match parse_response(&self.headbuf[..]) {
                Err(_) => {
                    // Matches the threaded path: origin protocol errors
                    // map through `RelayError::Http` to 400.
                    self.respond(ctx, StatusCode::BAD_REQUEST);
                    return HeadStep::Respond;
                }
                Ok(Parsed::Complete {
                    value: head,
                    consumed,
                }) => {
                    let _ = self.headbuf.split_to(consumed);
                    let body_len = match head.headers.content_length() {
                        Err(_) => {
                            self.respond(ctx, StatusCode::BAD_REQUEST);
                            return HeadStep::Respond;
                        }
                        Ok(None) => {
                            // "origin sent no Content-Length"
                            self.respond(ctx, StatusCode::BAD_GATEWAY);
                            return HeadStep::Respond;
                        }
                        Ok(Some(len)) => len,
                    };
                    Lifecycle::bump(&ctx.lifecycle.heads_read);
                    let mut relayed = head;
                    relayed.headers.append("Via", "1.1 ir-relay");
                    let mut enc = BytesMut::new();
                    encode_response(&relayed, &mut enc);
                    self.outbuf.clear();
                    self.out_off = 0;
                    self.outbuf.extend_from_slice(&enc);
                    // Body bytes already read with the head.
                    let take = (self.headbuf.len() as u64).min(body_len) as usize;
                    self.outbuf.extend_from_slice(&self.headbuf[..take]);
                    self.headbuf.clear();
                    self.body_len = body_len;
                    return HeadStep::Splice {
                        remaining: body_len - take as u64,
                    };
                }
                Ok(Parsed::Partial) => {
                    self.outbuf.resize(8192, 0);
                    match origin.read(&mut self.outbuf[..]) {
                        Ok(0) => {
                            self.outbuf.clear();
                            // UnexpectedEof before the head completes is
                            // an HttpError in the threaded path → 400.
                            self.respond(ctx, StatusCode::BAD_REQUEST);
                            return HeadStep::Respond;
                        }
                        Ok(n) => {
                            let (filled, _) = self.outbuf.split_at(n);
                            self.headbuf.extend_from_slice(filled);
                            self.outbuf.clear();
                            continue;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            self.outbuf.clear();
                            return HeadStep::Parked(Blocked::OriginRead);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                            self.outbuf.clear();
                            continue;
                        }
                        Err(_) => {
                            self.outbuf.clear();
                            self.respond(ctx, StatusCode::BAD_GATEWAY);
                            return HeadStep::Respond;
                        }
                    }
                }
            }
        }
    }

    fn on_splice(
        &mut self,
        ctx: &StepCtx<'_>,
        origin: &mut TcpStream,
        mut remaining: u64,
        idle_timeout: Duration,
    ) -> SpliceStep {
        loop {
            match self.flush_out(ctx) {
                Flush::Drained => {}
                Flush::Parked(blocked) => return SpliceStep::Parked(blocked, remaining),
                Flush::Dead => return SpliceStep::Dead,
            }
            if remaining == 0 {
                return SpliceStep::Complete;
            }
            let want = (remaining as usize).min(SPLICE_CHUNK);
            self.outbuf.resize(want, 0);
            self.out_off = 0;
            match origin.read(&mut self.outbuf[..want]) {
                Ok(0) => {
                    // Origin died mid-body: the head already went out,
                    // so the client sees a short read, never a hang.
                    self.outbuf.clear();
                    return SpliceStep::Dead;
                }
                Ok(n) => {
                    self.outbuf.truncate(n);
                    remaining -= n as u64;
                    self.touch(ctx.now, idle_timeout);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.outbuf.clear();
                    return SpliceStep::Parked(Blocked::OriginRead, remaining);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.outbuf.clear();
                    continue;
                }
                Err(_) => {
                    self.outbuf.clear();
                    return SpliceStep::Dead;
                }
            }
        }
    }

    /// Drains `outbuf[out_off..]` to the client through the shaper.
    fn flush_out(&mut self, ctx: &StepCtx<'_>) -> Flush {
        while self.out_off < self.outbuf.len() {
            let want = (self.outbuf.len() - self.out_off).min(SPLICE_CHUNK);
            let grant = match &mut self.bucket {
                None => want,
                Some(bucket) => {
                    if self.budget == 0 {
                        self.budget = bucket.take_at(want, ctx.now);
                    }
                    if self.budget == 0 {
                        let eta = bucket.eta_at(want, ctx.now);
                        return Flush::Parked(Blocked::Timer(ctx.now + eta));
                    }
                    self.budget.min(want)
                }
            };
            match self
                .client
                .write(&self.outbuf[self.out_off..self.out_off + grant])
            {
                Ok(0) => return Flush::Dead,
                Ok(n) => {
                    self.out_off += n;
                    if self.bucket.is_some() {
                        self.budget -= n;
                    }
                    if !self.first_byte_sent {
                        self.first_byte_sent = true;
                        self.record_first_byte(ctx);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Flush::Parked(Blocked::ClientWrite);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Flush::Dead,
            }
        }
        self.outbuf.clear();
        self.out_off = 0;
        Flush::Drained
    }

    /// Queues a synthesized `status` response (Content-Length 0) and
    /// enters the Respond state.
    fn respond(&mut self, ctx: &StepCtx<'_>, status: StatusCode) {
        self.count_error(ctx);
        Lifecycle::bump(&ctx.lifecycle.error_responses);
        let resp = Response::new(status).with_header("Content-Length", "0");
        let mut enc = BytesMut::new();
        encode_response(&resp, &mut enc);
        self.outbuf.clear();
        self.out_off = 0;
        self.outbuf.extend_from_slice(&enc);
        self.state = State::Respond;
    }

    fn count_error(&self, ctx: &StepCtx<'_>) {
        if let Some(tel) = ctx.telemetry {
            tel.metrics.counter("relay_errors", vec![]).inc();
        }
    }

    /// Telemetry for one relayed request, mirroring the threaded path.
    fn after_request(&mut self, ctx: &StepCtx<'_>) {
        Lifecycle::bump(&ctx.lifecycle.requests_completed);
        if let Some(tel) = ctx.telemetry {
            let splice_start = self.fwd_start.duration_since(ctx.epoch);
            let dur = ctx.now.duration_since(self.fwd_start);
            tel.metrics.counter("relay_requests", vec![]).inc();
            tel.metrics
                .counter("relay_bytes", vec![])
                .add(self.body_len);
            tel.metrics
                .histogram("relay_splice_us", vec![])
                .record(dur.as_micros() as u64);
            tel.tracer.record(
                Event::span(
                    EventKind::RelaySplice,
                    splice_start.as_micros() as u64,
                    dur.as_micros() as u64,
                    self.id,
                )
                .with_u64("bytes", self.body_len),
            );
        }
    }

    fn record_first_byte(&self, ctx: &StepCtx<'_>) {
        if let Some(tel) = ctx.telemetry {
            let wait = ctx.now.duration_since(self.accept_at);
            tel.metrics
                .histogram("relay_accept_first_byte_us", vec![])
                .record(wait.as_micros() as u64);
            tel.tracer.record(Event::span(
                EventKind::RelayFirstByte,
                self.accept_at.duration_since(ctx.epoch).as_micros() as u64,
                wait.as_micros() as u64,
                self.id,
            ));
        }
    }

    fn close(&mut self, ctx: &StepCtx<'_>, kind: CloseKind) -> Step {
        match kind {
            CloseKind::Clean => Lifecycle::bump(&ctx.lifecycle.closed_clean),
            CloseKind::Error => Lifecycle::bump(&ctx.lifecycle.closed_error),
        }
        Step::Closed
    }
}

enum Pump {
    Done,
    WouldBlock,
    Err,
}

enum HeadStep {
    Parked(Blocked),
    Splice { remaining: u64 },
    Respond,
}

enum SpliceStep {
    Parked(Blocked, u64),
    Complete,
    Dead,
}

enum Flush {
    Drained,
    Parked(Blocked),
    Dead,
}

/// A zero-byte write probe: distinguishes "connect still in flight"
/// from "connected" once `SO_ERROR` reads clean.
fn writable_now(origin: &TcpStream) -> bool {
    use crate::poller::{poll_fds, PollFd, POLLOUT};
    use std::os::unix::io::AsRawFd;
    let mut fds = [PollFd::new(origin.as_raw_fd(), POLLOUT)];
    matches!(poll_fds(&mut fds, Duration::ZERO), Ok(n) if n > 0)
}

/// Resolves `host:port`, preferring literal IPs (no blocking DNS on
/// the reactor threads for the loopback/IP deployments this models).
fn resolve(host: &str, port: u16) -> Option<SocketAddr> {
    if let Ok(ip) = host.parse::<IpAddr>() {
        return Some(SocketAddr::new(ip, port));
    }
    (host, port).to_socket_addrs().ok()?.next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_pool_recycles_up_to_its_cap() {
        let pool = BufferPool::default();
        assert_eq!(pool.pooled(), 0);

        // A returned full-size buffer is kept and handed back out.
        let buf = pool.take();
        assert!(buf.capacity() >= SPLICE_CHUNK);
        pool.give(buf);
        assert_eq!(pool.pooled(), 1);
        let again = pool.take();
        assert_eq!(pool.pooled(), 0);
        assert!(again.is_empty(), "recycled buffers come back cleared");

        // Undersized buffers are dropped, not pooled.
        pool.give(Vec::with_capacity(8));
        assert_eq!(pool.pooled(), 0);

        // The pool never holds more than MAX_POOLED chunks.
        for _ in 0..BufferPool::MAX_POOLED + 16 {
            pool.give(Vec::with_capacity(SPLICE_CHUNK));
        }
        assert_eq!(pool.pooled(), BufferPool::MAX_POOLED);
    }
}
