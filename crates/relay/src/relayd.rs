//! The relay daemon — the paper's "forwarding service on each
//! intermediate node".
//!
//! Accepts absolute-form HTTP requests, rewrites them to origin-form
//! (preserving `Range`), dials the origin, and streams the response
//! back to the client through this relay's rate shaper (the shaper is
//! the client→relay overlay-link bottleneck of the model).

use crate::error::RelayError;
use crate::origin::read_request;
use crate::shaper::{RateSchedule, TokenBucket};
use crate::stream::ThrottledStream;
use bytes::BytesMut;
use ir_http::{encode_request, encode_response, plan_forward, Parsed, Response, StatusCode};
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Relay configuration.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Shaping of the relay→client leg (the overlay link bottleneck).
    /// `None` = unshaped.
    pub rate: Option<RateSchedule>,
    /// Added delay before forwarding each request — emulates the
    /// client→relay leg's latency.
    pub latency: Duration,
    /// Observability handle shared with the rest of the process; `None`
    /// (the default) costs nothing. Events carry wall-clock
    /// microseconds since the daemon's accept-loop epoch.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl RelayConfig {
    /// Unshaped relay.
    pub fn new() -> Self {
        RelayConfig {
            rate: None,
            latency: Duration::ZERO,
            telemetry: None,
        }
    }

    /// Shaped relay.
    pub fn shaped(schedule: RateSchedule) -> Self {
        RelayConfig {
            rate: Some(schedule),
            latency: Duration::ZERO,
            telemetry: None,
        }
    }

    /// Adds per-request latency (overlay-leg propagation emulation).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Attaches a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig::new()
    }
}

/// A running relay daemon on 127.0.0.1.
pub struct Relay {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Relay {
    /// Binds an ephemeral loopback port and starts forwarding.
    pub fn start(cfg: RelayConfig) -> std::io::Result<Relay> {
        Self::start_on("127.0.0.1:0", cfg)
    }

    /// Binds an explicit address (e.g. `0.0.0.0:3128`) and starts
    /// forwarding — the deployable entry point of the forwarding
    /// service.
    pub fn start_on(addr: &str, cfg: RelayConfig) -> std::io::Result<Relay> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let flag = shutdown.clone();
        let registry = conns.clone();
        let handle = std::thread::spawn(move || accept_loop(listener, cfg, flag, registry));
        Ok(Relay {
            addr,
            shutdown,
            conns,
            handle: Some(handle),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simulates a relay-node crash: stops accepting and severs every
    /// active connection mid-splice. Serve threads observe their socket
    /// erroring out and unwind cleanly — the daemon never panics, and
    /// clients see a connection error rather than a hang. Idempotent;
    /// the relay cannot be restarted on the same `Relay` value (start a
    /// new one on the same address to model a restart).
    pub fn kill(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for c in self.conns.lock().expect("relay registry").drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Relay {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    cfg: RelayConfig,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Mutex<Vec<TcpStream>>>,
) {
    // One path timeline shared by all connections (see origin).
    let epoch = std::time::Instant::now();
    let mut conns = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_id = conns;
                conns += 1;
                if let Some(tel) = &cfg.telemetry {
                    tel.metrics.counter("relay_connections", vec![]).inc();
                    tel.tracer.record(Event::new(
                        EventKind::RelayAccept,
                        epoch.elapsed().as_micros() as u64,
                        conn_id,
                    ));
                }
                // Register a handle so `kill` can sever the connection
                // even while a serve thread is blocked mid-splice.
                if let Ok(clone) = stream.try_clone() {
                    registry.lock().expect("relay registry").push(clone);
                }
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let _ = serve_client(stream, &cfg, epoch, conn_id);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    if let Some(tel) = &cfg.telemetry {
        tel.tracer.record(
            Event::new(
                EventKind::RelayShutdown,
                epoch.elapsed().as_micros() as u64,
                0,
            )
            .with_u64("connections", conns),
        );
    }
}

fn serve_client(
    mut client: TcpStream,
    cfg: &RelayConfig,
    epoch: std::time::Instant,
    conn_id: u64,
) -> Result<(), RelayError> {
    client.set_read_timeout(Some(Duration::from_secs(30)))?;
    client.set_nodelay(true)?;
    let mut inbuf = BytesMut::new();
    loop {
        let Some(req) = read_request(&mut client, &mut inbuf)? else {
            return Ok(());
        };
        if !cfg.latency.is_zero() {
            std::thread::sleep(cfg.latency);
        }
        // Shaped writer towards the client.
        let mut down: Box<dyn Write> = match &cfg.rate {
            Some(schedule) => Box::new(ThrottledStream::new(
                client.try_clone()?,
                TokenBucket::with_epoch(schedule.clone(), 16_384.0, epoch),
            )),
            None => Box::new(client.try_clone()?),
        };
        let splice_start = epoch.elapsed();
        match forward_one(&req, &mut *down) {
            Ok(bytes) => {
                if let Some(tel) = &cfg.telemetry {
                    let dur = epoch.elapsed() - splice_start;
                    tel.metrics.counter("relay_requests", vec![]).inc();
                    tel.metrics.counter("relay_bytes", vec![]).add(bytes);
                    tel.metrics
                        .histogram("relay_splice_us", vec![])
                        .record(dur.as_micros() as u64);
                    tel.tracer.record(
                        Event::span(
                            EventKind::RelaySplice,
                            splice_start.as_micros() as u64,
                            dur.as_micros() as u64,
                            conn_id,
                        )
                        .with_u64("bytes", bytes),
                    );
                }
            }
            Err(RelayError::Http(_)) => {
                // The client sent something we refuse to proxy.
                if let Some(tel) = &cfg.telemetry {
                    tel.metrics.counter("relay_errors", vec![]).inc();
                }
                let resp =
                    Response::new(StatusCode::BAD_REQUEST).with_header("Content-Length", "0");
                let mut buf = BytesMut::new();
                encode_response(&resp, &mut buf);
                down.write_all(&buf)?;
            }
            Err(_) => {
                if let Some(tel) = &cfg.telemetry {
                    tel.metrics.counter("relay_errors", vec![]).inc();
                }
                let resp =
                    Response::new(StatusCode::BAD_GATEWAY).with_header("Content-Length", "0");
                let mut buf = BytesMut::new();
                encode_response(&resp, &mut buf);
                down.write_all(&buf)?;
            }
        }
        down.flush()?;
    }
}

/// Forwards a single request to its origin and streams the response
/// into `down`. Returns the number of body bytes spliced through.
fn forward_one(req: &ir_http::Request, down: &mut dyn Write) -> Result<u64, RelayError> {
    let plan = plan_forward(req)?;
    let mut origin = TcpStream::connect((plan.host.as_str(), plan.port))?;
    origin.set_read_timeout(Some(Duration::from_secs(30)))?;
    origin.set_nodelay(true)?;

    let mut buf = BytesMut::new();
    encode_request(&plan.request, &mut buf);
    origin.write_all(&buf)?;

    // Read the response head.
    let mut headbuf = BytesMut::new();
    let head = loop {
        match ir_http::parse_response(&headbuf[..])? {
            Parsed::Complete { value, consumed } => {
                let _ = headbuf.split_to(consumed);
                break value;
            }
            Parsed::Partial => {
                let mut chunk = [0u8; 8192];
                let n = origin.read(&mut chunk)?;
                if n == 0 {
                    return Err(RelayError::Http(ir_http::HttpError::UnexpectedEof));
                }
                headbuf.extend_from_slice(&chunk[..n]);
            }
        }
    };
    let body_len = head
        .headers
        .content_length()
        .map_err(RelayError::Http)?
        .ok_or_else(|| RelayError::BadResponse("origin sent no Content-Length".into()))?;

    // Relay the head (annotated) and the body.
    let mut relayed = head.clone();
    relayed.headers.append("Via", "1.1 ir-relay");
    let mut out = BytesMut::new();
    encode_response(&relayed, &mut out);
    down.write_all(&out)?;

    // Body bytes already read with the head.
    let mut sent = 0u64;
    let prefix = headbuf.to_vec();
    if !prefix.is_empty() {
        let take = prefix.len().min(body_len as usize);
        down.write_all(&prefix[..take])?;
        sent += take as u64;
    }
    let mut chunk = vec![0u8; 16 * 1024];
    while sent < body_len {
        let want = ((body_len - sent) as usize).min(chunk.len());
        let n = origin.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(RelayError::Http(ir_http::HttpError::UnexpectedEof));
        }
        down.write_all(&chunk[..n])?;
        sent += n as u64;
    }
    Ok(sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{body_byte, OriginConfig, OriginServer};
    use ir_http::{via_proxy, ByteRange};

    fn fetch_via(
        relay: SocketAddr,
        origin: SocketAddr,
        range: Option<ByteRange>,
    ) -> (Response, Vec<u8>) {
        let mut stream = TcpStream::connect(relay).unwrap();
        let mut req = via_proxy(&origin.ip().to_string(), origin.port(), "/f");
        if let Some(r) = range {
            req = req.with_header("Range", r.to_string());
        }
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        read_response(&mut stream)
    }

    fn read_response(stream: &mut TcpStream) -> (Response, Vec<u8>) {
        let mut buf = BytesMut::new();
        let head = loop {
            match ir_http::parse_response(&buf[..]).unwrap() {
                Parsed::Complete { value, consumed } => {
                    let _ = buf.split_to(consumed);
                    break value;
                }
                Parsed::Partial => {
                    let mut chunk = [0u8; 8192];
                    let n = stream.read(&mut chunk).unwrap();
                    assert!(n > 0);
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        };
        let len = head.headers.content_length().unwrap().unwrap_or(0) as usize;
        let mut body = buf.to_vec();
        while body.len() < len {
            let mut chunk = [0u8; 8192];
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0);
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(len);
        (head, body)
    }

    #[test]
    fn relays_full_response_with_via() {
        let origin = OriginServer::start(OriginConfig::new(20_000)).unwrap();
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let (head, body) = fetch_via(relay.addr(), origin.addr(), None);
        assert_eq!(head.status, StatusCode::OK);
        assert!(head.headers.get("Via").unwrap().contains("ir-relay"));
        assert_eq!(body.len(), 20_000);
        assert!(body
            .iter()
            .enumerate()
            .all(|(i, &b)| b == body_byte(i as u64)));
    }

    #[test]
    fn relays_range_requests() {
        let origin = OriginServer::start(OriginConfig::new(100_000)).unwrap();
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let (head, body) = fetch_via(relay.addr(), origin.addr(), Some(ByteRange::first(4096)));
        assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(body.len(), 4096);
        assert_eq!(
            head.headers.get("Content-Range").unwrap(),
            "bytes 0-4095/100000"
        );
    }

    #[test]
    fn shaped_relay_is_slower() {
        let origin = OriginServer::start(OriginConfig::new(80_000)).unwrap();
        let fast = Relay::start(RelayConfig::new()).unwrap();
        let slow = Relay::start(RelayConfig::shaped(RateSchedule::constant(150_000.0))).unwrap();

        let t0 = std::time::Instant::now();
        let (_, b1) = fetch_via(fast.addr(), origin.addr(), None);
        let fast_dt = t0.elapsed();
        let t1 = std::time::Instant::now();
        let (_, b2) = fetch_via(slow.addr(), origin.addr(), None);
        let slow_dt = t1.elapsed();
        assert_eq!(b1.len(), 80_000);
        assert_eq!(b2, b1);
        // 80 KB minus burst at 150 KB/s ≈ 0.43 s; fast path ~instant.
        assert!(
            slow_dt > fast_dt * 3,
            "slow {slow_dt:?} vs fast {fast_dt:?}"
        );
    }

    #[test]
    fn origin_form_request_is_rejected() {
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        let req = ir_http::Request::get("/no-absolute-uri").with_header("Host", "x");
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        let (head, _) = read_response(&mut stream);
        assert_eq!(head.status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn unreachable_origin_is_bad_gateway() {
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        // Port 1 on localhost: refused.
        let req = via_proxy("127.0.0.1", 1, "/f");
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        let (head, _) = read_response(&mut stream);
        assert_eq!(head.status, StatusCode::BAD_GATEWAY);
    }

    #[test]
    fn latency_handicaps_a_relay_in_a_race() {
        use crate::client::{probe_race, ChosenPath, ClientConfig};
        let origin = OriginServer::start(OriginConfig::new(200_000)).unwrap();
        // Same rate, but relay 0 pays 300 ms before forwarding.
        let laggy = Relay::start(
            RelayConfig::shaped(RateSchedule::constant(400_000.0))
                .with_latency(Duration::from_millis(300)),
        )
        .unwrap();
        let prompt = Relay::start(RelayConfig::shaped(RateSchedule::constant(400_000.0))).unwrap();
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 40_000,
            total_bytes: 200_000,
            timeout: Duration::from_secs(20),
        };
        // Direct path deliberately unreachable-slow by racing relays only
        // against a dead-slow origin? Simpler: give direct a very laggy
        // origin so the relays decide the race.
        let slow_direct = OriginServer::start(
            OriginConfig::new(200_000).with_latency(Duration::from_millis(800)),
        )
        .unwrap();
        let win = probe_race(
            slow_direct.addr(),
            origin.addr(),
            &[laggy.addr(), prompt.addr()],
            &cfg,
        )
        .unwrap();
        assert_eq!(win.choice, ChosenPath::Relay(1), "lag should lose the race");
    }

    #[test]
    fn telemetry_observes_accept_splice_and_shutdown() {
        let tel = Arc::new(Telemetry::new());
        let origin = OriginServer::start(OriginConfig::new(5_000)).unwrap();
        {
            let relay = Relay::start(RelayConfig::new().with_telemetry(tel.clone())).unwrap();
            let (head, body) = fetch_via(relay.addr(), origin.addr(), None);
            assert_eq!(head.status, StatusCode::OK);
            assert_eq!(body.len(), 5_000);
        } // Drop → shutdown → accept loop exits and records the event.

        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("relay_connections", &vec![]), Some(1));
        assert_eq!(snap.counter("relay_requests", &vec![]), Some(1));
        assert_eq!(snap.counter("relay_bytes", &vec![]), Some(5_000));
        let kinds: Vec<EventKind> = tel.tracer.snapshot().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::RelayAccept));
        assert!(kinds.contains(&EventKind::RelaySplice));
        assert!(kinds.contains(&EventKind::RelayShutdown));
        // The splice is a span on the daemon's wall clock.
        let splice = tel
            .tracer
            .snapshot()
            .into_iter()
            .find(|e| e.kind == EventKind::RelaySplice)
            .unwrap();
        assert!(splice.dur_us.is_some());
    }

    #[test]
    fn kill_severs_active_connection_and_stops_accepting() {
        let origin = OriginServer::start(OriginConfig::new(400_000)).unwrap();
        let mut relay =
            Relay::start(RelayConfig::shaped(RateSchedule::constant(100_000.0))).unwrap();
        let addr = relay.addr();
        let o = origin.addr();
        // A slow fetch that will still be splicing when the kill lands.
        let t = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = via_proxy(&o.ip().to_string(), o.port(), "/f");
            let mut buf = BytesMut::new();
            encode_request(&req, &mut buf);
            stream.write_all(&buf).unwrap();
            // Drain until the severed socket reports EOF or an error —
            // the client must not hang.
            let mut total = 0usize;
            let mut chunk = [0u8; 8192];
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n,
                }
            }
            total
        });
        std::thread::sleep(Duration::from_millis(400));
        relay.kill();
        relay.kill(); // idempotent
        let got = t.join().expect("client thread must not panic");
        assert!(got < 400_000, "transfer should be cut short, got {got}");
        // A crashed relay refuses new connections.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }

    #[test]
    fn keep_alive_through_relay() {
        let origin = OriginServer::start(OriginConfig::new(1_000)).unwrap();
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        for k in 0..3 {
            let req = via_proxy(&origin.addr().ip().to_string(), origin.addr().port(), "/f")
                .with_header("Range", format!("bytes={}-{}", k * 10, k * 10 + 9));
            let mut buf = BytesMut::new();
            encode_request(&req, &mut buf);
            stream.write_all(&buf).unwrap();
            let (head, body) = read_response(&mut stream);
            assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
            assert_eq!(body[0], body_byte(k * 10));
        }
    }
}
