//! The relay daemon — the paper's "forwarding service on each
//! intermediate node".
//!
//! Accepts absolute-form HTTP requests, rewrites them to origin-form
//! (preserving `Range`), dials the origin, and streams the response
//! back to the client through this relay's rate shaper (the shaper is
//! the client→relay overlay-link bottleneck of the model).
//!
//! Two serving modes share one acceptor (DESIGN.md §15):
//!
//! * [`RelayMode::Event`] (the default) — a small sharded worker pool
//!   drives non-blocking sockets through a `poll(2)` reactor
//!   ([`crate::poller`]). Each connection is a `crate::conn::Conn`
//!   state machine; splice buffers come from a shared pool; thousands
//!   of concurrent transfers cost a handful of threads.
//! * [`RelayMode::Threaded`] — the original thread-per-connection
//!   path, kept as the baseline the BENCH_PR9 gate compares against.
//!
//! Both modes honour accept-side backpressure ([`RelayConfig::
//! with_max_connections`]), `kill()` crash semantics (sever every
//! splice, refuse new connections — PR 2), and graceful
//! [`Relay::drain`].

use crate::conn::{BufferPool, Conn, Lifecycle, LifecycleSnapshot, Step, StepCtx};
use crate::error::RelayError;
use crate::origin::read_request;
use crate::poller::{poll_fds, PollFd};
use crate::shaper::{RateSchedule, TokenBucket};
use crate::stream::{FirstByteStamp, ThrottledStream, SPLICE_CHUNK};
use bytes::BytesMut;
use ir_http::{encode_request, encode_response, plan_forward, Parsed, Response, StatusCode};
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the daemon serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayMode {
    /// Poll-reactor worker pool over non-blocking sockets.
    Event {
        /// Worker (shard) count; each worker owns its connections.
        workers: usize,
    },
    /// One blocking serve thread per connection (the pre-reactor
    /// baseline).
    Threaded,
}

impl Default for RelayMode {
    fn default() -> Self {
        RelayMode::Event { workers: 4 }
    }
}

/// What the acceptor does with a connection beyond the limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Answer `503 Service Unavailable` (best effort) and close.
    Refuse,
    /// Park the socket in an accept-side queue until a slot frees;
    /// queue overflow falls back to refusing.
    Queue,
}

/// Relay configuration.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Shaping of the relay→client leg (the overlay link bottleneck).
    /// `None` = unshaped.
    pub rate: Option<RateSchedule>,
    /// Added delay before forwarding each request — emulates the
    /// client→relay leg's latency.
    pub latency: Duration,
    /// Observability handle shared with the rest of the process; `None`
    /// (the default) costs nothing. Events carry wall-clock
    /// microseconds since the daemon's accept-loop epoch.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Serving mode.
    pub mode: RelayMode,
    /// Concurrent-connection ceiling; `None` = unlimited.
    pub max_connections: Option<usize>,
    /// Policy for accepts beyond `max_connections`.
    pub backpressure: Backpressure,
    /// Progress deadline: a connection making no forward progress for
    /// this long is closed (half-open peers, stalled readers).
    pub idle_timeout: Duration,
}

impl RelayConfig {
    /// Unshaped relay.
    pub fn new() -> Self {
        RelayConfig {
            rate: None,
            latency: Duration::ZERO,
            telemetry: None,
            mode: RelayMode::default(),
            max_connections: None,
            backpressure: Backpressure::Refuse,
            idle_timeout: Duration::from_secs(30),
        }
    }

    /// Shaped relay.
    pub fn shaped(schedule: RateSchedule) -> Self {
        RelayConfig {
            rate: Some(schedule),
            ..RelayConfig::new()
        }
    }

    /// Adds per-request latency (overlay-leg propagation emulation).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Attaches a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Selects the serving mode.
    pub fn with_mode(mut self, mode: RelayMode) -> Self {
        self.mode = mode;
        self
    }

    /// Caps concurrent connections and sets the over-limit policy.
    pub fn with_max_connections(mut self, max: usize, policy: Backpressure) -> Self {
        self.max_connections = Some(max);
        self.backpressure = policy;
        self
    }

    /// Overrides the progress deadline.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig::new()
    }
}

/// Outcome of a graceful [`Relay::drain`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Active-connection samples taken while draining (~2 ms cadence,
    /// starting with the count at drain begin).
    pub samples: Vec<u64>,
    /// True when the active count never increased across samples.
    pub monotone: bool,
    /// True when every connection finished before the deadline.
    pub completed: bool,
    /// Connections forcibly severed at the deadline.
    pub forced: u64,
}

/// A running relay daemon on 127.0.0.1.
pub struct Relay {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    wakes: Vec<Arc<WorkerLink>>,
}

/// State shared by the acceptor, the workers, and the owning `Relay`.
struct Shared {
    cfg: RelayConfig,
    /// Client-socket clones keyed by connection id, so `kill` can
    /// sever splices that are mid-flight on another thread.
    registry: Mutex<BTreeMap<u64, TcpStream>>,
    /// Live connection count (backpressure admission + `relay_active`).
    active: AtomicU64,
    lifecycle: Lifecycle,
    pool: BufferPool,
}

impl Shared {
    fn conn_closed(&self, id: u64) {
        self.registry.lock().expect("relay registry").remove(&id);
        self.active.fetch_sub(1, Ordering::SeqCst);
        if let Some(tel) = &self.cfg.telemetry {
            tel.metrics
                .gauge("relay_active", vec![])
                .set(self.active.load(Ordering::SeqCst) as f64);
        }
    }
}

impl Relay {
    /// Binds an ephemeral loopback port and starts forwarding.
    pub fn start(cfg: RelayConfig) -> std::io::Result<Relay> {
        Self::start_on("127.0.0.1:0", cfg)
    }

    /// Binds an explicit address (e.g. `0.0.0.0:3128`) and starts
    /// forwarding — the deployable entry point of the forwarding
    /// service.
    pub fn start_on(addr: &str, cfg: RelayConfig) -> std::io::Result<Relay> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            cfg,
            registry: Mutex::new(BTreeMap::new()),
            active: AtomicU64::new(0),
            lifecycle: Lifecycle::default(),
            pool: BufferPool::default(),
        });
        let mut handles = Vec::new();
        let mut wakes = Vec::new();
        let epoch = Instant::now();

        let dispatch = match shared.cfg.mode {
            RelayMode::Threaded => Dispatch::Threaded,
            RelayMode::Event { workers } => {
                let n = workers.max(1);
                let mut links = Vec::with_capacity(n);
                for _ in 0..n {
                    let (tx, rx) = UnixStream::pair()?;
                    tx.set_nonblocking(true)?;
                    rx.set_nonblocking(true)?;
                    let link = Arc::new(WorkerLink {
                        queue: Mutex::new(VecDeque::new()),
                        wake: Mutex::new(tx),
                    });
                    let worker = Worker {
                        link: link.clone(),
                        wake_rx: rx,
                        shared: shared.clone(),
                        shutdown: shutdown.clone(),
                        draining: draining.clone(),
                        epoch,
                    };
                    handles.push(std::thread::spawn(move || worker.run()));
                    links.push(link);
                }
                wakes = links.clone();
                Dispatch::Event { links, next: 0 }
            }
        };

        let accept_shared = shared.clone();
        let accept_shutdown = shutdown.clone();
        let accept_draining = draining.clone();
        handles.push(std::thread::spawn(move || {
            accept_loop(
                listener,
                accept_shared,
                accept_shutdown,
                accept_draining,
                epoch,
                dispatch,
            )
        }));

        Ok(Relay {
            addr,
            shutdown,
            draining,
            shared,
            handles,
            wakes,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connection count.
    pub fn active_connections(&self) -> u64 {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// True when the kill-registry holds no connection handles —
    /// nothing leaked past a drain or kill.
    pub fn registry_is_empty(&self) -> bool {
        self.shared
            .registry
            .lock()
            .expect("relay registry")
            .is_empty()
    }

    /// Snapshot of the connection-lifecycle transition counters.
    pub fn lifecycle(&self) -> LifecycleSnapshot {
        self.shared.lifecycle.snapshot()
    }

    fn wake_workers(&self) {
        for link in &self.wakes {
            link.wake();
        }
    }

    /// Simulates a relay-node crash: stops accepting and severs every
    /// active connection mid-splice. Workers observe their sockets
    /// erroring out and unwind cleanly — the daemon never panics, and
    /// clients see a connection error rather than a hang. Idempotent;
    /// the relay cannot be restarted on the same `Relay` value (start a
    /// new one on the same address to model a restart).
    pub fn kill(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for (_, c) in self.shared.registry.lock().expect("relay registry").iter() {
            let _ = c.shutdown(Shutdown::Both);
        }
        self.wake_workers();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Workers reaped their connections on the way out; clear any
        // stragglers (threaded mode severs but lets serve threads die
        // on their own).
        self.shared.registry.lock().expect("relay registry").clear();
    }

    /// Gracefully drains: stops accepting, closes idle connections
    /// immediately, lets in-flight requests finish (no keep-alive),
    /// and severs whatever remains at `timeout`. Samples the active
    /// count on the way down so tests can assert monotone draining.
    pub fn drain(&mut self, timeout: Duration) -> DrainReport {
        let t0 = Instant::now();
        self.draining.store(true, Ordering::SeqCst);
        self.wake_workers();
        if let Some(tel) = &self.shared.cfg.telemetry {
            tel.tracer.record(
                Event::new(EventKind::RelayDrain, 0, 0)
                    .with_u64("active", self.shared.active.load(Ordering::SeqCst)),
            );
        }
        let mut samples = vec![self.shared.active.load(Ordering::SeqCst)];
        while t0.elapsed() < timeout {
            let n = self.shared.active.load(Ordering::SeqCst);
            samples.push(n);
            if n == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let forced = self.shared.active.load(Ordering::SeqCst);
        let completed = forced == 0;
        // Deadline: hard-sever the stragglers, then stop the daemon.
        self.kill();
        let monotone = samples.windows(2).all(|w| w[1] <= w[0]);
        DrainReport {
            samples,
            monotone,
            completed,
            forced,
        }
    }
}

impl Drop for Relay {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Acceptor → worker handoff.
struct Intake {
    stream: TcpStream,
    conn_id: u64,
    accept_at: Instant,
}

struct WorkerLink {
    queue: Mutex<VecDeque<Intake>>,
    wake: Mutex<UnixStream>,
}

impl WorkerLink {
    fn wake(&self) {
        // A full pipe means a wakeup is already pending.
        let _ = self.wake.lock().expect("wake pipe").write(&[1]);
    }
}

enum Dispatch {
    Threaded,
    Event {
        links: Vec<Arc<WorkerLink>>,
        next: usize,
    },
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    epoch: Instant,
    mut dispatch: Dispatch,
) {
    let mut conns = 0u64;
    let mut parked: VecDeque<Intake> = VecDeque::new();
    while !shutdown.load(Ordering::SeqCst) && !draining.load(Ordering::SeqCst) {
        // Admit parked connections as slots free up.
        while let Some(intake) = parked.pop_front() {
            if at_capacity(&shared) {
                parked.push_front(intake);
                break;
            }
            admit(&shared, epoch, intake, &mut dispatch, &shutdown, &draining);
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_id = conns;
                conns += 1;
                let intake = Intake {
                    stream,
                    conn_id,
                    accept_at: Instant::now(),
                };
                if at_capacity(&shared) {
                    match shared.cfg.backpressure {
                        Backpressure::Queue
                            if parked.len() < shared.cfg.max_connections.unwrap_or(0) =>
                        {
                            if let Some(tel) = &shared.cfg.telemetry {
                                tel.metrics
                                    .counter("relay_backpressure_queued", vec![])
                                    .inc();
                            }
                            parked.push_back(intake);
                        }
                        _ => refuse(&shared, intake.stream),
                    }
                    continue;
                }
                admit(&shared, epoch, intake, &mut dispatch, &shutdown, &draining);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(if parked.is_empty() { 5 } else { 1 }));
            }
            Err(_) => break,
        }
    }
    // Sockets parked in the backpressure queue get a clean refusal
    // rather than a silent drop.
    for intake in parked {
        refuse(&shared, intake.stream);
    }
    if let Some(tel) = &shared.cfg.telemetry {
        tel.tracer.record(
            Event::new(
                EventKind::RelayShutdown,
                epoch.elapsed().as_micros() as u64,
                0,
            )
            .with_u64("connections", conns),
        );
    }
}

fn at_capacity(shared: &Shared) -> bool {
    match shared.cfg.max_connections {
        Some(max) => shared.active.load(Ordering::SeqCst) as usize >= max,
        None => false,
    }
}

/// Best-effort `503` + close for a connection over the limit.
fn refuse(shared: &Shared, mut stream: TcpStream) {
    if let Some(tel) = &shared.cfg.telemetry {
        tel.metrics
            .counter("relay_backpressure_drops", vec![])
            .inc();
    }
    let resp = Response::new(StatusCode::SERVICE_UNAVAILABLE).with_header("Content-Length", "0");
    let mut buf = BytesMut::new();
    encode_response(&resp, &mut buf);
    let _ = stream.set_nodelay(true);
    let _ = stream.write_all(&buf);
    let _ = stream.shutdown(Shutdown::Both);
}

fn admit(
    shared: &Arc<Shared>,
    epoch: Instant,
    intake: Intake,
    dispatch: &mut Dispatch,
    shutdown: &Arc<AtomicBool>,
    draining: &Arc<AtomicBool>,
) {
    shared.active.fetch_add(1, Ordering::SeqCst);
    Lifecycle::bump(&shared.lifecycle.accepted);
    if let Some(tel) = &shared.cfg.telemetry {
        tel.metrics.counter("relay_connections", vec![]).inc();
        tel.metrics.counter("relay_accepts", vec![]).inc();
        tel.metrics
            .gauge("relay_active", vec![])
            .set(shared.active.load(Ordering::SeqCst) as f64);
        tel.tracer.record(Event::new(
            EventKind::RelayAccept,
            epoch.elapsed().as_micros() as u64,
            intake.conn_id,
        ));
    }
    // Register a handle so `kill` can sever the connection even while
    // it is mid-splice on another thread.
    if let Ok(clone) = intake.stream.try_clone() {
        shared
            .registry
            .lock()
            .expect("relay registry")
            .insert(intake.conn_id, clone);
    }
    match dispatch {
        Dispatch::Event { links, next } => {
            let link = &links[*next % links.len()];
            *next = next.wrapping_add(1);
            link.queue.lock().expect("worker queue").push_back(intake);
            link.wake();
        }
        Dispatch::Threaded => {
            let shared = shared.clone();
            let shutdown = shutdown.clone();
            let draining = draining.clone();
            std::thread::spawn(move || {
                let id = intake.conn_id;
                let _ = serve_client(intake, &shared, epoch, &shutdown, &draining);
                shared.conn_closed(id);
            });
        }
    }
}

// ---------------------------------------------------------------------
// Event mode: the poll reactor.
// ---------------------------------------------------------------------

/// One reactor shard: owns its connections outright; the acceptor only
/// touches the intake queue.
struct Worker {
    link: Arc<WorkerLink>,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    epoch: Instant,
}

/// Poll-timeout ceiling: bounds how stale the shutdown/drain flags can
/// get on a fully idle shard.
const REACTOR_TICK: Duration = Duration::from_millis(10);

impl Worker {
    fn run(mut self) {
        let mut conns: Vec<Conn> = Vec::new();
        let mut fds: Vec<PollFd> = Vec::new();
        loop {
            // Drain the wake pipe (its only content is "look again").
            let mut sink = [0u8; 64];
            while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}

            let shutdown = self.shutdown.load(Ordering::SeqCst);
            let draining = self.draining.load(Ordering::SeqCst);

            // Intake: adopt newly accepted connections.
            loop {
                let intake = self.link.queue.lock().expect("worker queue").pop_front();
                let Some(intake) = intake else { break };
                if shutdown {
                    self.shared.conn_closed(intake.conn_id);
                    continue;
                }
                let bucket = self
                    .shared
                    .cfg
                    .rate
                    .as_ref()
                    .map(|s| TokenBucket::with_epoch(s.clone(), 16_384.0, self.epoch));
                match Conn::new(
                    intake.conn_id,
                    intake.stream,
                    intake.accept_at,
                    bucket,
                    self.shared.cfg.idle_timeout,
                    self.shared.pool.take(),
                ) {
                    Ok(conn) => conns.push(conn),
                    Err(_) => self.shared.conn_closed(intake.conn_id),
                }
            }

            if shutdown {
                for conn in conns.drain(..) {
                    Lifecycle::bump(&self.shared.lifecycle.killed);
                    self.reap(conn);
                }
                return;
            }
            if draining {
                // Idle keep-alive connections have nothing in flight:
                // close them now so the drain is prompt.
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].is_idle() {
                        Lifecycle::bump(&self.shared.lifecycle.drained_idle);
                        Lifecycle::bump(&self.shared.lifecycle.closed_clean);
                        let conn = conns.swap_remove(i);
                        self.reap(conn);
                    } else {
                        i += 1;
                    }
                }
                if conns.is_empty() {
                    return;
                }
            }

            // Step everything that polled ready or timed out.
            let now = Instant::now();
            let mut i = 0;
            while i < conns.len() {
                let due = conns[i].next_timer() <= now;
                if due || draining {
                    if let Step::Closed = self.step_conn(&mut conns[i], now, draining) {
                        let conn = conns.swap_remove(i);
                        self.reap(conn);
                        continue;
                    }
                }
                i += 1;
            }

            // Build the poll set: wake pipe first, then two slots per
            // connection (client, origin) so revents map back by index.
            fds.clear();
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), crate::poller::POLLIN));
            let mut next_timer: Option<Instant> = None;
            for conn in &conns {
                let (client_ev, origin) = conn.interest();
                fds.push(if client_ev != 0 {
                    PollFd::new(conn.client.as_raw_fd(), client_ev)
                } else {
                    PollFd::ignored()
                });
                fds.push(match origin {
                    Some((stream, ev)) => PollFd::new(stream.as_raw_fd(), ev),
                    None => PollFd::ignored(),
                });
                let t = conn.next_timer();
                next_timer = Some(next_timer.map_or(t, |cur: Instant| cur.min(t)));
            }
            let now = Instant::now();
            let timeout = match next_timer {
                Some(t) => t.saturating_duration_since(now).min(REACTOR_TICK),
                None => REACTOR_TICK,
            };
            // Round up so sub-millisecond shaper timers sleep ~1 ms
            // instead of spinning on a zero-timeout poll.
            let timeout = Duration::from_millis(timeout.as_micros().div_ceil(1000) as u64);
            if poll_fds(&mut fds, timeout).is_err() {
                // poll only fails on EINVAL/ENOMEM-class conditions;
                // back off rather than spin.
                std::thread::sleep(Duration::from_millis(1));
            }

            let now = Instant::now();
            let mut i = 0;
            while i < conns.len() {
                let ready = fds[1 + 2 * i].is_ready() || fds[2 + 2 * i].is_ready();
                let due = conns[i].next_timer() <= now;
                if ready || due {
                    if let Step::Closed = self.step_conn(&mut conns[i], now, false) {
                        // Keep fd indices aligned with `conns`.
                        let last = conns.len() - 1;
                        fds.swap(1 + 2 * i, 1 + 2 * last);
                        fds.swap(2 + 2 * i, 2 + 2 * last);
                        let conn = conns.swap_remove(i);
                        self.reap(conn);
                        continue;
                    }
                }
                i += 1;
            }
        }
    }

    fn step_conn(&self, conn: &mut Conn, now: Instant, draining: bool) -> Step {
        let ctx = StepCtx {
            telemetry: &self.shared.cfg.telemetry,
            latency: self.shared.cfg.latency,
            epoch: self.epoch,
            lifecycle: &self.shared.lifecycle,
            draining: draining || self.draining.load(Ordering::Relaxed),
            now,
        };
        conn.step(&ctx, self.shared.cfg.idle_timeout)
    }

    fn reap(&self, conn: Conn) {
        let id = conn.id;
        self.shared.pool.give(conn.into_buffer());
        self.shared.conn_closed(id);
    }
}

// ---------------------------------------------------------------------
// Threaded mode: the baseline serve path.
// ---------------------------------------------------------------------

fn serve_client(
    intake: Intake,
    shared: &Shared,
    epoch: Instant,
    shutdown: &AtomicBool,
    draining: &AtomicBool,
) -> Result<(), RelayError> {
    let cfg = &shared.cfg;
    let mut client = intake.stream;
    let conn_id = intake.conn_id;
    client.set_read_timeout(Some(cfg.idle_timeout))?;
    client.set_nodelay(true)?;
    let mut inbuf = BytesMut::new();
    let mut first_byte_done = false;
    loop {
        let Some(req) = read_request(&mut client, &mut inbuf)? else {
            Lifecycle::bump(&shared.lifecycle.closed_clean);
            return Ok(());
        };
        Lifecycle::bump(&shared.lifecycle.requests_read);
        if !cfg.latency.is_zero() {
            Lifecycle::bump(&shared.lifecycle.latency_waits);
            std::thread::sleep(cfg.latency);
        }
        // Stamp the first client-bound byte of this connection
        // (accept-to-first-byte), then shape towards the client.
        let stamp = FirstByteStamp::new(client.try_clone()?, {
            let telemetry = cfg.telemetry.clone();
            let accept_at = intake.accept_at;
            let already = first_byte_done;
            move || {
                if already {
                    return;
                }
                if let Some(tel) = &telemetry {
                    let wait = accept_at.elapsed();
                    tel.metrics
                        .histogram("relay_accept_first_byte_us", vec![])
                        .record(wait.as_micros() as u64);
                    tel.tracer.record(Event::span(
                        EventKind::RelayFirstByte,
                        accept_at.duration_since(epoch).as_micros() as u64,
                        wait.as_micros() as u64,
                        conn_id,
                    ));
                }
            }
        });
        let mut down: Box<dyn Write> = match &cfg.rate {
            Some(schedule) => Box::new(ThrottledStream::new(
                stamp,
                TokenBucket::with_epoch(schedule.clone(), 16_384.0, epoch),
            )),
            None => Box::new(stamp),
        };
        let splice_start = epoch.elapsed();
        match forward_one(&req, &mut *down, &shared.lifecycle) {
            Ok(bytes) => {
                Lifecycle::bump(&shared.lifecycle.requests_completed);
                if let Some(tel) = &cfg.telemetry {
                    let dur = epoch.elapsed() - splice_start;
                    tel.metrics.counter("relay_requests", vec![]).inc();
                    tel.metrics.counter("relay_bytes", vec![]).add(bytes);
                    tel.metrics
                        .histogram("relay_splice_us", vec![])
                        .record(dur.as_micros() as u64);
                    tel.tracer.record(
                        Event::span(
                            EventKind::RelaySplice,
                            splice_start.as_micros() as u64,
                            dur.as_micros() as u64,
                            conn_id,
                        )
                        .with_u64("bytes", bytes),
                    );
                }
            }
            Err(RelayError::Http(_)) => {
                // The client sent something we refuse to proxy.
                Lifecycle::bump(&shared.lifecycle.error_responses);
                if let Some(tel) = &cfg.telemetry {
                    tel.metrics.counter("relay_errors", vec![]).inc();
                }
                let resp =
                    Response::new(StatusCode::BAD_REQUEST).with_header("Content-Length", "0");
                let mut buf = BytesMut::new();
                encode_response(&resp, &mut buf);
                down.write_all(&buf)?;
            }
            Err(_) => {
                Lifecycle::bump(&shared.lifecycle.error_responses);
                if let Some(tel) = &cfg.telemetry {
                    tel.metrics.counter("relay_errors", vec![]).inc();
                }
                let resp =
                    Response::new(StatusCode::BAD_GATEWAY).with_header("Content-Length", "0");
                let mut buf = BytesMut::new();
                encode_response(&resp, &mut buf);
                down.write_all(&buf)?;
            }
        }
        down.flush()?;
        first_byte_done = true;
        if shutdown.load(Ordering::SeqCst) {
            Lifecycle::bump(&shared.lifecycle.killed);
            return Ok(());
        }
        if draining.load(Ordering::SeqCst) {
            // Finish the in-flight request, then bow out instead of
            // holding keep-alive open.
            Lifecycle::bump(&shared.lifecycle.closed_clean);
            return Ok(());
        }
    }
}

/// Forwards a single request to its origin and streams the response
/// into `down`. Returns the number of body bytes spliced through.
fn forward_one(
    req: &ir_http::Request,
    down: &mut dyn Write,
    lifecycle: &Lifecycle,
) -> Result<u64, RelayError> {
    let plan = plan_forward(req)?;
    Lifecycle::bump(&lifecycle.origin_dials);
    let mut origin = TcpStream::connect((plan.host.as_str(), plan.port))?;
    origin.set_read_timeout(Some(Duration::from_secs(30)))?;
    origin.set_nodelay(true)?;

    let mut buf = BytesMut::new();
    encode_request(&plan.request, &mut buf);
    origin.write_all(&buf)?;
    Lifecycle::bump(&lifecycle.upstream_sends);

    // Read the response head.
    let mut headbuf = BytesMut::new();
    let head = loop {
        match ir_http::parse_response(&headbuf[..])? {
            Parsed::Complete { value, consumed } => {
                let _ = headbuf.split_to(consumed);
                break value;
            }
            Parsed::Partial => {
                let mut chunk = [0u8; 8192];
                let n = origin.read(&mut chunk)?;
                if n == 0 {
                    return Err(RelayError::Http(ir_http::HttpError::UnexpectedEof));
                }
                headbuf.extend_from_slice(&chunk[..n]);
            }
        }
    };
    let body_len = head
        .headers
        .content_length()
        .map_err(RelayError::Http)?
        .ok_or_else(|| RelayError::BadResponse("origin sent no Content-Length".into()))?;
    Lifecycle::bump(&lifecycle.heads_read);

    // Relay the head (annotated) and the body.
    let mut relayed = head.clone();
    relayed.headers.append("Via", "1.1 ir-relay");
    let mut out = BytesMut::new();
    encode_response(&relayed, &mut out);
    down.write_all(&out)?;
    Lifecycle::bump(&lifecycle.splices_started);

    // Body bytes already read with the head.
    let mut sent = 0u64;
    let prefix = headbuf.to_vec();
    if !prefix.is_empty() {
        let take = prefix.len().min(body_len as usize);
        down.write_all(&prefix[..take])?;
        sent += take as u64;
    }
    let mut chunk = vec![0u8; SPLICE_CHUNK];
    while sent < body_len {
        let want = ((body_len - sent) as usize).min(chunk.len());
        let n = origin.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(RelayError::Http(ir_http::HttpError::UnexpectedEof));
        }
        down.write_all(&chunk[..n])?;
        sent += n as u64;
    }
    Ok(sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{body_byte, OriginConfig, OriginServer};
    use ir_http::{via_proxy, ByteRange};

    fn fetch_via(
        relay: SocketAddr,
        origin: SocketAddr,
        range: Option<ByteRange>,
    ) -> (Response, Vec<u8>) {
        let mut stream = TcpStream::connect(relay).unwrap();
        let mut req = via_proxy(&origin.ip().to_string(), origin.port(), "/f");
        if let Some(r) = range {
            req = req.with_header("Range", r.to_string());
        }
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        read_response(&mut stream)
    }

    fn read_response(stream: &mut TcpStream) -> (Response, Vec<u8>) {
        let mut buf = BytesMut::new();
        let head = loop {
            match ir_http::parse_response(&buf[..]).unwrap() {
                Parsed::Complete { value, consumed } => {
                    let _ = buf.split_to(consumed);
                    break value;
                }
                Parsed::Partial => {
                    let mut chunk = [0u8; 8192];
                    let n = stream.read(&mut chunk).unwrap();
                    assert!(n > 0);
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        };
        let len = head.headers.content_length().unwrap().unwrap_or(0) as usize;
        let mut body = buf.to_vec();
        while body.len() < len {
            let mut chunk = [0u8; 8192];
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0);
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(len);
        (head, body)
    }

    #[test]
    fn relays_full_response_with_via() {
        let origin = OriginServer::start(OriginConfig::new(20_000)).unwrap();
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let (head, body) = fetch_via(relay.addr(), origin.addr(), None);
        assert_eq!(head.status, StatusCode::OK);
        assert!(head.headers.get("Via").unwrap().contains("ir-relay"));
        assert_eq!(body.len(), 20_000);
        assert!(body
            .iter()
            .enumerate()
            .all(|(i, &b)| b == body_byte(i as u64)));
    }

    #[test]
    fn relays_range_requests() {
        let origin = OriginServer::start(OriginConfig::new(100_000)).unwrap();
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let (head, body) = fetch_via(relay.addr(), origin.addr(), Some(ByteRange::first(4096)));
        assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(body.len(), 4096);
        assert_eq!(
            head.headers.get("Content-Range").unwrap(),
            "bytes 0-4095/100000"
        );
    }

    #[test]
    fn shaped_relay_is_slower() {
        let origin = OriginServer::start(OriginConfig::new(80_000)).unwrap();
        let fast = Relay::start(RelayConfig::new()).unwrap();
        let slow = Relay::start(RelayConfig::shaped(RateSchedule::constant(150_000.0))).unwrap();

        let t0 = std::time::Instant::now();
        let (_, b1) = fetch_via(fast.addr(), origin.addr(), None);
        let fast_dt = t0.elapsed();
        let t1 = std::time::Instant::now();
        let (_, b2) = fetch_via(slow.addr(), origin.addr(), None);
        let slow_dt = t1.elapsed();
        assert_eq!(b1.len(), 80_000);
        assert_eq!(b2, b1);
        // 80 KB minus burst at 150 KB/s ≈ 0.43 s; fast path ~instant.
        assert!(
            slow_dt > fast_dt * 3,
            "slow {slow_dt:?} vs fast {fast_dt:?}"
        );
    }

    #[test]
    fn origin_form_request_is_rejected() {
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        let req = ir_http::Request::get("/no-absolute-uri").with_header("Host", "x");
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        let (head, _) = read_response(&mut stream);
        assert_eq!(head.status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn unreachable_origin_is_bad_gateway() {
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        // Port 1 on localhost: refused.
        let req = via_proxy("127.0.0.1", 1, "/f");
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        let (head, _) = read_response(&mut stream);
        assert_eq!(head.status, StatusCode::BAD_GATEWAY);
    }

    #[test]
    fn latency_handicaps_a_relay_in_a_race() {
        use crate::client::{probe_race, ChosenPath, ClientConfig};
        let origin = OriginServer::start(OriginConfig::new(200_000)).unwrap();
        // Same rate, but relay 0 pays 300 ms before forwarding.
        let laggy = Relay::start(
            RelayConfig::shaped(RateSchedule::constant(400_000.0))
                .with_latency(Duration::from_millis(300)),
        )
        .unwrap();
        let prompt = Relay::start(RelayConfig::shaped(RateSchedule::constant(400_000.0))).unwrap();
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 40_000,
            total_bytes: 200_000,
            timeout: Duration::from_secs(20),
        };
        // Direct path deliberately unreachable-slow by racing relays only
        // against a dead-slow origin? Simpler: give direct a very laggy
        // origin so the relays decide the race.
        let slow_direct = OriginServer::start(
            OriginConfig::new(200_000).with_latency(Duration::from_millis(800)),
        )
        .unwrap();
        let win = probe_race(
            slow_direct.addr(),
            origin.addr(),
            &[laggy.addr(), prompt.addr()],
            &cfg,
        )
        .unwrap();
        assert_eq!(win.choice, ChosenPath::Relay(1), "lag should lose the race");
    }

    #[test]
    fn telemetry_observes_accept_splice_and_shutdown() {
        let tel = Arc::new(Telemetry::new());
        let origin = OriginServer::start(OriginConfig::new(5_000)).unwrap();
        {
            let relay = Relay::start(RelayConfig::new().with_telemetry(tel.clone())).unwrap();
            let (head, body) = fetch_via(relay.addr(), origin.addr(), None);
            assert_eq!(head.status, StatusCode::OK);
            assert_eq!(body.len(), 5_000);
        } // Drop → shutdown → accept loop exits and records the event.

        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("relay_connections", &vec![]), Some(1));
        assert_eq!(snap.counter("relay_requests", &vec![]), Some(1));
        assert_eq!(snap.counter("relay_bytes", &vec![]), Some(5_000));
        let kinds: Vec<EventKind> = tel.tracer.snapshot().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::RelayAccept));
        assert!(kinds.contains(&EventKind::RelaySplice));
        assert!(kinds.contains(&EventKind::RelayShutdown));
        // The splice is a span on the daemon's wall clock.
        let splice = tel
            .tracer
            .snapshot()
            .into_iter()
            .find(|e| e.kind == EventKind::RelaySplice)
            .unwrap();
        assert!(splice.dur_us.is_some());
    }

    #[test]
    fn kill_severs_active_connection_and_stops_accepting() {
        let origin = OriginServer::start(OriginConfig::new(400_000)).unwrap();
        let mut relay =
            Relay::start(RelayConfig::shaped(RateSchedule::constant(100_000.0))).unwrap();
        let addr = relay.addr();
        let o = origin.addr();
        // A slow fetch that will still be splicing when the kill lands.
        let t = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = via_proxy(&o.ip().to_string(), o.port(), "/f");
            let mut buf = BytesMut::new();
            encode_request(&req, &mut buf);
            stream.write_all(&buf).unwrap();
            // Drain until the severed socket reports EOF or an error —
            // the client must not hang.
            let mut total = 0usize;
            let mut chunk = [0u8; 8192];
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n,
                }
            }
            total
        });
        std::thread::sleep(Duration::from_millis(400));
        relay.kill();
        relay.kill(); // idempotent
        let got = t.join().expect("client thread must not panic");
        assert!(got < 400_000, "transfer should be cut short, got {got}");
        // A crashed relay refuses new connections.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }

    #[test]
    fn keep_alive_through_relay() {
        let origin = OriginServer::start(OriginConfig::new(1_000)).unwrap();
        let relay = Relay::start(RelayConfig::new()).unwrap();
        let mut stream = TcpStream::connect(relay.addr()).unwrap();
        for k in 0..3 {
            let req = via_proxy(&origin.addr().ip().to_string(), origin.addr().port(), "/f")
                .with_header("Range", format!("bytes={}-{}", k * 10, k * 10 + 9));
            let mut buf = BytesMut::new();
            encode_request(&req, &mut buf);
            stream.write_all(&buf).unwrap();
            let (head, body) = read_response(&mut stream);
            assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
            assert_eq!(body[0], body_byte(k * 10));
        }
    }

    #[test]
    fn threaded_mode_still_serves() {
        let origin = OriginServer::start(OriginConfig::new(20_000)).unwrap();
        let relay = Relay::start(RelayConfig::new().with_mode(RelayMode::Threaded)).unwrap();
        let (head, body) = fetch_via(relay.addr(), origin.addr(), None);
        assert_eq!(head.status, StatusCode::OK);
        assert!(head.headers.get("Via").unwrap().contains("ir-relay"));
        assert_eq!(body.len(), 20_000);
    }

    #[test]
    fn drain_finishes_inflight_and_reports_monotone() {
        let origin = OriginServer::start(OriginConfig::new(120_000)).unwrap();
        let mut relay =
            Relay::start(RelayConfig::shaped(RateSchedule::constant(400_000.0))).unwrap();
        let addr = relay.addr();
        let o = origin.addr();
        let t = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = via_proxy(&o.ip().to_string(), o.port(), "/f");
            let mut buf = BytesMut::new();
            encode_request(&req, &mut buf);
            stream.write_all(&buf).unwrap();
            read_response(&mut stream)
        });
        // Let the splice start, then drain.
        std::thread::sleep(Duration::from_millis(60));
        let report = relay.drain(Duration::from_secs(10));
        let (head, body) = t.join().expect("client must finish its transfer");
        assert_eq!(head.status, StatusCode::OK);
        assert_eq!(body.len(), 120_000);
        assert!(report.monotone, "samples rose: {:?}", report.samples);
        assert!(report.completed && report.forced == 0);
        assert!(relay.registry_is_empty(), "drain leaked registry entries");
    }
}
