//! `ir-relay` — the indirect-routing system over real sockets.
//!
//! Everything `ir-core` does against the fluid simulator, this crate
//! does against genuine TCP connections on loopback: a threaded origin
//! server speaking the `ir-http` range subset, relay daemons
//! implementing the paper's forwarding service, and a racing client
//! that probes direct + indirect paths concurrently and fetches the
//! remainder on the winner's warm connection.
//!
//! Wide-area heterogeneity is substituted by token-bucket rate shapers
//! (DESIGN.md §2): each leg of each path carries a [`shaper::
//! RateSchedule`], so a localhost socket behaves like a 1.2 Mbps
//! transatlantic path — including *time-varying* behaviour, which lets
//! integration tests reproduce the paper's mis-prediction penalties
//! with real bytes.
//!
//! * [`shaper`] — token buckets over piecewise rate schedules.
//! * [`stream`] — write-paced stream wrapper.
//! * [`origin`] — origin server (Range, keep-alive, deterministic
//!   bodies).
//! * [`poller`] — `poll(2)`/non-blocking-connect FFI shim.
//! * [`conn`] — per-connection state machine for the reactor.
//! * [`relayd`] — the relay daemon (absolute-form in, origin-form out);
//!   event-driven reactor by default, thread-per-connection baseline.
//! * [`client`] — probe race + warm remainder download.
//! * [`wire`] — small blocking HTTP client primitives.
//! * [`harness`] — a one-process mini-PlanetLab for tests and examples.

pub mod client;
pub mod conn;
pub mod error;
pub mod harness;
pub mod origin;
pub mod poller;
pub mod relayd;
pub mod shaper;
pub mod stream;
pub mod transport;
pub mod wire;

pub use client::{
    download, download_failover, download_striped, download_with_subset, probe_race, ChosenPath,
    ClientConfig, DownloadOutcome, ProbeWin, StripedOutcome,
};
pub use conn::{Lifecycle, LifecycleSnapshot};
pub use error::RelayError;
pub use harness::{HarnessSpec, MiniPlanetLab, StudyRound};
pub use origin::{body_byte, fill_body, OriginConfig, OriginServer};
pub use relayd::{Backpressure, DrainReport, Relay, RelayConfig, RelayMode};
pub use shaper::{RateSchedule, TokenBucket};
pub use stream::{FirstByteStamp, ThrottledStream, SPLICE_CHUNK};
pub use transport::{RealTransport, RealWorld};
