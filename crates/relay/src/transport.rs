//! [`ir_core::Transport`] over real sockets.
//!
//! The selection framework (`ir_core::run_session`) is written against
//! an abstract transport; this adapter backs it with the loopback
//! deployment — every `begin` is a genuine TCP connection issuing a
//! genuine HTTP range request, `race` blocks on real wall-clock
//! completions, and `begin_warm` reuses the winning probe's keep-alive
//! connection exactly as the paper's client does.
//!
//! One protocol, two transports: the studies run on the fluid
//! simulator; this adapter proves the same orchestration code drives
//! real bytes (see `tests/session_over_sockets.rs`).

use crate::error::RelayError;
use crate::wire::exchange;
use ir_core::{Handle, PathSpec, RaceWin, Timing, Transport};
use ir_http::{via_proxy, ByteRange, Request, StatusCode};
use ir_simnet::time::{SimDuration, SimTime};
use ir_simnet::topology::NodeId;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where each node of the session's world listens.
#[derive(Debug, Clone)]
pub struct RealWorld {
    /// The client node id (the session's `client` argument).
    pub client: NodeId,
    /// The server node id.
    pub server: NodeId,
    /// Origin address over the client's direct path.
    pub direct: SocketAddr,
    /// Origin address relays dial.
    pub origin_for_relays: SocketAddr,
    /// Relay node id → relay address.
    pub relays: HashMap<NodeId, SocketAddr>,
    /// Resource path on the origin.
    pub path: String,
    /// Per-transfer socket timeout.
    pub timeout: Duration,
}

type SlotResult = Result<Timing, String>;

struct Slot {
    /// Completion buffer (thread writes, race/finish reads).
    result: Option<SlotResult>,
    /// A clone of the transfer's socket, for cancellation and warm
    /// reuse.
    conn: Option<TcpStream>,
    /// Cancelled by the session.
    cancelled: bool,
}

struct Shared {
    slots: Mutex<Vec<Slot>>,
    cv: Condvar,
}

/// A [`Transport`] whose transfers are real HTTP range requests over
/// real TCP connections.
pub struct RealTransport {
    world: RealWorld,
    shared: Arc<Shared>,
    epoch: Instant,
    /// Next range offset per path (probe consumed `[0, x)` → remainder
    /// starts at `x`).
    next_offset: HashMap<PathSpec, u64>,
    /// Idle keep-alive connections per path, for `begin_warm`.
    idle: HashMap<PathSpec, TcpStream>,
    /// Which path each handle transferred on (for warm pooling).
    handle_paths: HashMap<Handle, PathSpec>,
}

impl RealTransport {
    /// Creates a transport over a running deployment.
    pub fn new(world: RealWorld) -> Self {
        RealTransport {
            world,
            shared: Arc::new(Shared {
                slots: Mutex::new(Vec::new()),
                cv: Condvar::new(),
            }),
            epoch: Instant::now(),
            next_offset: HashMap::new(),
            idle: HashMap::new(),
            handle_paths: HashMap::new(),
        }
    }

    /// Builds a transport for a [`crate::harness::MiniPlanetLab`]: node
    /// ids 0 and 1 are the client and server; relays get ids 2, 3, ….
    pub fn for_lab(lab: &crate::harness::MiniPlanetLab) -> (Self, NodeId, NodeId, Vec<NodeId>) {
        let client = NodeId(0);
        let server = NodeId(1);
        let relay_ids: Vec<NodeId> = (0..lab.relay_addrs().len())
            .map(|i| NodeId(2 + i as u32))
            .collect();
        let relays = relay_ids
            .iter()
            .zip(lab.relay_addrs())
            .map(|(&id, addr)| (id, addr))
            .collect();
        let transport = RealTransport::new(RealWorld {
            client,
            server,
            direct: lab.direct_addr(),
            origin_for_relays: lab.origin_for_relays(),
            relays,
            path: "/file.bin".into(),
            timeout: Duration::from_secs(60),
        });
        (transport, client, server, relay_ids)
    }

    fn sim_now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn request_for(&self, path: &PathSpec, range: ByteRange) -> (SocketAddr, Request) {
        assert!(
            path.hop_count() <= 1,
            "socket relays splice one hop; unresolvable chain {path} reached request_for"
        );
        match path.via() {
            None => (
                self.world.direct,
                Request::get(self.world.path.clone())
                    .with_header("Host", "origin")
                    .with_header("Range", range.to_string()),
            ),
            Some(via) => {
                let addr = *self
                    .world
                    .relays
                    .get(&via)
                    .unwrap_or_else(|| panic!("unknown relay {via:?}"));
                let o = self.world.origin_for_relays;
                (
                    addr,
                    via_proxy(&o.ip().to_string(), o.port(), &self.world.path)
                        .with_header("Range", range.to_string()),
                )
            }
        }
    }

    /// Launches a transfer thread; `conn` is `Some` for warm reuse.
    fn launch(&mut self, path: &PathSpec, bytes: u64, warm_conn: Option<TcpStream>) -> Handle {
        let start_offset = if warm_conn.is_some() {
            self.next_offset.get(path).copied().unwrap_or(0)
        } else {
            0
        };
        // Track where the next warm request on this path should start.
        self.next_offset.insert(*path, start_offset + bytes);
        let range = if start_offset == 0 {
            ByteRange::first(bytes)
        } else {
            ByteRange::FromTo(start_offset, start_offset + bytes - 1)
        };
        let (addr, request) = self.request_for(path, range);

        let handle = {
            let mut slots = self.shared.slots.lock().expect("poisoned");
            slots.push(Slot {
                result: None,
                conn: None,
                cancelled: false,
            });
            Handle((slots.len() - 1) as u64)
        };

        let shared = self.shared.clone();
        let epoch = self.epoch;
        let timeout = self.world.timeout;
        let idx = handle.0 as usize;
        std::thread::spawn(move || {
            let started = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
            let run = || -> Result<(TcpStream, u64), RelayError> {
                // A cancel that lands before the dial skips the socket
                // work entirely — a relay refusing under backpressure
                // should not also absorb doomed connects.
                if shared.slots.lock().expect("poisoned")[idx].cancelled {
                    return Err(RelayError::Timeout);
                }
                let mut conn = match warm_conn {
                    Some(c) => c,
                    None => {
                        let c = TcpStream::connect_timeout(&addr, timeout)?;
                        c.set_nodelay(true)?;
                        c
                    }
                };
                conn.set_read_timeout(Some(timeout))?;
                // Publish the socket so cancel() can shut it down.
                {
                    let mut slots = shared.slots.lock().expect("poisoned");
                    if slots[idx].cancelled {
                        return Err(RelayError::Timeout);
                    }
                    slots[idx].conn = Some(conn.try_clone()?);
                }
                let (head, body) = exchange(&mut conn, &request)?;
                if head.status != StatusCode::PARTIAL_CONTENT && head.status != StatusCode::OK {
                    return Err(RelayError::BadStatus(head.status.0));
                }
                Ok((conn, body.len() as u64))
            };
            let outcome = run();
            let finished = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
            let mut slots = shared.slots.lock().expect("poisoned");
            let slot = &mut slots[idx];
            match outcome {
                Ok((conn, got)) => {
                    slot.conn = Some(conn);
                    slot.result = Some(Ok(Timing {
                        started,
                        finished,
                        bytes: got,
                    }));
                }
                Err(e) => {
                    slot.conn = None;
                    slot.result = Some(Err(e.to_string()));
                }
            }
            shared.cv.notify_all();
        });
        handle
    }

    fn wait<F: Fn(&[Slot]) -> Option<R>, R>(&self, horizon: SimDuration, pick: F) -> Option<R> {
        let deadline = Instant::now() + Duration::from_secs_f64(horizon.as_secs_f64());
        let mut slots = self.shared.slots.lock().expect("poisoned");
        loop {
            if let Some(r) = pick(&slots) {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(slots, deadline - now)
                .expect("poisoned");
            slots = guard;
        }
    }

    /// Takes the finished connection of `handle` back into the warm
    /// pool for `path` (called internally after completions).
    fn pool_connection(&mut self, handle: Handle, path: &PathSpec) {
        let mut slots = self.shared.slots.lock().expect("poisoned");
        if let Some(conn) = slots[handle.0 as usize].conn.take() {
            self.idle.insert(*path, conn);
        }
    }
}

impl Transport for RealTransport {
    fn now(&self) -> SimTime {
        self.sim_now()
    }

    fn begin(&mut self, path: &PathSpec, bytes: u64) -> Handle {
        let h = self.launch(path, bytes, None);
        // Remember the path for warm pooling at completion.
        self.handle_paths.insert(h, *path);
        h
    }

    fn resolvable(&self, path: &PathSpec) -> bool {
        // A socket relay splices exactly one proxy hop: direct always
        // works, one known relay works, longer chains never do.
        match path.hops() {
            [] => true,
            [via] => self.world.relays.contains_key(via),
            _ => false,
        }
    }

    fn begin_warm(&mut self, path: &PathSpec, bytes: u64) -> Handle {
        let warm = self.idle.remove(path);
        let h = self.launch(path, bytes, warm);
        self.handle_paths.insert(h, *path);
        h
    }

    fn race(&mut self, handles: &[Handle], horizon: SimDuration) -> Option<RaceWin> {
        let wanted: Vec<usize> = handles.iter().map(|h| h.0 as usize).collect();
        let won = self.wait(horizon, |slots| {
            wanted.iter().enumerate().find_map(|(pos, &i)| {
                slots[i]
                    .result
                    .as_ref()
                    .and_then(|r| r.as_ref().ok())
                    .map(|t| (pos, *t))
            })
        })?;
        let (index, timing) = won;
        // Pool the winner's connection for the warm remainder.
        if let Some(path) = self.handle_paths.get(&handles[index]).copied() {
            self.pool_connection(handles[index], &path);
        }
        Some(RaceWin { index, timing })
    }

    fn finish(&mut self, handle: Handle, horizon: SimDuration) -> Option<Timing> {
        let i = handle.0 as usize;
        let timing = self.wait(horizon, |slots| {
            slots[i].result.as_ref().map(|r| r.clone().ok())
        })??;
        if let Some(path) = self.handle_paths.get(&handle).copied() {
            self.pool_connection(handle, &path);
        }
        Some(timing)
    }

    fn cancel(&mut self, handle: Handle) {
        let mut slots = self.shared.slots.lock().expect("poisoned");
        let slot = &mut slots[handle.0 as usize];
        slot.cancelled = true;
        if let Some(conn) = slot.conn.take() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{HarnessSpec, MiniPlanetLab};
    use crate::shaper::RateSchedule;
    use ir_core::{run_session, FirstPortion, SessionConfig, StaticSingle};

    const KB: f64 = 1000.0;

    #[test]
    fn run_session_over_real_sockets_picks_fast_relay() {
        let lab = MiniPlanetLab::start(HarnessSpec {
            content_len: 400_000,
            direct: RateSchedule::constant(150.0 * KB),
            relays: vec![RateSchedule::constant(800.0 * KB)],
        })
        .unwrap();
        let (mut transport, client, server, relays) = RealTransport::for_lab(&lab);
        let mut policy = StaticSingle(relays[0]);
        let mut predictor = FirstPortion;
        let cfg = SessionConfig {
            probe_bytes: 50_000,
            file_bytes: 400_000,
            probe_mode: ir_core::ProbeMode::FirstToFinish,
            control: ir_core::ControlMode::Concurrent,
            horizon: ir_simnet::time::SimDuration::from_secs(60),
            failover: None,
            engine: ir_simnet::sim::EngineMode::Incremental,
            mode: ir_core::SessionMode::Racing,
        };
        let rec = run_session(
            &mut transport,
            &mut policy,
            &mut predictor,
            client,
            server,
            &relays,
            0,
            &cfg,
        );
        assert!(rec.chose_indirect(), "fast relay not chosen: {rec:?}");
        assert!(
            rec.improvement() > 0.5,
            "expected a real improvement, got {:+.1}%",
            rec.improvement_pct()
        );
        assert!(!rec.probe_timeout);
    }

    #[test]
    fn run_session_over_real_sockets_keeps_fast_direct() {
        let lab = MiniPlanetLab::start(HarnessSpec {
            content_len: 300_000,
            direct: RateSchedule::constant(900.0 * KB),
            relays: vec![RateSchedule::constant(100.0 * KB)],
        })
        .unwrap();
        let (mut transport, client, server, relays) = RealTransport::for_lab(&lab);
        let mut policy = StaticSingle(relays[0]);
        let mut predictor = FirstPortion;
        let cfg = SessionConfig {
            probe_bytes: 50_000,
            file_bytes: 300_000,
            probe_mode: ir_core::ProbeMode::FirstToFinish,
            control: ir_core::ControlMode::Concurrent,
            horizon: ir_simnet::time::SimDuration::from_secs(60),
            failover: None,
            engine: ir_simnet::sim::EngineMode::Incremental,
            mode: ir_core::SessionMode::Racing,
        };
        let rec = run_session(
            &mut transport,
            &mut policy,
            &mut predictor,
            client,
            server,
            &relays,
            0,
            &cfg,
        );
        assert!(!rec.chose_indirect(), "slow relay chosen: {rec:?}");
    }
}
