//! Small blocking HTTP client primitives shared by the racing client
//! and tests: send a request, read a head, read a sized body.

use crate::error::RelayError;
use bytes::BytesMut;
use ir_http::{encode_request, parse_response, Parsed, Request, Response};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Sends a request head on `stream`.
pub fn send_request(stream: &mut TcpStream, req: &Request) -> Result<(), RelayError> {
    let mut buf = BytesMut::new();
    encode_request(req, &mut buf);
    stream.write_all(&buf)?;
    Ok(())
}

/// Reads a response head; returns it plus any body bytes that arrived
/// with it.
pub fn read_head(stream: &mut TcpStream) -> Result<(Response, Vec<u8>), RelayError> {
    let mut buf = BytesMut::new();
    loop {
        match parse_response(&buf[..])? {
            Parsed::Complete { value, consumed } => {
                let _ = buf.split_to(consumed);
                return Ok((value, buf.to_vec()));
            }
            Parsed::Partial => {
                let mut chunk = [0u8; 8192];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(RelayError::Http(ir_http::HttpError::UnexpectedEof));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

/// Reads exactly `len` body bytes, `prefix` first.
pub fn read_body(stream: &mut TcpStream, prefix: Vec<u8>, len: u64) -> Result<Vec<u8>, RelayError> {
    let mut body = prefix;
    if body.len() as u64 > len {
        body.truncate(len as usize);
    }
    let mut chunk = vec![0u8; 16 * 1024];
    while (body.len() as u64) < len {
        let want = ((len - body.len() as u64) as usize).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(RelayError::Http(ir_http::HttpError::UnexpectedEof));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(body)
}

/// One full request/response exchange; returns the head and the sized
/// body (by `Content-Length`).
pub fn exchange(stream: &mut TcpStream, req: &Request) -> Result<(Response, Vec<u8>), RelayError> {
    send_request(stream, req)?;
    let (head, prefix) = read_head(stream)?;
    let len = head
        .headers
        .content_length()
        .map_err(RelayError::Http)?
        .ok_or_else(|| RelayError::BadResponse("missing Content-Length".into()))?;
    let body = read_body(stream, prefix, len)?;
    Ok((head, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{body_byte, OriginConfig, OriginServer};
    use ir_http::{ByteRange, StatusCode};

    #[test]
    fn exchange_round_trip() {
        let origin = OriginServer::start(OriginConfig::new(5_000)).unwrap();
        let mut s = TcpStream::connect(origin.addr()).unwrap();
        let req = Request::get("/f")
            .with_header("Host", "o")
            .with_header("Range", ByteRange::first(100).to_string());
        let (head, body) = exchange(&mut s, &req).unwrap();
        assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(body.len(), 100);
        assert!(body
            .iter()
            .enumerate()
            .all(|(i, &b)| b == body_byte(i as u64)));
    }

    #[test]
    fn sequential_exchanges_on_one_connection() {
        let origin = OriginServer::start(OriginConfig::new(5_000)).unwrap();
        let mut s = TcpStream::connect(origin.addr()).unwrap();
        for k in 0..3u64 {
            let req = Request::get("/f")
                .with_header("Host", "o")
                .with_header("Range", format!("bytes={}-{}", k * 7, k * 7 + 6));
            let (_, body) = exchange(&mut s, &req).unwrap();
            assert_eq!(body.len(), 7);
            assert_eq!(body[0], body_byte(k * 7));
        }
    }
}
