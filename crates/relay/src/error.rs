//! Error type for the real-socket overlay.

use ir_http::HttpError;
use std::fmt;

/// Errors from the loopback overlay components.
#[derive(Debug)]
pub enum RelayError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// Protocol error.
    Http(HttpError),
    /// The peer answered with an unexpected status.
    BadStatus(u16),
    /// A required header was missing or malformed.
    BadResponse(String),
    /// An operation exceeded its deadline.
    Timeout,
}

impl fmt::Display for RelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayError::Io(e) => write!(f, "io: {e}"),
            RelayError::Http(e) => write!(f, "http: {e}"),
            RelayError::BadStatus(s) => write!(f, "unexpected status {s}"),
            RelayError::BadResponse(s) => write!(f, "bad response: {s}"),
            RelayError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for RelayError {}

impl From<std::io::Error> for RelayError {
    fn from(e: std::io::Error) -> Self {
        RelayError::Io(e)
    }
}

impl From<HttpError> for RelayError {
    fn from(e: HttpError) -> Self {
        RelayError::Http(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RelayError::Timeout.to_string().contains("timed"));
        assert!(RelayError::BadStatus(500).to_string().contains("500"));
        let io: RelayError = std::io::Error::other("x").into();
        assert!(io.to_string().contains("io"));
        let http: RelayError = HttpError::UnexpectedEof.into();
        assert!(http.to_string().contains("http"));
    }
}
