//! A one-process "mini-PlanetLab" on loopback.
//!
//! Substitutes for the paper's multi-node deployment (DESIGN.md §2):
//! one unshaped origin listener for the relays' back side, one shaped
//! origin listener emulating the client's direct path, and k shaped
//! relays emulating heterogeneous overlay links — all real sockets,
//! real HTTP bytes, real concurrency.

use crate::client::{download, ClientConfig, DownloadOutcome};
use crate::error::RelayError;
use crate::origin::{OriginConfig, OriginServer};
use crate::relayd::{Relay, RelayConfig, RelayMode};
use crate::shaper::RateSchedule;
use std::net::SocketAddr;

/// Topology description for a harness instance.
#[derive(Debug, Clone)]
pub struct HarnessSpec {
    /// Bytes of synthetic content the origin serves.
    pub content_len: u64,
    /// Rate schedule of the client's direct path.
    pub direct: RateSchedule,
    /// Rate schedule of each overlay path (client→relay leg).
    pub relays: Vec<RateSchedule>,
}

/// A running loopback deployment.
pub struct MiniPlanetLab {
    origin_direct: OriginServer,
    origin_fast: OriginServer,
    relays: Vec<Relay>,
    content_len: u64,
}

impl MiniPlanetLab {
    /// Starts every server of the spec (relays in the default
    /// event-driven mode).
    pub fn start(spec: HarnessSpec) -> std::io::Result<MiniPlanetLab> {
        Self::start_in_mode(spec, RelayMode::default())
    }

    /// Starts every server of the spec with an explicit relay serving
    /// mode — the BENCH_PR9 gate runs the same topology through both
    /// the reactor and the thread-per-connection baseline.
    pub fn start_in_mode(spec: HarnessSpec, mode: RelayMode) -> std::io::Result<MiniPlanetLab> {
        let origin_direct =
            OriginServer::start(OriginConfig::new(spec.content_len).shaped(spec.direct))?;
        let origin_fast = OriginServer::start(OriginConfig::new(spec.content_len))?;
        let relays = spec
            .relays
            .into_iter()
            .map(|sched| Relay::start(RelayConfig::shaped(sched).with_mode(mode)))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(MiniPlanetLab {
            origin_direct,
            origin_fast,
            relays,
            content_len: spec.content_len,
        })
    }

    /// The running relay daemons (lifecycle inspection in tests).
    pub fn relays(&self) -> &[Relay] {
        &self.relays
    }

    /// Mutable access to the running relays (drain/kill in tests).
    pub fn relays_mut(&mut self) -> &mut [Relay] {
        &mut self.relays
    }

    /// Address of the origin as seen over the client's direct path.
    pub fn direct_addr(&self) -> SocketAddr {
        self.origin_direct.addr()
    }

    /// Address relays use to reach the origin.
    pub fn origin_for_relays(&self) -> SocketAddr {
        self.origin_fast.addr()
    }

    /// Client-facing relay addresses.
    pub fn relay_addrs(&self) -> Vec<SocketAddr> {
        self.relays.iter().map(Relay::addr).collect()
    }

    /// Runs one §2.1 probed download against this deployment.
    pub fn run_download(&self, probe_bytes: u64) -> Result<DownloadOutcome, RelayError> {
        let cfg = ClientConfig {
            path: "/file.bin".into(),
            probe_bytes,
            total_bytes: self.content_len,
            timeout: std::time::Duration::from_secs(60),
        };
        download(
            self.direct_addr(),
            self.origin_for_relays(),
            &self.relay_addrs(),
            &cfg,
        )
    }

    /// A direct-only control download (the paper's second client
    /// process): the whole file over the direct path, no probing.
    pub fn run_control(&self) -> Result<f64, RelayError> {
        use crate::wire::exchange;
        use ir_http::{ByteRange, Request, StatusCode};
        let t0 = std::time::Instant::now();
        let mut conn = std::net::TcpStream::connect(self.direct_addr())?;
        conn.set_read_timeout(Some(std::time::Duration::from_secs(60)))?;
        let req = Request::get("/file.bin")
            .with_header("Host", "origin")
            .with_header("Range", ByteRange::first(self.content_len).to_string());
        let (head, body) = exchange(&mut conn, &req)?;
        if head.status != StatusCode::PARTIAL_CONTENT {
            return Err(crate::error::RelayError::BadStatus(head.status.0));
        }
        if body.len() as u64 != self.content_len {
            return Err(crate::error::RelayError::BadResponse("short body".into()));
        }
        Ok(self.content_len as f64 / t0.elapsed().as_secs_f64())
    }

    /// The paper's methodology over real bytes: `rounds` iterations of
    /// {probed download + concurrent direct control}, returning per-round
    /// improvements `(selected_throughput / control_throughput − 1)`.
    ///
    /// Both transfers run concurrently (as in §2.2) on separate threads.
    pub fn run_study(
        &self,
        probe_bytes: u64,
        rounds: usize,
        gap: std::time::Duration,
    ) -> Result<Vec<StudyRound>, RelayError> {
        let mut out = Vec::with_capacity(rounds);
        for i in 0..rounds {
            if i > 0 {
                std::thread::sleep(gap);
            }
            let control = std::thread::scope(|scope| {
                let control = scope.spawn(|| self.run_control());
                let treatment = self.run_download(probe_bytes)?;
                let control = control.join().expect("control thread")?;
                Ok::<_, RelayError>((treatment, control))
            });
            let (treatment, control_thr) = control?;
            out.push(StudyRound {
                choice: treatment.choice,
                selected_throughput: treatment.throughput,
                control_throughput: control_thr,
                body_ok: treatment.body_ok,
            });
        }
        Ok(out)
    }
}

/// One round of [`MiniPlanetLab::run_study`].
#[derive(Debug, Clone, Copy)]
pub struct StudyRound {
    /// Which path the selecting process used.
    pub choice: crate::client::ChosenPath,
    /// Selecting process end-to-end throughput (bytes/sec).
    pub selected_throughput: f64,
    /// Control (direct-only) throughput (bytes/sec).
    pub control_throughput: f64,
    /// Content integrity of the selecting process's download.
    pub body_ok: bool,
}

impl StudyRound {
    /// Fractional improvement over the control.
    pub fn improvement(&self) -> f64 {
        (self.selected_throughput - self.control_throughput) / self.control_throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ChosenPath;

    const KB: f64 = 1000.0;

    #[test]
    fn study_rounds_measure_real_improvement() {
        // Relay path 4x the direct path: every round should choose the
        // relay and register a solid positive improvement over the
        // concurrently measured control.
        let lab = MiniPlanetLab::start(HarnessSpec {
            content_len: 240_000,
            direct: RateSchedule::constant(150.0 * KB),
            relays: vec![RateSchedule::constant(600.0 * KB)],
        })
        .unwrap();
        let rounds = lab
            .run_study(40_000, 3, std::time::Duration::from_millis(100))
            .unwrap();
        assert_eq!(rounds.len(), 3);
        for r in &rounds {
            assert!(r.body_ok);
            assert_eq!(r.choice, ChosenPath::Relay(0));
            assert!(
                r.improvement() > 0.5,
                "expected a big win, got {:+.0}%",
                r.improvement() * 100.0
            );
        }
    }

    #[test]
    fn end_to_end_fast_relay_wins_and_improves() {
        let lab = MiniPlanetLab::start(HarnessSpec {
            content_len: 400_000,
            direct: RateSchedule::constant(150.0 * KB),
            relays: vec![
                RateSchedule::constant(60.0 * KB),
                RateSchedule::constant(900.0 * KB),
            ],
        })
        .unwrap();
        let out = lab.run_download(50_000).unwrap();
        assert_eq!(out.choice, ChosenPath::Relay(1));
        assert!(out.body_ok);
        // Direct would take ~2.5 s; the relay path is several times
        // faster even counting the probe.
        assert!(out.throughput > 250.0 * KB, "thr {:.0} B/s", out.throughput);
    }

    #[test]
    fn end_to_end_direct_wins_when_relays_slow() {
        let lab = MiniPlanetLab::start(HarnessSpec {
            content_len: 300_000,
            direct: RateSchedule::constant(800.0 * KB),
            relays: vec![RateSchedule::constant(80.0 * KB)],
        })
        .unwrap();
        let out = lab.run_download(50_000).unwrap();
        assert_eq!(out.choice, ChosenPath::Direct);
        assert!(out.body_ok);
    }

    #[test]
    fn time_varying_direct_path_flips_choice() {
        // Direct is fast for 1.2 s then collapses; a transfer starting
        // immediately probes the fast phase and picks direct... and a
        // later one (after the collapse) picks the relay.
        let lab = MiniPlanetLab::start(HarnessSpec {
            content_len: 250_000,
            direct: RateSchedule::piecewise(vec![
                (std::time::Duration::ZERO, 900.0 * KB),
                (std::time::Duration::from_millis(1200), 60.0 * KB),
            ]),
            relays: vec![RateSchedule::constant(350.0 * KB)],
        })
        .unwrap();
        let first = lab.run_download(60_000).unwrap();
        assert_eq!(first.choice, ChosenPath::Direct, "fast phase → direct");
        // Let the collapse take effect.
        std::thread::sleep(std::time::Duration::from_millis(1300));
        let second = lab.run_download(60_000).unwrap();
        assert_eq!(second.choice, ChosenPath::Relay(0), "collapsed → relay");
        assert!(first.body_ok && second.body_ok);
    }
}
