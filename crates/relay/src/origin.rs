//! The origin server: serves synthetic content with Range support.
//!
//! Stands in for the paper's destination web sites (eBay, Google, …).
//! Bodies are deterministic byte patterns so an end-to-end test can
//! verify that a probe + remainder reassembly is byte-exact.

use crate::error::RelayError;
use crate::shaper::{RateSchedule, TokenBucket};
use crate::stream::ThrottledStream;
use bytes::BytesMut;
use ir_http::{
    encode_response, parse_request, ByteRange, ContentRange, Method, Parsed, Request, Response,
    StatusCode,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The deterministic content byte at offset `i`.
pub fn body_byte(i: u64) -> u8 {
    (i % 251) as u8
}

/// Fills `buf` with the content bytes starting at `offset`.
pub fn fill_body(offset: u64, buf: &mut [u8]) {
    for (k, b) in buf.iter_mut().enumerate() {
        *b = body_byte(offset + k as u64);
    }
}

/// Origin configuration.
#[derive(Debug, Clone)]
pub struct OriginConfig {
    /// Length of the synthetic representation served for every path.
    pub content_len: u64,
    /// Optional response shaping (per connection): emulates the
    /// bottleneck on this leg.
    pub rate: Option<RateSchedule>,
    /// Added delay before each response — emulates path latency
    /// (roughly one RTT of request/response propagation).
    pub latency: Duration,
}

impl OriginConfig {
    /// Unshaped origin of `content_len` bytes.
    pub fn new(content_len: u64) -> Self {
        OriginConfig {
            content_len,
            rate: None,
            latency: Duration::ZERO,
        }
    }

    /// Adds response shaping.
    pub fn shaped(mut self, schedule: RateSchedule) -> Self {
        self.rate = Some(schedule);
        self
    }

    /// Adds per-response latency (path propagation emulation).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }
}

/// A running origin server on 127.0.0.1.
pub struct OriginServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl OriginServer {
    /// Binds an ephemeral loopback port and starts the accept loop.
    pub fn start(cfg: OriginConfig) -> std::io::Result<OriginServer> {
        Self::start_on("127.0.0.1:0", cfg)
    }

    /// Binds an explicit address (e.g. `0.0.0.0:8080`) and starts the
    /// accept loop.
    pub fn start_on(addr: &str, cfg: OriginConfig) -> std::io::Result<OriginServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            accept_loop(listener, cfg, flag);
        });
        Ok(OriginServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, cfg: OriginConfig, shutdown: Arc<AtomicBool>) {
    // All connections share one path timeline: schedules are anchored
    // at server start, not per connection.
    let epoch = std::time::Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &cfg, epoch);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Reads one request head from `stream` into `buf`; `Ok(None)` on clean
/// EOF before any bytes of a new request.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    buf: &mut BytesMut,
) -> Result<Option<Request>, RelayError> {
    loop {
        match parse_request(&buf[..])? {
            Parsed::Complete { value, consumed } => {
                let _ = buf.split_to(consumed);
                return Ok(Some(value));
            }
            Parsed::Partial => {}
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(RelayError::Http(ir_http::HttpError::UnexpectedEof));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn serve_connection(
    mut stream: TcpStream,
    cfg: &OriginConfig,
    epoch: std::time::Instant,
) -> Result<(), RelayError> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut inbuf = BytesMut::new();
    loop {
        let Some(req) = read_request(&mut stream, &mut inbuf)? else {
            return Ok(()); // peer closed between requests
        };
        if !cfg.latency.is_zero() {
            std::thread::sleep(cfg.latency);
        }
        let mut out: Box<dyn Write> = match &cfg.rate {
            Some(schedule) => Box::new(ThrottledStream::new(
                stream.try_clone()?,
                TokenBucket::with_epoch(schedule.clone(), 16_384.0, epoch),
            )),
            None => Box::new(stream.try_clone()?),
        };
        respond(&mut *out, &req, cfg)?;
        out.flush()?;
    }
}

fn respond(out: &mut dyn Write, req: &Request, cfg: &OriginConfig) -> Result<(), RelayError> {
    let total = cfg.content_len;
    let range = match req.headers.get("Range") {
        None => None,
        Some(v) => match ByteRange::parse(v) {
            Ok(r) => Some(r),
            Err(_) => {
                return write_head(
                    out,
                    &Response::new(StatusCode::BAD_REQUEST).with_header("Content-Length", "0"),
                );
            }
        },
    };

    let (status, first, last) = match range {
        None => (StatusCode::OK, 0, total.saturating_sub(1)),
        Some(r) => match r.resolve(total) {
            None => {
                let resp = Response::new(StatusCode::RANGE_NOT_SATISFIABLE)
                    .with_header("Content-Range", format!("bytes */{total}"))
                    .with_header("Content-Length", "0");
                return write_head(out, &resp);
            }
            Some((a, b)) => (StatusCode::PARTIAL_CONTENT, a, b),
        },
    };
    let len = if total == 0 { 0 } else { last - first + 1 };

    let mut resp = Response::new(status)
        .with_header("Content-Length", len.to_string())
        .with_header("Accept-Ranges", "bytes");
    if status == StatusCode::PARTIAL_CONTENT {
        resp = resp.with_header(
            "Content-Range",
            ContentRange::new(first, last, total).to_string(),
        );
    }
    write_head(out, &resp)?;

    if req.method == Method::Head || len == 0 {
        return Ok(());
    }
    // Stream the body in chunks.
    let mut offset = first;
    let mut remaining = len;
    let mut chunk = vec![0u8; 16 * 1024];
    while remaining > 0 {
        let n = (remaining as usize).min(chunk.len());
        fill_body(offset, &mut chunk[..n]);
        out.write_all(&chunk[..n])?;
        offset += n as u64;
        remaining -= n as u64;
    }
    Ok(())
}

fn write_head(out: &mut dyn Write, resp: &Response) -> Result<(), RelayError> {
    let mut buf = BytesMut::new();
    encode_response(resp, &mut buf);
    out.write_all(&buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_http::via_proxy;

    fn get(addr: SocketAddr, req: &Request) -> (Response, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut buf = BytesMut::new();
        ir_http::encode_request(req, &mut buf);
        stream.write_all(&buf).unwrap();
        read_response(&mut stream)
    }

    fn read_response(stream: &mut TcpStream) -> (Response, Vec<u8>) {
        let mut buf = BytesMut::new();
        let head = loop {
            match ir_http::parse_response(&buf[..]).unwrap() {
                Parsed::Complete { value, consumed } => {
                    let _ = buf.split_to(consumed);
                    break value;
                }
                Parsed::Partial => {
                    let mut chunk = [0u8; 4096];
                    let n = stream.read(&mut chunk).unwrap();
                    assert!(n > 0, "eof in head");
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        };
        let len = head.headers.content_length().unwrap().unwrap_or(0) as usize;
        let mut body = buf.to_vec();
        while body.len() < len {
            let mut chunk = [0u8; 8192];
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "eof in body");
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(len);
        (head, body)
    }

    #[test]
    fn serves_full_content() {
        let origin = OriginServer::start(OriginConfig::new(10_000)).unwrap();
        let req = Request::get("/file.bin").with_header("Host", "o");
        let (head, body) = get(origin.addr(), &req);
        assert_eq!(head.status, StatusCode::OK);
        assert_eq!(body.len(), 10_000);
        assert!(body
            .iter()
            .enumerate()
            .all(|(i, &b)| b == body_byte(i as u64)));
    }

    #[test]
    fn serves_prefix_range() {
        let origin = OriginServer::start(OriginConfig::new(100_000)).unwrap();
        let req = Request::get("/f")
            .with_header("Host", "o")
            .with_header("Range", ByteRange::first(1024).to_string());
        let (head, body) = get(origin.addr(), &req);
        assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(
            head.headers.get("Content-Range").unwrap(),
            "bytes 0-1023/100000"
        );
        assert_eq!(body.len(), 1024);
    }

    #[test]
    fn serves_suffix_remainder_and_reassembles() {
        let total = 50_000u64;
        let x = 10_000u64;
        let origin = OriginServer::start(OriginConfig::new(total)).unwrap();
        let (h1, part1) = get(
            origin.addr(),
            &Request::get("/f")
                .with_header("Host", "o")
                .with_header("Range", ByteRange::first(x).to_string()),
        );
        let (h2, part2) = get(
            origin.addr(),
            &Request::get("/f")
                .with_header("Host", "o")
                .with_header("Range", ByteRange::from_offset(x).to_string()),
        );
        assert_eq!(h1.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(h2.status, StatusCode::PARTIAL_CONTENT);
        let mut whole = part1;
        whole.extend_from_slice(&part2);
        assert_eq!(whole.len() as u64, total);
        assert!(whole
            .iter()
            .enumerate()
            .all(|(i, &b)| b == body_byte(i as u64)));
    }

    #[test]
    fn unsatisfiable_range_is_416() {
        let origin = OriginServer::start(OriginConfig::new(100)).unwrap();
        let req = Request::get("/f")
            .with_header("Host", "o")
            .with_header("Range", "bytes=500-");
        let (head, body) = get(origin.addr(), &req);
        assert_eq!(head.status, StatusCode::RANGE_NOT_SATISFIABLE);
        assert!(body.is_empty());
    }

    #[test]
    fn head_returns_no_body() {
        let origin = OriginServer::start(OriginConfig::new(5000)).unwrap();
        let mut req = Request::get("/f").with_header("Host", "o");
        req.method = Method::Head;
        // Read the head only — HEAD responses carry no body even though
        // Content-Length advertises the representation size.
        let mut stream = TcpStream::connect(origin.addr()).unwrap();
        let mut buf = BytesMut::new();
        ir_http::encode_request(&req, &mut buf);
        stream.write_all(&buf).unwrap();
        let (head, leftover) = crate::wire::read_head(&mut stream).unwrap();
        assert_eq!(head.status, StatusCode::OK);
        assert_eq!(head.headers.content_length().unwrap(), Some(5000));
        assert!(leftover.is_empty(), "HEAD must not send a body");
    }

    #[test]
    fn keep_alive_serial_requests() {
        let origin = OriginServer::start(OriginConfig::new(1000)).unwrap();
        let mut stream = TcpStream::connect(origin.addr()).unwrap();
        for _ in 0..3 {
            let mut buf = BytesMut::new();
            ir_http::encode_request(
                &Request::get("/f")
                    .with_header("Host", "o")
                    .with_header("Range", "bytes=0-9"),
                &mut buf,
            );
            stream.write_all(&buf).unwrap();
            let (head, body) = read_response(&mut stream);
            assert_eq!(head.status, StatusCode::PARTIAL_CONTENT);
            assert_eq!(body.len(), 10);
        }
    }

    #[test]
    fn shaped_origin_limits_rate() {
        let origin = OriginServer::start(
            OriginConfig::new(60_000).shaped(RateSchedule::constant(200_000.0)),
        )
        .unwrap();
        let t0 = std::time::Instant::now();
        let (_, body) = get(origin.addr(), &Request::get("/f").with_header("Host", "o"));
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(body.len(), 60_000);
        // 60 KB minus 16 KB burst at 200 KB/s ≈ 0.22 s.
        assert!(dt > 0.1, "too fast: {dt}");
        assert!(dt < 1.0, "too slow: {dt}");
    }

    #[test]
    fn latency_delays_first_byte() {
        let fast = OriginServer::start(OriginConfig::new(100)).unwrap();
        let slow =
            OriginServer::start(OriginConfig::new(100).with_latency(Duration::from_millis(150)))
                .unwrap();
        let req = Request::get("/f").with_header("Host", "o");
        let t0 = std::time::Instant::now();
        let _ = get(fast.addr(), &req);
        let fast_dt = t0.elapsed();
        let t1 = std::time::Instant::now();
        let _ = get(slow.addr(), &req);
        let slow_dt = t1.elapsed();
        assert!(slow_dt >= Duration::from_millis(140), "{slow_dt:?}");
        assert!(slow_dt > fast_dt + Duration::from_millis(100));
    }

    #[test]
    fn via_proxy_request_shape() {
        // (Compile-level sanity that the proxy helper interoperates.)
        let r = via_proxy("127.0.0.1", 8080, "/f");
        assert!(r.target.starts_with("http://127.0.0.1:8080/"));
    }

    #[test]
    fn body_byte_is_periodic() {
        assert_eq!(body_byte(0), 0);
        assert_eq!(body_byte(250), 250);
        assert_eq!(body_byte(251), 0);
        let mut buf = [0u8; 8];
        fill_body(249, &mut buf);
        assert_eq!(buf, [249, 250, 0, 1, 2, 3, 4, 5]);
    }
}
