//! Token-bucket rate shaping with optional time-varying schedules.
//!
//! On loopback everything runs at gigabytes per second; the shaper is
//! what turns a localhost socket into a "1.2 Mbps transatlantic path".
//! Every byte written through a [`crate::stream::ThrottledStream`]
//! spends tokens; when the bucket runs dry the writer sleeps until the
//! refill covers the next chunk.

use std::time::{Duration, Instant};

/// A rate schedule: piecewise-constant bytes/sec over time offsets from
/// the shaper's epoch. Used to emulate the time-varying available
/// bandwidth of wide-area paths in real time.
#[derive(Debug, Clone)]
pub struct RateSchedule {
    // (offset from epoch, rate in bytes/sec), first offset must be zero.
    steps: Vec<(Duration, f64)>,
}

impl RateSchedule {
    /// A constant rate forever.
    pub fn constant(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "bad rate {rate}");
        RateSchedule {
            steps: vec![(Duration::ZERO, rate)],
        }
    }

    /// An explicit piecewise schedule. Offsets must start at zero and
    /// strictly increase.
    pub fn piecewise(steps: Vec<(Duration, f64)>) -> Self {
        assert!(!steps.is_empty(), "empty schedule");
        assert_eq!(steps[0].0, Duration::ZERO, "first step must be at 0");
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "offsets must increase");
        }
        for &(_, r) in &steps {
            assert!(r > 0.0 && r.is_finite(), "bad rate {r}");
        }
        RateSchedule { steps }
    }

    /// The rate in effect at `elapsed` since the epoch.
    pub fn rate_at(&self, elapsed: Duration) -> f64 {
        let idx = self
            .steps
            .partition_point(|&(off, _)| off <= elapsed)
            .saturating_sub(1);
        self.steps[idx].1
    }
}

/// A token bucket over a [`RateSchedule`].
#[derive(Debug)]
pub struct TokenBucket {
    schedule: RateSchedule,
    epoch: Instant,
    tokens: f64,
    burst: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// Creates a bucket with the given schedule and burst size (bytes).
    /// The bucket starts full; the schedule's epoch is now.
    pub fn new(schedule: RateSchedule, burst: f64) -> Self {
        Self::with_epoch(schedule, burst, Instant::now())
    }

    /// Creates a bucket whose schedule is anchored at `epoch` — several
    /// buckets (one per connection) can then share one path timeline.
    pub fn with_epoch(schedule: RateSchedule, burst: f64, epoch: Instant) -> Self {
        assert!(burst > 0.0, "zero burst");
        TokenBucket {
            schedule,
            epoch,
            tokens: burst,
            burst,
            last_refill: Instant::now(),
        }
    }

    /// Convenience: constant-rate bucket with a burst of ~50 ms worth
    /// of tokens (smooth pacing without syscall-per-byte overhead).
    pub fn at_rate(rate: f64) -> Self {
        TokenBucket::new(RateSchedule::constant(rate), (rate * 0.05).max(4096.0))
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.duration_since(self.last_refill);
        // Use the rate at the interval midpoint — close enough for the
        // ~ms refill cadence the stream produces.
        let mid = now.duration_since(self.epoch).saturating_sub(dt / 2);
        let rate = self.schedule.rate_at(mid);
        self.tokens = (self.tokens + rate * dt.as_secs_f64()).min(self.burst);
        self.last_refill = now;
    }

    /// Takes up to `want` tokens; returns how many were granted
    /// (possibly zero).
    pub fn take(&mut self, want: usize) -> usize {
        self.take_at(want, Instant::now())
    }

    /// Deterministic variant of [`TokenBucket::take`] for tests.
    pub fn take_at(&mut self, want: usize, now: Instant) -> usize {
        self.refill(now);
        let granted = (want as f64).min(self.tokens).floor();
        self.tokens -= granted;
        granted as usize
    }

    /// How long to wait before ~`want` tokens will be available.
    pub fn eta(&self, want: usize) -> Duration {
        let missing = (want as f64 - self.tokens).max(0.0);
        let rate = self
            .schedule
            .rate_at(self.last_refill.duration_since(self.epoch));
        Duration::from_secs_f64((missing / rate).clamp(0.0005, 0.25))
    }

    /// Deterministic variant of [`TokenBucket::eta`]: the wait as of
    /// `now`, using the rate scheduled at that instant. The reactor
    /// turns this into a poll timeout instead of sleeping.
    pub fn eta_at(&self, want: usize, now: Instant) -> Duration {
        let missing = (want as f64 - self.tokens).max(0.0);
        let rate = self.schedule.rate_at(now.duration_since(self.epoch));
        Duration::from_secs_f64((missing / rate).clamp(0.0005, 0.25))
    }

    /// The currently scheduled rate (bytes/sec).
    pub fn current_rate(&self) -> f64 {
        self.schedule
            .rate_at(Instant::now().duration_since(self.epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_lookup() {
        let s = RateSchedule::piecewise(vec![
            (Duration::ZERO, 100.0),
            (Duration::from_secs(2), 400.0),
        ]);
        assert_eq!(s.rate_at(Duration::from_millis(100)), 100.0);
        assert_eq!(s.rate_at(Duration::from_secs(2)), 400.0);
        assert_eq!(s.rate_at(Duration::from_secs(60)), 400.0);
    }

    #[test]
    #[should_panic(expected = "first step must be at 0")]
    fn schedule_must_start_at_zero() {
        RateSchedule::piecewise(vec![(Duration::from_secs(1), 1.0)]);
    }

    #[test]
    fn bucket_grants_burst_then_paces() {
        let mut b = TokenBucket::new(RateSchedule::constant(1000.0), 500.0);
        let t0 = Instant::now();
        // Full burst immediately.
        assert_eq!(b.take_at(500, t0), 500);
        // Nothing more at the same instant.
        assert_eq!(b.take_at(100, t0), 0);
        // After 100 ms, ~100 tokens refilled.
        let t1 = t0 + Duration::from_millis(100);
        let got = b.take_at(200, t1);
        assert!((95..=105).contains(&got), "got {got}");
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(RateSchedule::constant(1_000_000.0), 1000.0);
        let t0 = Instant::now();
        let t_late = t0 + Duration::from_secs(60);
        // Even after a minute idle, only `burst` tokens available.
        assert_eq!(b.take_at(1_000_000, t_late), 1000);
    }

    #[test]
    fn eta_reasonable() {
        let mut b = TokenBucket::new(RateSchedule::constant(1000.0), 100.0);
        let t0 = Instant::now();
        b.take_at(100, t0); // drain
        let eta = b.eta(100);
        // 100 tokens at 1000/s = 100 ms (clamped window 0.5..250 ms).
        assert!(eta >= Duration::from_millis(50) && eta <= Duration::from_millis(250));
    }

    #[test]
    fn schedule_shifts_pace() {
        let mut b = TokenBucket::new(
            RateSchedule::piecewise(vec![
                (Duration::ZERO, 100.0),
                (Duration::from_secs(1), 10_000.0),
            ]),
            100.0,
        );
        let t0 = Instant::now();
        b.take_at(100, t0); // drain burst
                            // During the slow first second: ~100 tokens in 1 s.
        let got_slow = b.take_at(10_000, t0 + Duration::from_millis(900));
        assert!(got_slow < 150, "slow phase granted {got_slow}");
        // Fast phase: ~10k tokens per second (capped by burst anyway).
        let got_fast = b.take_at(10_000, t0 + Duration::from_secs(3));
        assert!(got_fast >= 90, "fast phase granted {got_fast}");
    }
}
