//! The racing client: the paper's selecting process, over real sockets.
//!
//! Implements §2.1 end-to-end: open connections to the origin (direct)
//! and to each candidate relay (absolute-form proxy requests), issue
//! `Range: bytes=0-{x-1}` on all of them simultaneously, take whichever
//! connection delivers the probe first, and fetch `bytes={x}-` **on the
//! winning, still-warm connection**.

use crate::error::RelayError;
use crate::origin::body_byte;
use crate::wire::exchange;
use ir_http::{via_proxy, ByteRange, Request, StatusCode};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Which path carried the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChosenPath {
    /// The default path straight to the origin.
    Direct,
    /// Via the i-th relay of the candidate list.
    Relay(usize),
}

/// Client configuration for one download.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Resource path on the origin.
    pub path: String,
    /// Probe size x (bytes).
    pub probe_bytes: u64,
    /// Total resource size n (bytes); must exceed the probe.
    pub total_bytes: u64,
    /// Per-phase timeout.
    pub timeout: Duration,
}

impl ClientConfig {
    /// Defaults mirroring the paper at laptop scale: x = 100 KB.
    pub fn new(total_bytes: u64) -> Self {
        let cfg = ClientConfig {
            path: "/file.bin".into(),
            probe_bytes: 100 * 1024,
            total_bytes,
            timeout: Duration::from_secs(30),
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(self.probe_bytes > 0, "zero probe");
        assert!(
            self.total_bytes > self.probe_bytes,
            "file must exceed probe"
        );
    }
}

/// Result of the probe race.
pub struct ProbeWin {
    /// Which path won.
    pub choice: ChosenPath,
    /// Wall time from race start to the winner's last probe byte.
    pub elapsed: Duration,
    /// Probe throughput, bytes/sec.
    pub throughput: f64,
    /// The winner's still-open connection.
    pub conn: TcpStream,
    /// The probe bytes (for integrity checks).
    pub body: Vec<u8>,
}

/// Result of a full probed download.
#[derive(Debug)]
pub struct DownloadOutcome {
    /// Which path carried the remainder.
    pub choice: ChosenPath,
    /// Probe throughput of the winner, bytes/sec.
    pub probe_throughput: f64,
    /// End-to-end wall time for all n bytes.
    pub elapsed: Duration,
    /// End-to-end throughput (n / elapsed), bytes/sec.
    pub throughput: f64,
    /// Whether the reassembled body matched the origin's content.
    pub body_ok: bool,
    /// Paths abandoned mid-transfer (relay died, connection severed);
    /// always 0 from [`download`], which has no failure handling.
    pub failovers: u32,
}

fn probe_request(
    target: ChosenPath,
    origin_for_relays: SocketAddr,
    path: &str,
    range: ByteRange,
) -> Request {
    match target {
        ChosenPath::Direct => Request::get(path.to_string())
            .with_header("Host", "origin")
            .with_header("Range", range.to_string()),
        ChosenPath::Relay(_) => via_proxy(
            &origin_for_relays.ip().to_string(),
            origin_for_relays.port(),
            path,
        )
        .with_header("Range", range.to_string()),
    }
}

/// Races the probe over the direct path and every relay; returns the
/// winner with its open connection.
///
/// `direct` is the origin address the client reaches on its default
/// path; `origin_for_relays` is the origin address relays should dial
/// (they sit elsewhere in the network, so the two may differ — in the
/// loopback harness they are different listeners with different
/// shaping).
pub fn probe_race(
    direct: SocketAddr,
    origin_for_relays: SocketAddr,
    relays: &[SocketAddr],
    cfg: &ClientConfig,
) -> Result<ProbeWin, RelayError> {
    cfg.validate();
    let (tx, rx) = mpsc::channel::<(ChosenPath, Duration, TcpStream, Vec<u8>)>();
    let start = Instant::now();

    let mut targets: Vec<(ChosenPath, SocketAddr)> = vec![(ChosenPath::Direct, direct)];
    for (i, &r) in relays.iter().enumerate() {
        targets.push((ChosenPath::Relay(i), r));
    }

    for (choice, addr) in targets {
        let tx = tx.clone();
        let path = cfg.path.clone();
        let probe = cfg.probe_bytes;
        let timeout = cfg.timeout;
        std::thread::spawn(move || {
            let run = || -> Result<(TcpStream, Vec<u8>), RelayError> {
                let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
                conn.set_read_timeout(Some(timeout))?;
                conn.set_nodelay(true)?;
                // Connect to the relay (or straight to the origin); the
                // absolute URI inside always names the origin.
                let req = probe_request(choice, origin_for_relays, &path, ByteRange::first(probe));
                let (head, body) = exchange(&mut conn, &req)?;
                if head.status != StatusCode::PARTIAL_CONTENT {
                    return Err(RelayError::BadStatus(head.status.0));
                }
                Ok((conn, body))
            };
            if let Ok((conn, body)) = run() {
                let _ = tx.send((choice, start.elapsed(), conn, body));
            }
        });
    }
    drop(tx);

    match rx.recv_timeout(cfg.timeout) {
        Ok((choice, elapsed, conn, body)) => Ok(ProbeWin {
            choice,
            elapsed,
            throughput: cfg.probe_bytes as f64 / elapsed.as_secs_f64(),
            conn,
            body,
        }),
        Err(_) => Err(RelayError::Timeout),
    }
}

/// Full §2.1 download: probe race, then the remainder on the winning
/// warm connection; verifies the reassembled content.
pub fn download(
    direct: SocketAddr,
    origin_for_relays: SocketAddr,
    relays: &[SocketAddr],
    cfg: &ClientConfig,
) -> Result<DownloadOutcome, RelayError> {
    let start = Instant::now();
    let mut win = probe_race(direct, origin_for_relays, relays, cfg)?;

    let rem_range = ByteRange::from_offset(cfg.probe_bytes);
    let req = probe_request(win.choice, origin_for_relays, &cfg.path, rem_range);
    let (head, rest) = exchange(&mut win.conn, &req)?;
    if head.status != StatusCode::PARTIAL_CONTENT {
        return Err(RelayError::BadStatus(head.status.0));
    }

    let elapsed = start.elapsed();
    let mut body = win.body;
    body.extend_from_slice(&rest);
    let body_ok = body.len() as u64 == cfg.total_bytes
        && body
            .iter()
            .enumerate()
            .all(|(i, &b)| b == body_byte(i as u64));

    Ok(DownloadOutcome {
        choice: win.choice,
        probe_throughput: win.throughput,
        elapsed,
        throughput: cfg.total_bytes as f64 / elapsed.as_secs_f64(),
        body_ok,
        failovers: 0,
    })
}

/// Fetches one range over a fresh connection (reconnect path of the
/// failover download).
fn fetch_range_fresh(
    addr: SocketAddr,
    choice: ChosenPath,
    origin_for_relays: SocketAddr,
    path: &str,
    range: ByteRange,
    timeout: Duration,
) -> Result<Vec<u8>, RelayError> {
    let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_nodelay(true)?;
    let req = probe_request(choice, origin_for_relays, path, range);
    let (head, body) = exchange(&mut conn, &req)?;
    if head.status != StatusCode::PARTIAL_CONTENT {
        return Err(RelayError::BadStatus(head.status.0));
    }
    Ok(body)
}

/// [`download`] with client-side failover: if the winning connection
/// dies mid-remainder (the relay crashed, the socket was severed), the
/// client reconnects and re-requests the remainder from the surviving
/// paths — the direct path first, then each remaining relay — instead
/// of surfacing the error. `failovers` in the outcome counts every
/// abandoned path. Fails with the *last* path's error only when no
/// path survives.
pub fn download_failover(
    direct: SocketAddr,
    origin_for_relays: SocketAddr,
    relays: &[SocketAddr],
    cfg: &ClientConfig,
) -> Result<DownloadOutcome, RelayError> {
    let start = Instant::now();
    let mut win = probe_race(direct, origin_for_relays, relays, cfg)?;

    let rem_range = ByteRange::from_offset(cfg.probe_bytes);
    let req = probe_request(win.choice, origin_for_relays, &cfg.path, rem_range);
    let mut failovers = 0u32;
    let rest = match exchange(&mut win.conn, &req) {
        Ok((head, rest)) if head.status == StatusCode::PARTIAL_CONTENT => rest,
        first_failure => {
            // The winning path died mid-transfer. Reconnect over the
            // survivors; partial remainder bytes are discarded and the
            // whole remainder re-requested (ranges make this cheap to
            // reason about and the origin is stateless).
            failovers += 1;
            let mut survivors: Vec<(ChosenPath, SocketAddr)> = vec![(ChosenPath::Direct, direct)];
            for (i, &r) in relays.iter().enumerate() {
                survivors.push((ChosenPath::Relay(i), r));
            }
            survivors.retain(|&(c, _)| c != win.choice);

            let mut recovered = None;
            let mut last_err = match first_failure {
                Ok((head, _)) => RelayError::BadStatus(head.status.0),
                Err(e) => e,
            };
            for (choice, addr) in survivors {
                match fetch_range_fresh(
                    addr,
                    choice,
                    origin_for_relays,
                    &cfg.path,
                    rem_range,
                    cfg.timeout,
                ) {
                    Ok(body) => {
                        recovered = Some((choice, body));
                        break;
                    }
                    Err(e) => {
                        failovers += 1;
                        last_err = e;
                    }
                }
            }
            let Some((choice, body)) = recovered else {
                return Err(last_err);
            };
            win.choice = choice;
            body
        }
    };

    let elapsed = start.elapsed();
    let mut body = win.body;
    body.extend_from_slice(&rest);
    let body_ok = body.len() as u64 == cfg.total_bytes
        && body
            .iter()
            .enumerate()
            .all(|(i, &b)| b == body_byte(i as u64));

    Ok(DownloadOutcome {
        choice: win.choice,
        probe_throughput: win.throughput,
        elapsed,
        throughput: cfg.total_bytes as f64 / elapsed.as_secs_f64(),
        body_ok,
        failovers,
    })
}

/// Result of a striped download ([`download_striped`]).
#[derive(Debug)]
pub struct StripedOutcome {
    /// End-to-end wall time for all n bytes.
    pub elapsed: Duration,
    /// End-to-end throughput (n / elapsed), bytes/sec.
    pub throughput: f64,
    /// Whether the reassembled body matched the origin's content.
    pub body_ok: bool,
    /// Worker threads that died mid-transfer; their orphaned bytes were
    /// refetched by the repair pass.
    pub failovers: u32,
    /// Chunks completed per path, race-target order (direct first).
    pub chunk_counts: Vec<(ChosenPath, u64)>,
    /// Missing intervals the repair pass refetched over the direct
    /// path (0 on a clean run).
    pub repaired: u64,
}

/// mHTTP-style striped download over real sockets: race the probe as
/// in [`download`], then fetch the remainder as disjoint range chunks
/// pulled concurrently by one worker per path — each claiming the next
/// chunk from a shared [`ir_stripe::ChunkQueue`] (so fast paths
/// naturally carry more chunks) and landing bytes in a shared
/// [`ir_http::Reassembly`]. The probe winner's warm connection serves
/// its worker's chunks; other workers fetch each chunk on a fresh
/// connection. A worker whose path dies orphans at most its current
/// chunk: after all workers drain, any still-missing intervals are
/// refetched over the direct path, so a mid-transfer path death
/// degrades throughput without corrupting content.
pub fn download_striped(
    direct: SocketAddr,
    origin_for_relays: SocketAddr,
    relays: &[SocketAddr],
    chunks: u32,
    cfg: &ClientConfig,
) -> Result<StripedOutcome, RelayError> {
    use ir_stripe::{partition, ChunkQueue};
    use std::sync::{Arc, Mutex};
    assert!(chunks >= 1, "zero chunks");
    let start = Instant::now();
    let win = probe_race(direct, origin_for_relays, relays, cfg)?;

    let mut reassembly = ir_http::Reassembly::new(cfg.total_bytes);
    reassembly
        .insert(0, &win.body)
        .map_err(|e| RelayError::BadResponse(e.to_string()))?;
    let shared = Arc::new(Mutex::new(reassembly));
    let queue = Arc::new(ChunkQueue::new(partition(
        cfg.probe_bytes,
        cfg.total_bytes - cfg.probe_bytes,
        chunks,
    )));

    let mut targets: Vec<(ChosenPath, SocketAddr)> = vec![(ChosenPath::Direct, direct)];
    for (i, &r) in relays.iter().enumerate() {
        targets.push((ChosenPath::Relay(i), r));
    }
    // The first chunk is reserved for the probe winner before any
    // worker spawns, so it deterministically rides the warm connection
    // (the racing client's remainder request, §2.1) instead of racing
    // the other workers for it.
    let first_chunk = queue.claim();
    let mut warm_conn = Some(win.conn);
    let mut workers = Vec::new();
    for (choice, addr) in targets {
        let queue = Arc::clone(&queue);
        let shared = Arc::clone(&shared);
        let path = cfg.path.clone();
        let timeout = cfg.timeout;
        // The probe winner's worker keeps the warm connection.
        let mut warm = if choice == win.choice {
            warm_conn.take()
        } else {
            None
        };
        let mut reserved = if choice == win.choice {
            first_chunk
        } else {
            None
        };
        workers.push(std::thread::spawn(move || {
            let mut done = 0u64;
            let mut failed = false;
            while let Some(chunk) = reserved.take().or_else(|| queue.claim()) {
                let range = ByteRange::FromTo(chunk.offset, chunk.end() - 1);
                let fetched = match warm.as_mut() {
                    Some(conn) => {
                        let req = probe_request(choice, origin_for_relays, &path, range);
                        match exchange(conn, &req) {
                            Ok((head, body)) if head.status == StatusCode::PARTIAL_CONTENT => {
                                Ok(body)
                            }
                            Ok((head, _)) => Err(RelayError::BadStatus(head.status.0)),
                            Err(e) => Err(e),
                        }
                    }
                    None => {
                        fetch_range_fresh(addr, choice, origin_for_relays, &path, range, timeout)
                    }
                };
                match fetched {
                    Ok(body) if body.len() as u64 == chunk.len => {
                        shared
                            .lock()
                            .unwrap()
                            .insert(chunk.offset, &body)
                            .expect("chunk scheduler produced overlapping ranges");
                        done += 1;
                    }
                    // The path died (or misdelivered): orphan the
                    // claimed chunk for the repair pass and stop
                    // claiming — the surviving workers keep draining.
                    _ => {
                        failed = true;
                        break;
                    }
                }
            }
            (choice, done, failed)
        }));
    }

    let mut failovers = 0u32;
    let mut chunk_counts = Vec::new();
    for w in workers {
        let (choice, done, failed) = w.join().expect("striped worker must not panic");
        if failed {
            failovers += 1;
        }
        chunk_counts.push((choice, done));
    }

    // Repair pass: whatever is still missing — orphaned chunks, or the
    // whole tail if every worker died — comes over the direct path.
    let missing = shared.lock().unwrap().missing();
    let repaired = missing.len() as u64;
    for (s, e) in missing {
        let body = fetch_range_fresh(
            direct,
            ChosenPath::Direct,
            origin_for_relays,
            &cfg.path,
            ByteRange::FromTo(s, e - 1),
            cfg.timeout,
        )?;
        if body.len() as u64 != e - s {
            return Err(RelayError::BadResponse(format!(
                "repair fetch of [{s}, {e}) returned {} bytes",
                body.len()
            )));
        }
        shared
            .lock()
            .unwrap()
            .insert(s, &body)
            .map_err(|e| RelayError::BadResponse(e.to_string()))?;
    }

    let elapsed = start.elapsed();
    let reassembly = Arc::try_unwrap(shared)
        .expect("every worker joined")
        .into_inner()
        .unwrap();
    let body = reassembly
        .into_body()
        .expect("repair pass left bytes missing");
    let body_ok = body.len() as u64 == cfg.total_bytes
        && body
            .iter()
            .enumerate()
            .all(|(i, &b)| b == body_byte(i as u64));
    Ok(StripedOutcome {
        elapsed,
        throughput: cfg.total_bytes as f64 / elapsed.as_secs_f64(),
        body_ok,
        failovers,
        chunk_counts,
        repaired,
    })
}

/// The §4 selection mechanism over real sockets: draw a uniform random
/// subset of `k` relays (seeded), race the probe over the subset + the
/// direct path, and download via the winner.
///
/// Returns the outcome plus the indices (into `relays`) of the subset
/// that was drawn, so callers can maintain utilization statistics. The
/// `ChosenPath::Relay(i)` index in the outcome refers to the *subset*
/// order; use the returned subset to map back.
pub fn download_with_subset(
    direct: SocketAddr,
    origin_for_relays: SocketAddr,
    relays: &[SocketAddr],
    k: usize,
    seed: u64,
    cfg: &ClientConfig,
) -> Result<(DownloadOutcome, Vec<usize>), RelayError> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    assert!(k > 0, "empty random set");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut subset: Vec<usize> = (0..relays.len()).collect();
    subset.shuffle(&mut rng);
    subset.truncate(k.min(relays.len()));
    subset.sort_unstable();
    let chosen_addrs: Vec<SocketAddr> = subset.iter().map(|&i| relays[i]).collect();
    let outcome = download(direct, origin_for_relays, &chosen_addrs, cfg)?;
    Ok((outcome, subset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{OriginConfig, OriginServer};
    use crate::relayd::{Relay, RelayConfig};
    use crate::shaper::RateSchedule;

    const KB: f64 = 1000.0;

    fn world(
        total: u64,
        direct_rate: f64,
        relay_rates: &[f64],
    ) -> (OriginServer, OriginServer, Vec<Relay>) {
        // Shaped origin for the client's direct path; unshaped origin
        // for the relays' back side.
        let direct = OriginServer::start(
            OriginConfig::new(total).shaped(RateSchedule::constant(direct_rate)),
        )
        .unwrap();
        let fast = OriginServer::start(OriginConfig::new(total)).unwrap();
        let relays = relay_rates
            .iter()
            .map(|&r| Relay::start(RelayConfig::shaped(RateSchedule::constant(r))).unwrap())
            .collect();
        (direct, fast, relays)
    }

    #[test]
    fn race_picks_fast_relay_over_slow_direct() {
        let (direct, fast, relays) = world(400_000, 150.0 * KB, &[800.0 * KB]);
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 60_000,
            total_bytes: 400_000,
            timeout: Duration::from_secs(20),
        };
        let addrs: Vec<_> = relays.iter().map(|r| r.addr()).collect();
        let win = probe_race(direct.addr(), fast.addr(), &addrs, &cfg).unwrap();
        assert_eq!(win.choice, ChosenPath::Relay(0));
        assert_eq!(win.body.len(), 60_000);
    }

    #[test]
    fn race_picks_direct_over_slow_relay() {
        let (direct, fast, relays) = world(400_000, 900.0 * KB, &[120.0 * KB]);
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 60_000,
            total_bytes: 400_000,
            timeout: Duration::from_secs(20),
        };
        let addrs: Vec<_> = relays.iter().map(|r| r.addr()).collect();
        let win = probe_race(direct.addr(), fast.addr(), &addrs, &cfg).unwrap();
        assert_eq!(win.choice, ChosenPath::Direct);
    }

    #[test]
    fn download_reassembles_exact_content() {
        let (direct, fast, relays) = world(300_000, 200.0 * KB, &[700.0 * KB, 90.0 * KB]);
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 50_000,
            total_bytes: 300_000,
            timeout: Duration::from_secs(30),
        };
        let addrs: Vec<_> = relays.iter().map(|r| r.addr()).collect();
        let out = download(direct.addr(), fast.addr(), &addrs, &cfg).unwrap();
        assert!(out.body_ok, "content mismatch");
        assert_eq!(out.choice, ChosenPath::Relay(0));
        assert!(out.throughput > 200.0 * KB, "thr {}", out.throughput);
    }

    #[test]
    fn download_direct_when_no_relays() {
        let (direct, fast, _relays) = world(200_000, 500.0 * KB, &[]);
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 40_000,
            total_bytes: 200_000,
            timeout: Duration::from_secs(20),
        };
        let out = download(direct.addr(), fast.addr(), &[], &cfg).unwrap();
        assert_eq!(out.choice, ChosenPath::Direct);
        assert!(out.body_ok);
    }

    #[test]
    fn download_with_subset_draws_k_and_succeeds() {
        let (direct, fast, relays) = world(
            200_000,
            100.0 * KB,
            &[60.0 * KB, 500.0 * KB, 80.0 * KB, 400.0 * KB],
        );
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 40_000,
            total_bytes: 200_000,
            timeout: Duration::from_secs(30),
        };
        let addrs: Vec<_> = relays.iter().map(|r| r.addr()).collect();
        let (out, subset) =
            download_with_subset(direct.addr(), fast.addr(), &addrs, 2, 42, &cfg).unwrap();
        assert_eq!(subset.len(), 2);
        assert!(subset.iter().all(|&i| i < addrs.len()));
        assert!(out.body_ok);
        // Whatever was chosen, the subset-relative index is valid.
        if let ChosenPath::Relay(i) = out.choice {
            assert!(i < subset.len());
        }
        // Determinism of the draw.
        let (_, subset2) =
            download_with_subset(direct.addr(), fast.addr(), &addrs, 2, 42, &cfg).unwrap();
        assert_eq!(subset, subset2);
    }

    #[test]
    fn download_failover_survives_relay_kill_mid_splice() {
        // The relay wins the probe, then crashes mid-remainder; the
        // client must recover on the direct path with intact content.
        let direct = OriginServer::start(
            OriginConfig::new(300_000).shaped(RateSchedule::constant(100.0 * KB)),
        )
        .unwrap();
        let fast = OriginServer::start(OriginConfig::new(300_000)).unwrap();
        let mut relay =
            Relay::start(RelayConfig::shaped(RateSchedule::constant(150.0 * KB))).unwrap();
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 50_000,
            total_bytes: 300_000,
            timeout: Duration::from_secs(20),
        };
        let (d, f, addrs) = (direct.addr(), fast.addr(), vec![relay.addr()]);
        let t = std::thread::spawn(move || download_failover(d, f, &addrs, &cfg));
        std::thread::sleep(Duration::from_millis(600));
        relay.kill();
        let out = t.join().expect("client must not panic").unwrap();
        assert!(out.body_ok, "reassembled content must be intact");
        assert_eq!(out.choice, ChosenPath::Direct, "failed over to direct");
        assert!(out.failovers >= 1, "the dead relay counts as a failover");
    }

    #[test]
    fn download_failover_without_faults_matches_download() {
        let (direct, fast, relays) = world(200_000, 100.0 * KB, &[600.0 * KB]);
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 40_000,
            total_bytes: 200_000,
            timeout: Duration::from_secs(20),
        };
        let addrs: Vec<_> = relays.iter().map(|r| r.addr()).collect();
        let out = download_failover(direct.addr(), fast.addr(), &addrs, &cfg).unwrap();
        assert!(out.body_ok);
        assert_eq!(out.failovers, 0);
        assert_eq!(out.choice, ChosenPath::Relay(0));
    }

    #[test]
    fn race_times_out_when_everything_unreachable() {
        // Ports 1 and 2: connection refused; the race has no finisher.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let dead2: SocketAddr = "127.0.0.1:2".parse().unwrap();
        let cfg = ClientConfig {
            path: "/f".into(),
            probe_bytes: 10,
            total_bytes: 100,
            timeout: Duration::from_millis(400),
        };
        match probe_race(dead, dead, &[dead2], &cfg) {
            Err(RelayError::Timeout) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("race should not succeed"),
        }
    }

    #[test]
    #[should_panic(expected = "file must exceed probe")]
    fn config_validates() {
        ClientConfig {
            path: "/f".into(),
            probe_bytes: 100,
            total_bytes: 100,
            timeout: Duration::from_secs(1),
        }
        .validate();
    }
}
