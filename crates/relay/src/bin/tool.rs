//! `ir-relay-tool` — run the indirect-routing components from the
//! command line.
//!
//! ```text
//! ir-relay-tool origin --listen 127.0.0.1:8080 --size 2097152 [--rate-kbps 800] [--latency-ms 120]
//! ir-relay-tool relay  --listen 127.0.0.1:3128 [--rate-kbps 400] [--latency-ms 80]
//! ir-relay-tool fetch  --direct 127.0.0.1:8080 --origin 127.0.0.1:8081 \
//!                      --relays 127.0.0.1:3128,127.0.0.1:3129 \
//!                      [--size 2097152] [--probe 102400] [--path /file.bin]
//! ```
//!
//! `origin` serves synthetic content with Range support (optionally
//! shaped); `relay` runs the forwarding service; `fetch` performs the
//! paper's probed download — race the probe over direct + relays, pull
//! the remainder on the winner's warm connection — and reports which
//! path won and the throughput achieved.

use ir_relay::{
    download, ChosenPath, ClientConfig, OriginConfig, OriginServer, RateSchedule, Relay,
    RelayConfig,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  ir-relay-tool origin --listen ADDR --size BYTES [--rate-kbps K]\n  \
         ir-relay-tool relay --listen ADDR [--rate-kbps K]\n  \
         ir-relay-tool fetch --direct ADDR --origin ADDR [--relays A,B,..] \
[--size BYTES] [--probe BYTES] [--path /p]"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            usage();
        };
        let Some(value) = args.get(i + 1) else {
            usage();
        };
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    map
}

fn rate_schedule(flags: &HashMap<String, String>) -> Option<RateSchedule> {
    flags.get("rate-kbps").map(|v| {
        let kbps: f64 = v.parse().unwrap_or_else(|_| usage());
        RateSchedule::constant(kbps * 1000.0)
    })
}

fn latency(flags: &HashMap<String, String>) -> Duration {
    flags
        .get("latency-ms")
        .map(|v| Duration::from_millis(v.parse().unwrap_or_else(|_| usage())))
        .unwrap_or(Duration::ZERO)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let flags = parse_flags(&argv[1..]);

    match cmd.as_str() {
        "origin" => {
            let listen = flags.get("listen").unwrap_or_else(|| usage());
            let size: u64 = flags
                .get("size")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2 * 1024 * 1024);
            let mut cfg = OriginConfig::new(size).with_latency(latency(&flags));
            if let Some(sched) = rate_schedule(&flags) {
                cfg = cfg.shaped(sched);
            }
            let server = OriginServer::start_on(listen, cfg).expect("bind origin");
            println!("origin serving {size} bytes on {}", server.addr());
            park_forever();
        }
        "relay" => {
            let listen = flags.get("listen").unwrap_or_else(|| usage());
            let cfg = match rate_schedule(&flags) {
                Some(sched) => RelayConfig::shaped(sched),
                None => RelayConfig::new(),
            }
            .with_latency(latency(&flags));
            let relay = Relay::start_on(listen, cfg).expect("bind relay");
            println!("relay forwarding on {}", relay.addr());
            park_forever();
        }
        "fetch" => {
            let direct: SocketAddr = flags
                .get("direct")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
            let origin: SocketAddr = flags
                .get("origin")
                .and_then(|v| v.parse().ok())
                .unwrap_or(direct);
            let relays: Vec<SocketAddr> = flags
                .get("relays")
                .map(|v| {
                    v.split(',')
                        .map(|a| a.parse().unwrap_or_else(|_| usage()))
                        .collect()
                })
                .unwrap_or_default();
            let cfg = ClientConfig {
                path: flags
                    .get("path")
                    .cloned()
                    .unwrap_or_else(|| "/file.bin".into()),
                probe_bytes: flags
                    .get("probe")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(100 * 1024),
                total_bytes: flags
                    .get("size")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(2 * 1024 * 1024),
                timeout: Duration::from_secs(120),
            };
            match download(direct, origin, &relays, &cfg) {
                Ok(out) => {
                    let choice = match out.choice {
                        ChosenPath::Direct => "direct".to_string(),
                        ChosenPath::Relay(i) => format!("relay {} ({})", i, relays[i]),
                    };
                    println!(
                        "chose {choice}; probe {:.0} B/s; end-to-end {:.0} B/s in {:.2}s; content {}",
                        out.probe_throughput,
                        out.throughput,
                        out.elapsed.as_secs_f64(),
                        if out.body_ok { "verified" } else { "MISMATCH" }
                    );
                    if !out.body_ok {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("fetch failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}

fn park_forever() -> ! {
    loop {
        std::thread::park();
    }
}
