//! The per-file lexical rule passes (rules 1, 2, 4, 5, 6 — rule 3
//! lives in [`crate::stablehash`] because it cross-references files).
//!
//! All passes work on the [`crate::scan`] code view, so strings and
//! comments never fire a rule. Matching is lexical, not type-aware:
//! where a pass needs a receiver's type (is `m` in `m.values()` a
//! `HashMap`?) it uses the file's visible declarations (`let m =
//! HashMap::new()`, `m: HashMap<…>` fields/params). That
//! under-approximates cross-file receivers — which is why rule 1 also
//! denies hash containers in deterministic crates *by name*: a
//! container that is never declared can never be iterated invisibly.

use crate::scan::{Line, SourceFile};
use crate::{is_deterministic_path, Finding, Rule};

/// Iteration adapters that expose unordered container order.
const ITER_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_iter()",
    "into_keys()",
    "into_values()",
    "drain(",
    "retain(",
];

/// Ambient-nondeterminism sources (rule 2).
const AMBIENT: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
    ("thread_rng", "OS entropy"),
    ("from_entropy", "OS entropy"),
    ("env::var", "environment read"),
    (
        "available_parallelism",
        "ambient core count (route through runner::effective_worker_threads)",
    ),
];

/// Reduction adapters whose result depends on operand order for `f64`.
const REDUCTIONS: &[&str] = &[".sum()", ".sum::<", ".fold(", ".reduce(", ".product("];

/// Runs rules 1, 2, 4, 5, 6 over one file.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if is_deterministic_path(&file.rel_path) {
        let receivers = hash_receivers(file);
        unordered_iteration(file, &receivers, &mut out);
        ambient_nondeterminism(file, &mut out);
        float_order_hazard(file, &receivers, &mut out);
    }
    unsafe_hygiene(file, &mut out);
    allow_justification(file, &mut out);
    out
}

/// Byte offsets of `word` in `code` at identifier boundaries.
fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + word.len().max(1);
    }
    hits
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The identifier ending immediately before byte `end` (exclusive),
/// skipping trailing whitespace.
fn ident_before(code: &str, end: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = end;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let stop = i;
    while i > 0 && is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    if i == stop {
        None
    } else {
        Some(code[i..stop].to_string())
    }
}

/// The identifier starting at or after byte `start`, skipping
/// whitespace and `mut `.
pub(crate) fn ident_after(code: &str, start: usize) -> Option<String> {
    let rest = code.get(start..)?.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(rest[..end].to_string())
    }
}

/// Identifiers this file visibly declares as `HashMap`/`HashSet`:
/// `name: HashMap<…>` (fields, params, annotated lets) and
/// `let name = HashMap::new()` / `with_capacity` bindings.
fn hash_receivers(file: &SourceFile) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in &file.lines {
        let code = &line.code;
        for container in ["HashMap", "HashSet"] {
            for at in find_word(code, container) {
                // `name : HashMap<…>` (tolerating `&`/`&mut ` between).
                let mut i = at;
                let bytes = code.as_bytes();
                loop {
                    while i > 0 && (bytes[i - 1].is_ascii_whitespace() || bytes[i - 1] == b'&') {
                        i -= 1;
                    }
                    if i >= 3 && code[..i].ends_with("mut") {
                        i -= 3;
                    } else {
                        break;
                    }
                }
                if i > 0 && bytes[i - 1] == b':' && bytes.get(i.wrapping_sub(2)) != Some(&b':') {
                    if let Some(name) = ident_before(code, i - 1) {
                        names.push(name);
                    }
                }
                // `let name = HashMap::…` / `name = HashMap::new()`.
                if let Some(eq) = code[..at].rfind('=') {
                    let lhs = &code[..eq];
                    if code[eq..at].trim_start_matches('=').trim().is_empty() {
                        if let Some(name) = ident_before(lhs, lhs.len()) {
                            names.push(name);
                        }
                    }
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Joined code of lines `lo..=hi` (0-indexed, clamped) — the crude
/// "statement window" the suppression heuristics look at.
fn window(lines: &[Line], lo: isize, hi: isize) -> String {
    let lo = lo.max(0) as usize;
    let hi = (hi.max(0) as usize).min(lines.len().saturating_sub(1));
    let mut s = String::new();
    for line in &lines[lo..=hi.max(lo)] {
        s.push_str(&line.code);
        s.push(' ');
    }
    s
}

/// Is the iteration at line `i` "immediately sorted" — collected into
/// an ordered container or `.sort*`-ed within the next two lines?
fn immediately_sorted(lines: &[Line], i: usize) -> bool {
    let w = window(lines, i as isize, i as isize + 2);
    w.contains(".sort")
        || w.contains("collect::<BTree")
        || w.contains("BTreeMap<")
        || w.contains("BTreeSet<")
        || w.contains("BinaryHeap<")
}

/// Rule 1: hash containers and unordered iteration in deterministic
/// crates.
fn unordered_iteration(file: &SourceFile, receivers: &[String], out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let lineno = idx + 1;
        // (a) Deny the containers by name: declarations, imports, type
        // annotations, turbofish — any of them lets unordered
        // iteration creep in later without a visible declaration.
        for container in ["HashMap", "HashSet"] {
            if !find_word(code, container).is_empty() {
                out.push(Finding {
                    rule: Rule::UnorderedIteration,
                    path: file.rel_path.clone(),
                    line: lineno,
                    message: format!(
                        "`{container}` in deterministic crate: iteration order is \
                         per-process-random; use `BTree{}` or add a justified \
                         allowlist entry",
                        &container[4..]
                    ),
                    snippet: file.snippet(lineno),
                });
            }
        }
        // (b) Iteration calls on declared hash receivers — more precise
        // than (a); catches `for k in &m` / `m.values()` even when the
        // declaration was allowlisted.
        for recv in receivers {
            let dotted = format!("{recv}.");
            for at in find_word(code, recv) {
                let rest = &code[at..];
                let is_iter_call = rest.starts_with(&dotted)
                    && ITER_METHODS
                        .iter()
                        .any(|m| rest[dotted.len()..].starts_with(m));
                let is_for_loop = code[..at].trim_end().ends_with(" in")
                    || code[..at].trim_end().ends_with(" in &")
                    || code[..at].trim_end().ends_with(" in &mut");
                if (is_iter_call || is_for_loop) && !immediately_sorted(&file.lines, idx) {
                    out.push(Finding {
                        rule: Rule::UnorderedIteration,
                        path: file.rel_path.clone(),
                        line: lineno,
                        message: format!(
                            "unordered iteration over hash container `{recv}` in \
                             deterministic crate (not immediately sorted)"
                        ),
                        snippet: file.snippet(lineno),
                    });
                }
            }
        }
    }
}

/// Does `code` contain `pat` starting at an identifier boundary?
/// (Prefix match: `env::var` also catches `env::var_os`.)
fn find_prefix(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        if at == 0 || !is_ident_byte(code.as_bytes()[at - 1]) {
            return true;
        }
        from = at + pat.len().max(1);
    }
    false
}

/// Rule 2: ambient nondeterminism in deterministic crates.
fn ambient_nondeterminism(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        for (pat, what) in AMBIENT {
            if find_prefix(&line.code, pat) {
                out.push(Finding {
                    rule: Rule::AmbientNondeterminism,
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{pat}` ({what}) in deterministic crate: results must be a \
                         pure function of seeds and parameters"
                    ),
                    snippet: file.snippet(idx + 1),
                });
            }
        }
    }
}

/// Rule 4: `f64` reductions whose operand order comes from an
/// unordered source (hash iteration, `par_iter`) — float addition does
/// not commute bitwise.
fn float_order_hazard(file: &SourceFile, receivers: &[String], out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        if !REDUCTIONS.iter().any(|r| code.contains(r)) {
            continue;
        }
        // The statement feeding the reduction: this line and up to
        // three lines of chained adapters above it.
        let w = window(&file.lines, idx as isize - 3, idx as isize);
        let par = w.contains(".par_iter") || w.contains(".par_chunks");
        let hash_src = receivers.iter().any(|r| {
            [
                "iter()",
                "iter_mut()",
                "keys()",
                "values()",
                "values_mut()",
                "drain(",
            ]
            .iter()
            .any(|m| w.contains(&format!("{r}.{m}")))
        });
        if (par || hash_src) && !immediately_sorted(&file.lines, idx) {
            out.push(Finding {
                rule: Rule::FloatOrderHazard,
                path: file.rel_path.clone(),
                line: idx + 1,
                message: "float reduction over an unordered source: operand order \
                          is not stable, so the sum/min/max is not bit-reproducible"
                    .to_string(),
                snippet: file.snippet(idx + 1),
            });
        }
    }
}

/// Rule 5: every `unsafe` needs a `// SAFETY:` comment on the same
/// line or within the three lines above.
fn unsafe_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if find_word(&line.code, "unsafe").is_empty() {
            continue;
        }
        let lo = idx.saturating_sub(3);
        let documented = file.lines[lo..=idx]
            .iter()
            .any(|l| l.comment.contains("SAFETY:"));
        if !documented {
            out.push(Finding {
                rule: Rule::UnsafeHygiene,
                path: file.rel_path.clone(),
                line: idx + 1,
                message: "`unsafe` without a `// SAFETY:` comment documenting the \
                          invariant that makes it sound"
                    .to_string(),
                snippet: file.snippet(idx + 1),
            });
        }
    }
}

/// Rule 6: every `#[allow(...)]` / `#![allow(...)]` carries a one-line
/// justification comment (same line or the line above).
fn allow_justification(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        if !(code.contains("#[allow(") || code.contains("#![allow(")) {
            continue;
        }
        // A doc comment (`///` / `//!` — comment text starting `/` or
        // `!` after the lexer strips `//`) documents the *item*, not
        // the lint exemption; only a plain `//` comment counts.
        let plain = |l: &Line| {
            let c = l.comment.trim_start();
            !c.is_empty() && !c.starts_with('/') && !c.starts_with('!')
        };
        let justified = plain(line) || (idx > 0 && plain(&file.lines[idx - 1]));
        if !justified {
            out.push(Finding {
                rule: Rule::AllowJustification,
                path: file.rel_path.clone(),
                line: idx + 1,
                message: "`#[allow(...)]` without a justification comment (a plain \
                          `//` comment on the same line or the line above); \
                          justify it or delete it"
                    .to_string(),
                snippet: file.snippet(idx + 1),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile::lex(path.into(), text)
    }

    fn rules_of(f: &SourceFile) -> Vec<(Rule, usize)> {
        check_file(f)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn hash_receiver_extraction_sees_lets_fields_and_params() {
        let f = file(
            "crates/core/src/x.rs",
            "struct S { counts: HashMap<u32, u64> }\n\
             fn g(m: &mut HashMap<u32, u64>) {}\n\
             fn h() { let mut idx = HashMap::new(); }\n",
        );
        assert_eq!(hash_receivers(&f), vec!["counts", "idx", "m"]);
    }

    #[test]
    fn hash_container_denied_in_deterministic_crate_only() {
        let det = file("crates/core/src/x.rs", "use std::collections::HashMap;\n");
        assert_eq!(rules_of(&det), vec![(Rule::UnorderedIteration, 1)]);
        let io = file("crates/relay/src/x.rs", "use std::collections::HashMap;\n");
        assert!(rules_of(&io).is_empty());
    }

    #[test]
    fn iteration_over_declared_receiver_fires() {
        let f = file(
            "crates/core/src/x.rs",
            "fn g() {\n    let mut m = HashMap::new();\n    for k in m.keys() { use_(k); }\n}\n",
        );
        let got = rules_of(&f);
        // Line 2: container by name; line 3: iteration call.
        assert!(got.contains(&(Rule::UnorderedIteration, 2)));
        assert!(got.contains(&(Rule::UnorderedIteration, 3)));
    }

    #[test]
    fn immediately_sorted_iteration_is_suppressed() {
        let f = file(
            "crates/core/src/x.rs",
            "fn g(m: &HashMap<u32, u64>) {\n    let mut v: Vec<_> = m.keys().collect();\n    v.sort();\n}\n",
        );
        let got = rules_of(&f);
        // The declaration still fires (line 1); the sorted iteration
        // (line 2) does not.
        assert!(got.contains(&(Rule::UnorderedIteration, 1)));
        assert!(!got.contains(&(Rule::UnorderedIteration, 2)));
    }

    #[test]
    fn ambient_sources_fire_in_code_not_comments_or_strings() {
        let f = file(
            "crates/simnet/src/x.rs",
            "// Instant::now is forbidden\nlet s = \"SystemTime\";\nlet t = Instant::now();\n",
        );
        assert_eq!(rules_of(&f), vec![(Rule::AmbientNondeterminism, 3)]);
    }

    #[test]
    fn float_reduction_over_hash_source_fires_slice_source_does_not() {
        let bad = file(
            "crates/stats/src/x.rs",
            "fn g(m: &HashMap<u32, f64>) -> f64 {\n    m.values().sum::<f64>()\n}\n",
        );
        let got = rules_of(&bad);
        assert!(got.contains(&(Rule::FloatOrderHazard, 2)));
        let ok = file(
            "crates/stats/src/x.rs",
            "fn g(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
        );
        assert!(rules_of(&ok).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = file("crates/relay/src/x.rs", "let p = unsafe { deref(q) };\n");
        assert_eq!(rules_of(&bad), vec![(Rule::UnsafeHygiene, 1)]);
        let ok = file(
            "crates/relay/src/x.rs",
            "// SAFETY: q is valid for the call's duration.\nlet p = unsafe { deref(q) };\n",
        );
        assert!(rules_of(&ok).is_empty());
    }

    #[test]
    fn allow_requires_justification() {
        let bad = file("crates/core/src/x.rs", "#[allow(dead_code)]\nfn f() {}\n");
        assert_eq!(rules_of(&bad), vec![(Rule::AllowJustification, 1)]);
        let same_line = file(
            "crates/core/src/x.rs",
            "#[allow(dead_code)] // kept for the v2 wire format\nfn f() {}\n",
        );
        assert!(rules_of(&same_line).is_empty());
        let line_above = file(
            "crates/core/src/x.rs",
            "// mirrors the protocol's free parameters\n#[allow(clippy::too_many_arguments)]\nfn f() {}\n",
        );
        assert!(rules_of(&line_above).is_empty());
    }
}
