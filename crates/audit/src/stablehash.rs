//! Rule 3: `StableHash` exhaustiveness.
//!
//! The sweep cache keys studies by 128-bit structural fingerprints
//! built from `StableHash` impls (`ir-artifact`). The impls use
//! exhaustive destructuring, so a *new field on an impl'd type* is a
//! compile error — but two hazards slip through the compiler:
//!
//! * an impl written with field access instead of destructuring can
//!   silently skip a field (a cache collision between configs that
//!   differ only in that field);
//! * a **new nested config type** can be added as a field and hashed
//!   via a hand-rolled encoding elsewhere — or not at all.
//!
//! This pass cross-references struct/enum definitions in deterministic
//! crates against every `impl StableHash for …` in the workspace:
//!
//! * every impl'd local type must *mention every field/variant* in its
//!   impl body (c1 — the destructure check);
//! * every field type reachable from an impl'd type that names a local
//!   struct/enum must itself have an impl (c2 — reachability);
//! * every configured fingerprint root (`[config] fingerprint_roots`
//!   in `audit.allow.toml`) must be defined and impl'd (c3 — the
//!   pinned entry points of the sweep fingerprints).

use crate::scan::SourceFile;
use crate::{is_deterministic_path, Finding, Rule};
use std::collections::BTreeMap;

/// Shape of a parsed type definition.
#[derive(Debug, Clone)]
enum Shape {
    /// Named-field struct: `(field name, field type text)`.
    Named(Vec<(String, String)>),
    /// Tuple struct with `n` fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: `(variant name, payload type text)`.
    Enum(Vec<(String, String)>),
}

#[derive(Debug, Clone)]
struct TypeDef {
    shape: Shape,
    path: String,
    line: usize,
}

#[derive(Debug, Clone)]
struct ImplBlock {
    type_name: String,
    path: String,
    line: usize,
    body: String,
}

/// Std/primitive type names that always hash stably (impl'd in
/// `ir-artifact::hash` or structurally transparent).
const KNOWN_STABLE: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str", "String", "Vec", "Option", "Box", "Arc",
];

/// Runs the exhaustiveness pass over all lexed files.
pub fn check(files: &[SourceFile], fingerprint_roots: &[String]) -> Vec<Finding> {
    let mut defs: BTreeMap<String, TypeDef> = BTreeMap::new();
    let mut impls: Vec<ImplBlock> = Vec::new();
    for file in files {
        if is_deterministic_path(&file.rel_path) {
            collect_defs(file, &mut defs);
        }
        collect_impls(file, &mut impls);
    }
    let impl_names: Vec<&str> = impls.iter().map(|i| i.type_name.as_str()).collect();

    let mut out = Vec::new();
    for imp in &impls {
        let Some(def) = defs.get(&imp.type_name) else {
            continue; // generic/std impl (`Vec<T>`, primitives macro)
        };
        // c1: every field/variant mentioned in the impl body.
        match &def.shape {
            Shape::Named(fields) => {
                for (name, _) in fields {
                    if !contains_word(&imp.body, name) {
                        out.push(finding(
                            imp,
                            format!(
                                "impl StableHash for {} never mentions field `{name}`: \
                                 a config differing only in `{name}` would collide in \
                                 the study cache",
                                imp.type_name
                            ),
                        ));
                    }
                }
            }
            Shape::Tuple(n) => {
                let destructured = imp.body.contains(&format!("{}(", imp.type_name));
                for i in 0..*n {
                    if !destructured && !imp.body.contains(&format!(".{i}")) {
                        out.push(finding(
                            imp,
                            format!(
                                "impl StableHash for {} never hashes tuple field `.{i}`",
                                imp.type_name
                            ),
                        ));
                    }
                }
            }
            Shape::Unit => {}
            Shape::Enum(variants) => {
                for (name, _) in variants {
                    if !contains_word(&imp.body, name) {
                        out.push(finding(
                            imp,
                            format!(
                                "impl StableHash for {} never mentions variant `{name}`",
                                imp.type_name
                            ),
                        ));
                    }
                }
            }
        }
        // c2: reachability — local types named in field/payload types
        // must have impls of their own.
        let field_types: Vec<(String, String)> = match &def.shape {
            Shape::Named(fields) => fields.clone(),
            Shape::Enum(variants) => variants.clone(),
            _ => Vec::new(),
        };
        for (fname, ftype) in field_types {
            for token in type_tokens(&ftype) {
                if token == imp.type_name || KNOWN_STABLE.contains(&token.as_str()) {
                    continue;
                }
                if defs.contains_key(&token) && !impl_names.contains(&token.as_str()) {
                    let d = &defs[&token];
                    out.push(Finding {
                        rule: Rule::StableHashExhaustiveness,
                        path: d.path.clone(),
                        line: d.line,
                        message: format!(
                            "`{token}` is fingerprint-reachable (field `{fname}` of \
                             impl'd type `{}`) but has no StableHash impl",
                            imp.type_name
                        ),
                        snippet: format!("struct/enum {token}"),
                    });
                }
            }
        }
    }
    // c3: configured roots must exist and be impl'd.
    for root in fingerprint_roots {
        if !defs.contains_key(root) {
            out.push(Finding {
                rule: Rule::StableHashExhaustiveness,
                path: "audit.allow.toml".to_string(),
                line: 0,
                message: format!(
                    "fingerprint root `{root}` is not defined in any deterministic \
                     crate (stale config entry?)"
                ),
                snippet: format!("fingerprint_roots: {root}"),
            });
        } else if !impl_names.contains(&root.as_str()) {
            let d = &defs[root];
            out.push(Finding {
                rule: Rule::StableHashExhaustiveness,
                path: d.path.clone(),
                line: d.line,
                message: format!("fingerprint root `{root}` has no StableHash impl"),
                snippet: format!("struct/enum {root}"),
            });
        }
    }
    out
}

fn finding(imp: &ImplBlock, message: String) -> Finding {
    Finding {
        rule: Rule::StableHashExhaustiveness,
        path: imp.path.clone(),
        line: imp.line,
        message,
        snippet: format!("impl StableHash for {}", imp.type_name),
    }
}

fn contains_word(body: &str, word: &str) -> bool {
    let bytes = body.as_bytes();
    let mut from = 0;
    while let Some(pos) = body[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len().max(1);
    }
    false
}

fn ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Type-name tokens of a field type text: identifiers starting with an
/// uppercase letter (`Vec<Option<FaultSpec>>` → `Vec`, `Option`,
/// `FaultSpec`).
fn type_tokens(ftype: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in ftype.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            push_token(&mut tokens, &mut cur);
        }
    }
    push_token(&mut tokens, &mut cur);
    tokens
}

fn push_token(tokens: &mut Vec<String>, cur: &mut String) {
    if cur.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        tokens.push(std::mem::take(cur));
    } else {
        cur.clear();
    }
}

/// Extracts struct/enum definitions from one file's code view.
fn collect_defs(file: &SourceFile, defs: &mut BTreeMap<String, TypeDef>) {
    let joined = joined_code(file);
    for kw in ["struct", "enum"] {
        let mut from = 0;
        while let Some((at, line)) = next_word(&joined, kw, from) {
            from = at + kw.len();
            let Some(name) = crate::rules::ident_after(&joined.text, at + kw.len()) else {
                continue;
            };
            // Skip generics to the body opener.
            let mut i = at + kw.len();
            let bytes = joined.text.as_bytes();
            let mut angle = 0i32;
            let (mut opener, mut opener_at) = (' ', joined.text.len());
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => angle += 1,
                    b'>' => angle -= 1,
                    b'{' | b'(' | b';' if angle <= 0 => {
                        opener = bytes[i] as char;
                        opener_at = i;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            let shape = match opener {
                ';' => Shape::Unit,
                '(' => {
                    let inner = balanced(&joined.text, opener_at, '(', ')');
                    let n = if inner.trim().is_empty() {
                        0
                    } else {
                        top_level_split(&inner).len()
                    };
                    Shape::Tuple(n)
                }
                '{' => {
                    let inner = balanced(&joined.text, opener_at, '{', '}');
                    if kw == "struct" {
                        Shape::Named(parse_named_fields(&inner))
                    } else {
                        Shape::Enum(parse_variants(&inner))
                    }
                }
                _ => continue,
            };
            defs.entry(name).or_insert(TypeDef {
                shape,
                path: file.rel_path.clone(),
                line,
            });
        }
    }
}

/// Extracts `impl StableHash for X { … }` blocks.
fn collect_impls(file: &SourceFile, impls: &mut Vec<ImplBlock>) {
    let joined = joined_code(file);
    let pat = "StableHash for ";
    let mut from = 0;
    while let Some((at, line)) = next_substr(&joined, pat, from) {
        from = at + pat.len();
        let Some(name) = crate::rules::ident_after(&joined.text, at + pat.len()) else {
            continue;
        };
        // Body: from the next `{` to its matching `}`.
        let Some(open) = joined.text[at..].find('{').map(|o| at + o) else {
            continue;
        };
        let body = balanced(&joined.text, open, '{', '}');
        impls.push(ImplBlock {
            type_name: name,
            path: file.rel_path.clone(),
            line,
            body,
        });
    }
}

/// The file's code view joined with `\n`, plus line-offset table.
struct Joined {
    text: String,
    line_starts: Vec<usize>,
}

fn joined_code(file: &SourceFile) -> Joined {
    let mut text = String::new();
    let mut line_starts = Vec::with_capacity(file.lines.len());
    for line in &file.lines {
        line_starts.push(text.len());
        text.push_str(&line.code);
        text.push('\n');
    }
    Joined { text, line_starts }
}

impl Joined {
    fn line_of(&self, at: usize) -> usize {
        match self.line_starts.binary_search(&at) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point: at belongs to line i (1-indexed)
        }
    }
}

fn next_word(j: &Joined, word: &str, from: usize) -> Option<(usize, usize)> {
    let mut start = from;
    while let Some(pos) = j.text[start..].find(word) {
        let at = start + pos;
        let bytes = j.text.as_bytes();
        let before_ok = at == 0 || !ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some((at, j.line_of(at)));
        }
        start = at + word.len();
    }
    None
}

fn next_substr(j: &Joined, pat: &str, from: usize) -> Option<(usize, usize)> {
    j.text[from..].find(pat).map(|pos| {
        let at = from + pos;
        (at, j.line_of(at))
    })
}

/// Text between the delimiter at `open` and its balanced match.
fn balanced(text: &str, open: usize, op: char, cl: char) -> String {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == op as u8 {
            depth += 1;
        } else if b == cl as u8 {
            depth -= 1;
            if depth == 0 {
                return text[open + 1..i].to_string();
            }
        }
    }
    text[open + 1..].to_string()
}

/// Splits `inner` on top-level commas (angle/paren/bracket aware).
fn top_level_split(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in inner.chars() {
        match c {
            '<' | '(' | '[' | '{' => depth += 1,
            '>' | ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

/// `name: Type` pairs of a named-struct body.
fn parse_named_fields(inner: &str) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    for part in top_level_split(inner) {
        let part = strip_attrs(part.trim());
        let Some((lhs, rhs)) = split_top_level_colon(&part) else {
            continue;
        };
        let name = lhs.trim().trim_start_matches("pub ").trim();
        let name = name.rsplit(' ').next().unwrap_or(name);
        if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.is_empty() {
            fields.push((name.to_string(), rhs.trim().to_string()));
        }
    }
    fields
}

/// `(variant, payload text)` pairs of an enum body.
fn parse_variants(inner: &str) -> Vec<(String, String)> {
    let mut variants = Vec::new();
    for part in top_level_split(inner) {
        let part = strip_attrs(part.trim());
        let name_end = part
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(part.len());
        let name = &part[..name_end];
        if name.is_empty() || !name.chars().next().unwrap().is_ascii_uppercase() {
            continue;
        }
        let payload = part[name_end..]
            .trim_start_matches(['(', '{'])
            .trim_end_matches([')', '}'])
            .to_string();
        variants.push((name.to_string(), payload));
    }
    variants
}

/// Drops leading `#[...]` attributes and doc text from a field/variant
/// chunk (the lexer already removed comments).
fn strip_attrs(part: &str) -> String {
    let mut s = part.trim();
    while let Some(rest) = s.strip_prefix("#[") {
        match rest.find(']') {
            Some(end) => s = rest[end + 1..].trim_start(),
            None => break,
        }
    }
    s.to_string()
}

/// Splits on the first top-level `:` that is not `::`.
fn split_top_level_colon(part: &str) -> Option<(String, String)> {
    let bytes = part.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' | b'(' | b'[' | b'{' => depth += 1,
            b'>' | b')' | b']' | b'}' => depth -= 1,
            b':' if depth == 0 => {
                if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    continue;
                }
                return Some((part[..i].to_string(), part[i + 1..].to_string()));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &[(&str, &str)], roots: &[&str]) -> Vec<String> {
        let files: Vec<SourceFile> = src
            .iter()
            .map(|(p, t)| SourceFile::lex(p.to_string(), t))
            .collect();
        let roots: Vec<String> = roots.iter().map(|r| r.to_string()).collect();
        check(&files, &roots)
            .into_iter()
            .map(|f| f.message)
            .collect()
    }

    const CFG: &str = "pub struct Cfg { pub seed: u64, pub nested: Nested }\n\
                       pub struct Nested { pub k: usize }\n";

    #[test]
    fn exhaustive_impl_with_covered_nested_type_is_clean() {
        let stable = "impl StableHash for Cfg { fn stable_hash(&self, h: &mut H) {\n\
                      let Cfg { seed, nested } = self; seed.h(); nested.h(); } }\n\
                      impl StableHash for Nested { fn stable_hash(&self, h: &mut H) {\n\
                      let Nested { k } = self; k.h(); } }\n";
        let msgs = audit(
            &[
                ("crates/core/src/t.rs", CFG),
                ("crates/core/src/stable.rs", stable),
            ],
            &["Cfg"],
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn missing_field_mention_is_flagged() {
        let stable = "impl StableHash for Cfg { fn stable_hash(&self, h: &mut H) {\n\
                      self.seed.h(); } }\n\
                      impl StableHash for Nested { fn stable_hash(&self, h: &mut H) {\n\
                      let Nested { k } = self; k.h(); } }\n";
        let msgs = audit(
            &[
                ("crates/core/src/t.rs", CFG),
                ("crates/core/src/stable.rs", stable),
            ],
            &[],
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("never mentions field `nested`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn unimpl_nested_config_struct_is_flagged() {
        let stable = "impl StableHash for Cfg { fn stable_hash(&self, h: &mut H) {\n\
                      let Cfg { seed, nested } = self; seed.h(); nested.h(); } }\n";
        let msgs = audit(
            &[
                ("crates/core/src/t.rs", CFG),
                ("crates/core/src/stable.rs", stable),
            ],
            &[],
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("`Nested` is fingerprint-reachable")),
            "{msgs:?}"
        );
    }

    #[test]
    fn enum_variants_and_roots_are_checked() {
        let src = "pub enum Mode { Fast, Careful { retries: u32 } }\n";
        let stable = "impl StableHash for Mode { fn stable_hash(&self, h: &mut H) {\n\
                      match self { Mode::Fast => h.t(0) } } }\n";
        let msgs = audit(
            &[
                ("crates/simnet/src/t.rs", src),
                ("crates/simnet/src/stable.rs", stable),
            ],
            &["Mode", "Ghost"],
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("never mentions variant `Careful`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("root `Ghost` is not defined")),
            "{msgs:?}"
        );
    }

    #[test]
    fn tuple_struct_must_hash_every_index() {
        let src = "pub struct Pair(pub u32, pub u32);\n";
        let stable = "impl StableHash for Pair { fn stable_hash(&self, h: &mut H) {\n\
                      self.0.stable_hash(h); } }\n";
        let msgs = audit(
            &[
                ("crates/core/src/t.rs", src),
                ("crates/core/src/stable.rs", stable),
            ],
            &[],
        );
        assert!(
            msgs.iter().any(|m| m.contains("tuple field `.1`")),
            "{msgs:?}"
        );
    }
}
