//! `audit.allow.toml` — the reviewed-exemption ledger.
//!
//! Every hazard the auditor tolerates is written down **per site**,
//! with a mandatory reason, and checked both ways: a finding with no
//! entry fails the audit, and an entry matching no finding is *stale*
//! and fails the audit too — exemptions cannot outlive the code they
//! excuse. The file is a small TOML subset parsed by hand (the build
//! environment has no `toml` crate):
//!
//! ```toml
//! [config]
//! fingerprint_roots = ["Calibration", "Schedule"]
//!
//! [[allow]]
//! rule = "ambient-nondeterminism"
//! path = "crates/artifact/src/cache.rs"
//! pattern = "SystemTime"
//! reason = "GC orders eviction by mtime; never hashed into artefacts"
//! ```
//!
//! Matching: the entry's `rule` and `path` must equal the finding's,
//! and the finding's snippet must contain `pattern`. Only the exact
//! keys above are accepted; anything else is a parse error, so typos
//! cannot silently disable an exemption.

use crate::{Finding, Rule};

/// One reviewed exemption.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry exempts (must be a known id).
    pub rule: String,
    /// Root-relative path, exact match.
    pub path: String,
    /// Substring the finding's snippet must contain.
    pub pattern: String,
    /// Mandatory human justification.
    pub reason: String,
    /// Line in `audit.allow.toml` where the entry starts (diagnostics).
    pub line: usize,
}

/// Parsed `audit.allow.toml`.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entry points of the sweep-study fingerprints; each must be
    /// defined and `StableHash`-impl'd (rule 3, check c3).
    pub fingerprint_roots: Vec<String>,
    /// Per-site exemptions, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Index of the first entry exempting `finding`, if any.
    pub fn matches(&self, finding: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == finding.rule.id()
                && e.path == finding.path
                && finding.snippet.contains(&e.pattern)
        })
    }

    /// Parses the TOML subset; returns a line-tagged message on any
    /// structural problem.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Config,
            Allow,
        }
        let mut out = Allowlist::default();
        let mut section = Section::None;
        let mut cur: Option<(AllowEntry, usize)> = None;
        let mut pending_array: Option<String> = None; // multiline fingerprint_roots

        let finish =
            |cur: &mut Option<(AllowEntry, usize)>, out: &mut Allowlist| -> Result<(), String> {
                if let Some((entry, start)) = cur.take() {
                    for (field, value) in [
                        ("rule", &entry.rule),
                        ("path", &entry.path),
                        ("pattern", &entry.pattern),
                        ("reason", &entry.reason),
                    ] {
                        if value.is_empty() {
                            return Err(format!(
                                "allow entry at line {start}: missing or empty `{field}`"
                            ));
                        }
                    }
                    if !Rule::ALL.iter().any(|r| r.id() == entry.rule) {
                        return Err(format!(
                            "allow entry at line {start}: unknown rule `{}`",
                            entry.rule
                        ));
                    }
                    out.entries.push(entry);
                }
                Ok(())
            };

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if let Some(acc) = pending_array.as_mut() {
                acc.push_str(&line);
                if line.contains(']') {
                    let acc = pending_array.take().unwrap();
                    out.fingerprint_roots = parse_string_array(&acc, lineno)?;
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if line == "[config]" {
                finish(&mut cur, &mut out)?;
                section = Section::Config;
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut cur, &mut out)?;
                section = Section::Allow;
                cur = Some((
                    AllowEntry {
                        rule: String::new(),
                        path: String::new(),
                        pattern: String::new(),
                        reason: String::new(),
                        line: lineno,
                    },
                    lineno,
                ));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {lineno}: unknown section `{line}`"));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match section {
                Section::None => {
                    return Err(format!("line {lineno}: `{key}` outside any section"));
                }
                Section::Config => {
                    if key != "fingerprint_roots" {
                        return Err(format!("line {lineno}: unknown [config] key `{key}`"));
                    }
                    if value.contains(']') {
                        out.fingerprint_roots = parse_string_array(value, lineno)?;
                    } else {
                        pending_array = Some(value.to_string());
                    }
                }
                Section::Allow => {
                    let entry = &mut cur.as_mut().expect("entry open in Allow section").0;
                    let value = parse_string(value, lineno)?;
                    match key {
                        "rule" => entry.rule = value,
                        "path" => entry.path = value,
                        "pattern" => entry.pattern = value,
                        "reason" => entry.reason = value,
                        _ => {
                            return Err(format!("line {lineno}: unknown [[allow]] key `{key}`"));
                        }
                    }
                }
            }
        }
        if pending_array.is_some() {
            return Err("unterminated fingerprint_roots array".to_string());
        }
        finish(&mut cur, &mut out)?;
        Ok(out)
    }

    /// Loads and parses the file at `path`; a missing file is an empty
    /// allowlist (a fresh workspace needs none).
    pub fn load(path: &std::path::Path) -> Result<Allowlist, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }
}

/// Strips a `#` comment that is outside any `"…"` string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A double-quoted TOML string (no escape support — patterns are plain
/// code substrings).
fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a \"quoted\" string, got `{v}`"))?;
    Ok(inner.to_string())
}

/// `["A", "B", …]` — possibly accumulated across lines.
fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected `[ ... ]` array, got `{v}`"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# reviewed exemptions
[config]
fingerprint_roots = [
    "Calibration",
    "Schedule",
]

[[allow]]
rule = "ambient-nondeterminism"
path = "crates/artifact/src/cache.rs"
pattern = "SystemTime"
reason = "GC orders eviction by mtime; never hashed"
"#;

    #[test]
    fn parses_config_and_entries() {
        let a = Allowlist::parse(SAMPLE).unwrap();
        assert_eq!(a.fingerprint_roots, ["Calibration", "Schedule"]);
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].rule, "ambient-nondeterminism");
    }

    #[test]
    fn matcher_requires_rule_path_and_pattern() {
        let a = Allowlist::parse(SAMPLE).unwrap();
        let mut f = Finding {
            rule: Rule::AmbientNondeterminism,
            path: "crates/artifact/src/cache.rs".into(),
            line: 10,
            message: String::new(),
            snippet: "let t = SystemTime::now();".into(),
        };
        assert_eq!(a.matches(&f), Some(0));
        f.path = "crates/artifact/src/dag.rs".into();
        assert_eq!(a.matches(&f), None, "path must match exactly");
        f.path = "crates/artifact/src/cache.rs".into();
        f.snippet = "let t = Instant::now();".into();
        assert_eq!(a.matches(&f), None, "snippet must contain the pattern");
        f.snippet = "let t = SystemTime::now();".into();
        f.rule = Rule::UnorderedIteration;
        assert_eq!(a.matches(&f), None, "rule must match");
    }

    #[test]
    fn empty_reason_is_rejected() {
        let bad = "[[allow]]\nrule = \"unsafe-hygiene\"\npath = \"src/x.rs\"\n\
                   pattern = \"unsafe\"\nreason = \"\"\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(err.contains("empty `reason`"), "{err}");
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let bad = "[[allow]]\nrule = \"no-such-rule\"\npath = \"src/x.rs\"\n\
                   pattern = \"x\"\nreason = \"y\"\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn unknown_key_is_rejected() {
        let bad = "[[allow]]\nrule = \"unsafe-hygiene\"\npath = \"src/x.rs\"\n\
                   pattern = \"x\"\nreason = \"y\"\nnote = \"z\"\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(err.contains("unknown [[allow]] key"), "{err}");
    }
}
