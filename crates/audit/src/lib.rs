//! `ir-audit` — the workspace determinism auditor.
//!
//! Every result this reproduction ships (goldens, `StableHash`
//! artefact fingerprints, the sharded engine's thread-count
//! bit-identity) rests on determinism that the test suites enforce
//! only *dynamically* — a golden diff catches a divergence after it is
//! written. This crate fences the invariant **statically**: a lexical
//! analysis pass over the whole workspace (the environment has no
//! `syn`; see [`scan`] for the line-view lexer it uses instead) that
//! fails CI on:
//!
//! 1. **unordered iteration** ([`rules`]) — `HashMap`/`HashSet` use or
//!    iteration (`iter`, `keys`, `values`, `into_iter`, `drain`,
//!    `retain`) in deterministic crates, unless allowlisted or
//!    immediately sorted;
//! 2. **ambient nondeterminism** — `Instant::now`, `SystemTime`,
//!    `thread_rng`/`from_entropy`, `env::var`,
//!    `available_parallelism` outside allowlisted I/O sites;
//! 3. **`StableHash` exhaustiveness** ([`stablehash`]) — every type
//!    reachable from a sweep-study fingerprint has an
//!    exhaustive-destructure impl; a new field or nested config struct
//!    is an audit failure, not a silent cache collision;
//! 4. **float-order hazards** — `f64` reductions over unordered
//!    (hash-iterated or parallel) sources;
//! 5. **unsafe hygiene** — `unsafe` without a `// SAFETY:` comment;
//! 6. **allow justification** — `#[allow(...)]` without a one-line
//!    justification comment.
//!
//! Exemptions live in `audit.allow.toml` ([`allowlist`]): one reviewed
//! entry per site, with a mandatory reason; an entry that no longer
//! matches any finding is **stale** and fails the audit, so the
//! allowlist can only shrink with the hazards it covers.

pub mod allowlist;
pub mod report;
pub mod rules;
pub mod scan;
pub mod stablehash;

use allowlist::Allowlist;
use scan::SourceFile;
use std::path::Path;

/// Crates whose results must be bit-reproducible: the engine, the
/// session/model layers, the workload generators, the artefact cache,
/// the experiment runners, the policy plane, the striped chunk
/// scheduler, and the statistics kernels — plus the root package's
/// `src/` and `tests/` (golden comparisons). `relay` (real sockets),
/// `telemetry` (export-only), `http`/`tcp` (protocol plumbing
/// exercised via simnet), `bench`, and this crate are I/O or tooling
/// and exempt from rules 1–4; rules 5–6 apply everywhere.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "simnet",
    "core",
    "workload",
    "artifact",
    "experiments",
    "policy",
    "stats",
    "stripe",
];

/// True when `rel_path` belongs to a crate that must stay
/// deterministic (see [`DETERMINISTIC_CRATES`]).
pub fn is_deterministic_path(rel_path: &str) -> bool {
    if rel_path.starts_with("src/") || rel_path.starts_with("tests/") {
        return true;
    }
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some((krate, _)) = rest.split_once('/') {
            return DETERMINISTIC_CRATES.contains(&krate);
        }
    }
    false
}

/// The audited hazard classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Rule 1: hash-container use / unordered iteration in
    /// deterministic crates.
    UnorderedIteration,
    /// Rule 2: wall clock, entropy, env, ambient core counts.
    AmbientNondeterminism,
    /// Rule 3: `StableHash` coverage of fingerprint-reachable types.
    StableHashExhaustiveness,
    /// Rule 4: `f64` reductions over unordered sources.
    FloatOrderHazard,
    /// Rule 5: `unsafe` without `// SAFETY:`.
    UnsafeHygiene,
    /// Rule 6: `#[allow(...)]` without a justification comment.
    AllowJustification,
}

impl Rule {
    /// Stable machine-readable id, used by `audit.allow.toml` and the
    /// findings JSON.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::AmbientNondeterminism => "ambient-nondeterminism",
            Rule::StableHashExhaustiveness => "stable-hash-exhaustiveness",
            Rule::FloatOrderHazard => "float-order-hazard",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::AllowJustification => "allow-justification",
        }
    }

    /// Every rule, for allowlist validation.
    pub const ALL: &'static [Rule] = &[
        Rule::UnorderedIteration,
        Rule::AmbientNondeterminism,
        Rule::StableHashExhaustiveness,
        Rule::FloatOrderHazard,
        Rule::UnsafeHygiene,
        Rule::AllowJustification,
    ];
}

/// One audit finding, before allowlist evaluation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Hazard class.
    pub rule: Rule,
    /// Root-relative `/`-separated path.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description of the hazard.
    pub message: String,
    /// Trimmed code view of the offending line (what allowlist
    /// patterns match against).
    pub snippet: String,
}

/// A finding plus its allowlist disposition.
#[derive(Debug, Clone)]
pub struct EvaluatedFinding {
    /// The underlying finding.
    pub finding: Finding,
    /// Index into the allowlist's entries when exempted.
    pub allowed_by: Option<usize>,
}

/// Everything one audit run produced.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Every finding, in deterministic (path, line, rule) order.
    pub findings: Vec<EvaluatedFinding>,
    /// Allowlist entries that matched **zero** findings — stale
    /// exemptions; their presence fails the audit.
    pub stale_entries: Vec<usize>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl AuditOutcome {
    /// Findings not covered by the allowlist.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.allowed_by.is_none())
            .map(|f| &f.finding)
    }

    /// True when the workspace passes: no denied finding, no stale
    /// allowlist entry.
    pub fn clean(&self) -> bool {
        self.denied().next().is_none() && self.stale_entries.is_empty()
    }
}

/// Runs every rule pass over the lexed `files` and evaluates the
/// allowlist (including stale-entry detection).
pub fn audit_files(files: &[SourceFile], allow: &Allowlist) -> AuditOutcome {
    let mut findings: Vec<Finding> = Vec::new();
    for file in files {
        findings.extend(rules::check_file(file));
    }
    findings.extend(stablehash::check(files, &allow.fingerprint_roots));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });

    let mut used = vec![false; allow.entries.len()];
    let findings: Vec<EvaluatedFinding> = findings
        .into_iter()
        .map(|finding| {
            let allowed_by = allow.matches(&finding);
            if let Some(i) = allowed_by {
                used[i] = true;
            }
            EvaluatedFinding {
                finding,
                allowed_by,
            }
        })
        .collect();
    let stale_entries = used
        .iter()
        .enumerate()
        .filter(|(_, u)| !**u)
        .map(|(i, _)| i)
        .collect();
    AuditOutcome {
        findings,
        stale_entries,
        files_scanned: files.len(),
    }
}

/// Scans `root` and audits it against `allow`.
pub fn audit_workspace(root: &Path, allow: &Allowlist) -> Result<AuditOutcome, String> {
    let files = scan::scan_workspace(root)?;
    Ok(audit_files(&files, allow))
}
