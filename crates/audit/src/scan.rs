//! Source scanning: directory walk + a comment/string-aware line view.
//!
//! The auditor has no `syn` (the build environment is offline), so the
//! rule passes work over a **lexed line view** instead of an AST: for
//! every physical line we produce the line's *code* text — with string
//! and char literals replaced by placeholders and comments removed —
//! and the line's *comment* text. Rules that match identifiers and
//! call patterns use the code view (so a comment mentioning
//! `HashMap.iter()` never fires), while hygiene rules (`// SAFETY:`,
//! allow justifications) use the comment view.

use std::fs;
use std::path::{Path, PathBuf};

/// One physical source line, split into its lexical halves.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text: string/char literals collapsed to `""`/`' '`,
    /// comments stripped.
    pub code: String,
    /// Comment text (without the `//` / `/*` markers).
    pub comment: String,
}

/// A lexed source file, path relative to the audit root.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Root-relative path with `/` separators, e.g.
    /// `crates/simnet/src/sim.rs`.
    pub rel_path: String,
    /// Lexed lines (1-indexed when reported: line `i` is `lines[i-1]`).
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lexes `text` into per-line code/comment views.
    pub fn lex(rel_path: String, text: &str) -> SourceFile {
        SourceFile {
            rel_path,
            lines: lex_lines(text),
        }
    }

    /// The raw code view of 1-indexed `line`, trimmed, for reports.
    pub fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.code.trim().to_string())
            .unwrap_or_default()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Nested block comments carry their depth.
    BlockComment(u32),
    Str,
    /// Raw string with `n` `#` marks: ends at `"` followed by `n` `#`s.
    RawStr(u32),
}

fn lex_lines(text: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for raw in text.lines() {
        let mut line = Line::default();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        // A line comment never spans lines.
        if mode == Mode::LineComment {
            mode = Mode::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        line.comment.push_str(&raw[byte_at(raw, i + 2)..]);
                        mode = Mode::LineComment;
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        line.code.push_str("\"\"");
                        mode = Mode::Str;
                        i += 1;
                    }
                    'r' | 'b' if is_raw_str_start(&chars, i) => {
                        let (hashes, skip) = raw_str_open(&chars, i);
                        line.code.push_str("\"\"");
                        mode = Mode::RawStr(hashes);
                        i += skip;
                    }
                    '\'' => {
                        if let Some(skip) = char_literal_len(&chars, i) {
                            line.code.push_str("' '");
                            i += skip;
                        } else {
                            // A lifetime tick.
                            line.code.push(c);
                            i += 1;
                        }
                    }
                    _ => {
                        line.code.push(c);
                        i += 1;
                    }
                },
                Mode::LineComment => unreachable!("reset at line start"),
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                Mode::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        lines.push(line);
    }
    lines
}

/// Byte offset of char index `ci` in `s` (lines are short; linear is
/// fine).
fn byte_at(s: &str, ci: usize) -> usize {
    s.char_indices().nth(ci).map(|(b, _)| b).unwrap_or(s.len())
}

/// Is `chars[i..]` the start of a raw (byte) string literal —
/// `r"`, `r#"`, `br"`, … — and not just an identifier containing `r`?
fn is_raw_str_start(chars: &[char], i: usize) -> bool {
    // Reject when preceded by an identifier char (e.g. `for` / `var`).
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Hash count and char length of the raw-string opener at `i`.
fn raw_str_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    (hashes, j - i)
}

/// Does the `"` at `i` close a raw string with `hashes` marks?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Char length of a char literal starting at the `'` at `i`, or `None`
/// when the tick is a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escape: scan to the closing quote (caps at 12 for \u{...}).
            for k in 2..12 {
                if chars.get(i + k) == Some(&'\'') {
                    return Some(k + 1);
                }
            }
            None
        }
        _ => {
            if chars.get(i + 2) == Some(&'\'') {
                Some(3)
            } else {
                None
            }
        }
    }
}

/// Directories never scanned, at any depth.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "results", "fixtures"];

/// Walks `root` for `.rs` files (skipping `target`, `vendor`, `.git`,
/// `results`, and `fixtures` at any depth) and lexes
/// them. Paths come back root-relative, sorted, `/`-separated — the
/// scan order is deterministic so findings reports are byte-stable.
pub fn scan_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let text = fs::read_to_string(root.join(&p))
            .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let rel = p
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::lex(rel, &text));
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} escapes root: {e}", path.display()))?;
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(text: &str) -> Vec<String> {
        SourceFile::lex("t.rs".into(), text)
            .lines
            .into_iter()
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn strings_and_comments_leave_the_code_view() {
        let code = code_of("let x = \"HashMap.iter()\"; // Instant::now\nuse a;");
        assert_eq!(code[0], "let x = \"\"; ");
        assert_eq!(code[1], "use a;");
    }

    #[test]
    fn comment_view_keeps_text() {
        let f = SourceFile::lex("t.rs".into(), "unsafe {} // SAFETY: fine");
        assert!(f.lines[0].comment.contains("SAFETY: fine"));
        assert!(f.lines[0].code.contains("unsafe"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let code = code_of("a /* x /* y */ HashMap */ b\nstill /* open\nHashMap\n*/ done");
        assert_eq!(code[0], "a  b");
        assert!(!code[2].contains("HashMap"));
        assert_eq!(code[3], " done");
    }

    #[test]
    fn raw_strings_are_collapsed() {
        let code = code_of(r####"let s = r#"Instant::now"#; let t = 1;"####);
        assert!(!code[0].contains("Instant"));
        assert!(code[0].contains("let t = 1;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let code = code_of("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        assert!(code[0].contains("<'a>"));
        assert!(code[0].contains("&'a str"));
        assert!(!code[0].contains("'x'"));
    }

    #[test]
    fn line_comment_ends_at_newline() {
        let code = code_of("// all comment\ncode();");
        assert_eq!(code[0], "");
        assert_eq!(code[1], "code();");
    }
}
