//! Findings rendering: machine-readable JSON + human text.
//!
//! The JSON is hand-rolled (workspace convention — the vendored serde
//! is a stub) and byte-deterministic: findings arrive already sorted
//! from [`crate::audit_files`], and keys are emitted in a fixed order,
//! so CI can archive `audit_findings.json` and diff runs directly.

use crate::allowlist::Allowlist;
use crate::AuditOutcome;
use std::fmt::Write as _;

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The full machine-readable report.
pub fn to_json(outcome: &AuditOutcome, allow: &Allowlist) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", outcome.files_scanned);
    let _ = writeln!(s, "  \"clean\": {},", outcome.clean());
    s.push_str("  \"findings\": [\n");
    for (i, ef) in outcome.findings.iter().enumerate() {
        let f = &ef.finding;
        s.push_str("    {");
        let _ = write!(
            s,
            "\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"allowed\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\"",
            f.rule.id(),
            json_escape(&f.path),
            f.line,
            ef.allowed_by.is_some(),
            json_escape(&f.message),
            json_escape(&f.snippet),
        );
        s.push('}');
        if i + 1 < outcome.findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str("  \"stale_allow_entries\": [\n");
    for (i, &idx) in outcome.stale_entries.iter().enumerate() {
        let e = &allow.entries[idx];
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"pattern\": \"{}\", \"line\": {}}}",
            json_escape(&e.rule),
            json_escape(&e.path),
            json_escape(&e.pattern),
            e.line,
        );
        if i + 1 < outcome.stale_entries.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable summary for the terminal / CI log.
pub fn to_text(outcome: &AuditOutcome, allow: &Allowlist) -> String {
    let mut s = String::new();
    let denied: Vec<_> = outcome.denied().collect();
    let allowed = outcome.findings.len() - denied.len();
    for f in &denied {
        let _ = writeln!(s, "DENY  [{}] {}:{}", f.rule.id(), f.path, f.line);
        let _ = writeln!(s, "      {}", f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(s, "      > {}", f.snippet);
        }
    }
    for &idx in &outcome.stale_entries {
        let e = &allow.entries[idx];
        let _ = writeln!(
            s,
            "STALE audit.allow.toml:{} [{}] {} pattern `{}` matches no finding — delete it",
            e.line, e.rule, e.path, e.pattern
        );
    }
    let _ = writeln!(
        s,
        "ir-audit: {} files, {} findings ({} allowlisted, {} denied), {} stale entries — {}",
        outcome.files_scanned,
        outcome.findings.len(),
        allowed,
        denied.len(),
        outcome.stale_entries.len(),
        if outcome.clean() { "PASS" } else { "FAIL" },
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvaluatedFinding, Finding, Rule};

    fn outcome() -> AuditOutcome {
        AuditOutcome {
            findings: vec![EvaluatedFinding {
                finding: Finding {
                    rule: Rule::UnsafeHygiene,
                    path: "src/a \"quoted\".rs".into(),
                    line: 3,
                    message: "unsafe without SAFETY".into(),
                    snippet: "unsafe { *p }".into(),
                },
                allowed_by: None,
            }],
            stale_entries: vec![],
            files_scanned: 1,
        }
    }

    #[test]
    fn json_escapes_and_reports_denied() {
        let json = to_json(&outcome(), &Allowlist::default());
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"rule\": \"unsafe-hygiene\""));
    }

    #[test]
    fn text_flags_denied_findings() {
        let text = to_text(&outcome(), &Allowlist::default());
        assert!(text.contains("DENY  [unsafe-hygiene]"));
        assert!(text.contains("FAIL"));
    }
}
