//! `ir-audit` CLI.
//!
//! ```text
//! cargo run -p ir-audit [--root DIR] [--allow FILE] [--json FILE] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` denied findings or stale allowlist
//! entries, `2` usage / I/O error. The findings JSON is written even
//! when the audit fails, so CI can archive it from a failing job.

use ir_audit::allowlist::Allowlist;
use ir_audit::{audit_workspace, report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    allow: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace that contains this crate.
    let mut args = Args {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        allow: None,
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--allow" => args.allow = Some(PathBuf::from(value("--allow")?)),
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: ir-audit [--root DIR] [--allow FILE] [--json FILE] [--quiet]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = args
        .root
        .canonicalize()
        .map_err(|e| format!("bad --root {}: {e}", args.root.display()))?;
    let allow_path = args.allow.unwrap_or_else(|| root.join("audit.allow.toml"));
    let json_path = args
        .json
        .unwrap_or_else(|| root.join("audit_findings.json"));

    let allow = Allowlist::load(&allow_path)?;
    let outcome = audit_workspace(&root, &allow)?;

    std::fs::write(&json_path, report::to_json(&outcome, &allow))
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    if !args.quiet || !outcome.clean() {
        print!("{}", report::to_text(&outcome, &allow));
    }
    Ok(outcome.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("ir-audit: {e}");
            ExitCode::from(2)
        }
    }
}
