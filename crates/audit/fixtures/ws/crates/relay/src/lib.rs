// An I/O crate: hash containers and wall clocks are fine here —
// rules 1/2/4 must NOT fire on this file (rules 5/6 still apply).
use std::collections::HashMap;

pub fn connections() -> HashMap<u32, std::time::Instant> {
    HashMap::new()
}
