// Seeded hazards: unordered iteration (rule 1) and a float-order
// reduction over a hash-iterated source (rule 4).
use std::collections::HashMap;

pub fn total(rates: &HashMap<u32, f64>) -> f64 {
    rates.values().sum::<f64>()
}

pub fn keys_sorted(rates: &HashMap<u32, f64>) -> Vec<u32> {
    // Immediately sorted: the auditor must NOT flag this iteration
    // (the container declarations above still fire sub-check (a)).
    let mut ks: Vec<u32> = rates.keys().copied().collect();
    ks.sort();
    ks
}
