// Seeded hazards: ambient nondeterminism (rule 2), unsafe without a
// SAFETY comment (rule 5), and an unjustified allow (rule 6).
pub mod stable;

pub struct Config {
    pub seed: u64,
    pub retries: u32,
}

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn opt_in() -> bool {
    std::env::var_os("FIXTURE_FLAG").is_some()
}

#[allow(dead_code)]
pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
