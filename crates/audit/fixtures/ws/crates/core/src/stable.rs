// Seeded hazard: a StableHash impl that skips `retries` (rule 3).
use super::Config;

pub trait StableHash {
    fn stable_hash(&self, h: &mut Vec<u8>);
}

impl StableHash for Config {
    fn stable_hash(&self, h: &mut Vec<u8>) {
        h.extend_from_slice(&self.seed.to_le_bytes());
    }
}
