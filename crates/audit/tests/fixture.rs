//! End-to-end audit runs: the seeded negative fixture must trip every
//! rule (and only where seeded), and the real workspace must pass
//! against its reviewed allowlist — the same invocation CI runs.

use ir_audit::allowlist::Allowlist;
use ir_audit::{audit_workspace, Rule};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn fixture_trips_every_rule() {
    let root = fixture_root();
    let allow = Allowlist::load(&root.join("audit.allow.toml")).unwrap();
    let outcome = audit_workspace(&root, &allow).unwrap();
    assert!(!outcome.clean());

    let denied: Vec<(Rule, &str, usize)> = outcome
        .denied()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    for rule in Rule::ALL {
        assert!(
            denied.iter().any(|(r, _, _)| r == rule),
            "rule {} did not fire on the fixture; denied: {denied:?}",
            rule.id()
        );
    }

    // The hazards land where they were seeded.
    assert!(denied
        .iter()
        .any(|(r, p, _)| *r == Rule::UnorderedIteration && *p == "crates/simnet/src/lib.rs"));
    assert!(denied
        .iter()
        .any(|(r, p, _)| *r == Rule::FloatOrderHazard && *p == "crates/simnet/src/lib.rs"));
    assert!(
        denied
            .iter()
            .any(|(r, p, _)| *r == Rule::StableHashExhaustiveness
                && *p == "crates/core/src/stable.rs")
    );
    assert!(denied
        .iter()
        .any(|(r, p, _)| *r == Rule::UnsafeHygiene && *p == "crates/core/src/lib.rs"));
    assert!(denied
        .iter()
        .any(|(r, p, _)| *r == Rule::AllowJustification && *p == "crates/core/src/lib.rs"));
    // `Instant::now` in core fires; the env read is allowlisted away.
    assert!(denied
        .iter()
        .any(|(r, p, _)| *r == Rule::AmbientNondeterminism && *p == "crates/core/src/lib.rs"));
    assert!(outcome
        .findings
        .iter()
        .any(|f| f.allowed_by.is_some() && f.finding.snippet.contains("env::var_os")));
}

#[test]
fn io_crate_is_exempt_from_determinism_rules() {
    let root = fixture_root();
    let allow = Allowlist::load(&root.join("audit.allow.toml")).unwrap();
    let outcome = audit_workspace(&root, &allow).unwrap();
    assert!(
        !outcome
            .findings
            .iter()
            .any(|f| f.finding.path.starts_with("crates/relay/")),
        "relay is an I/O crate; its HashMap/Instant must not fire"
    );
}

#[test]
fn sorted_iteration_is_not_flagged() {
    let root = fixture_root();
    let allow = Allowlist::load(&root.join("audit.allow.toml")).unwrap();
    let outcome = audit_workspace(&root, &allow).unwrap();
    // `rates.keys()` feeding a `.sort()` two lines later is suppressed:
    // no *iteration* finding on the keys_sorted body (the declaration
    // findings for the HashMap type annotations remain).
    assert!(
        !outcome
            .findings
            .iter()
            .any(|f| f.finding.snippet.contains("rates.keys()")),
        "immediately-sorted iteration must be suppressed"
    );
}

#[test]
fn stale_allow_entry_fails_the_audit() {
    let root = fixture_root();
    let allow = Allowlist::load(&root.join("audit.allow.toml")).unwrap();
    let outcome = audit_workspace(&root, &allow).unwrap();
    assert_eq!(
        outcome.stale_entries.len(),
        1,
        "exactly the seeded stale entry"
    );
    let stale = &allow.entries[outcome.stale_entries[0]];
    assert_eq!(stale.rule, "unordered-iteration");
    assert!(stale.reason.contains("STALE"));

    // Dropping the stale entry (and keeping the hazards denied) still
    // fails overall, but for findings — not staleness.
    let trimmed = Allowlist {
        fingerprint_roots: allow.fingerprint_roots.clone(),
        entries: vec![allow.entries[0].clone()],
    };
    let outcome = audit_workspace(&root, &trimmed).unwrap();
    assert!(outcome.stale_entries.is_empty());
    assert!(!outcome.clean());
}

#[test]
fn real_workspace_passes_its_allowlist() {
    let root = workspace_root();
    let allow = Allowlist::load(&root.join("audit.allow.toml")).unwrap();
    let outcome = audit_workspace(&root, &allow).unwrap();
    let denied: Vec<String> = outcome
        .denied()
        .map(|f| format!("[{}] {}:{} {}", f.rule.id(), f.path, f.line, f.message))
        .collect();
    assert!(
        denied.is_empty(),
        "workspace audit denied:\n{}",
        denied.join("\n")
    );
    assert!(
        outcome.stale_entries.is_empty(),
        "stale audit.allow.toml entries: {:?}",
        outcome.stale_entries
    );
    // The allowlist is load-bearing: without it the audit must fail
    // (the reviewed hazard sites are real).
    let bare = audit_workspace(&root, &Allowlist::default()).unwrap();
    assert!(!bare.clean(), "allowlist should be excusing real sites");
}
