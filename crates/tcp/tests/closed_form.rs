//! The fluid TCP model against closed-form arithmetic.
//!
//! For a constant-rate link the transfer time decomposes exactly into
//! startup + ramp + steady phases, each computable by hand from the
//! quarter-RTT geometric ramp. These tests pin the model to that
//! arithmetic so refactors cannot silently bend it.

use ir_simnet::bandwidth::ConstantProcess;
use ir_simnet::time::{SimDuration, SimTime};
use ir_tcp::{transfer_time, TcpConfig, TcpRateCap};

/// Closed-form transfer time for `bytes` on an infinitely fast link
/// (TCP ceiling is the only constraint): walk the quarter-RTT sub-round
/// rates exactly as the cap does.
fn closed_form_secs(cfg: &TcpConfig, bytes: u64) -> f64 {
    let mut cap = TcpRateCap::new(*cfg);
    use ir_simnet::sim::RateCap;
    let startup = cfg.startup.as_secs_f64();
    let step = (cfg.rtt.as_micros() / 4).max(1) as f64 / 1e6;
    let mut done = 0.0;
    let mut t = startup;
    let total = bytes as f64;
    // Walk sub-rounds; each holds a constant rate.
    for q in 0..10_000u64 {
        let age = SimDuration::from_secs_f64(startup + q as f64 * step + step / 2.0);
        let rate = cap.cap(age, done as u64);
        if done + rate * step >= total {
            return t + (total - done) / rate;
        }
        done += rate * step;
        t += step;
    }
    panic!("did not converge");
}

#[test]
fn model_matches_closed_form_on_fast_link() {
    for rtt_ms in [40u64, 100, 250] {
        for bytes in [50_000u64, 102_400, 1_000_000] {
            let cfg = TcpConfig::for_rtt(SimDuration::from_millis(rtt_ms)).with_loss(0.0);
            let mut link = ConstantProcess::new(1e9); // never the constraint
            let measured = transfer_time(
                bytes,
                SimTime::ZERO,
                cfg,
                &mut link,
                SimDuration::from_secs(3600),
            )
            .unwrap()
            .duration
            .as_secs_f64();
            let expected = closed_form_secs(&cfg, bytes);
            assert!(
                (measured - expected).abs() < 1e-3 * expected.max(0.1),
                "rtt {rtt_ms}ms bytes {bytes}: measured {measured:.4}s vs closed-form {expected:.4}s"
            );
        }
    }
}

#[test]
fn steady_phase_is_window_rate_exactly() {
    // Once the ramp converges, added bytes cost exactly 1/window_rate
    // seconds per byte.
    let cfg = TcpConfig::for_rtt(SimDuration::from_millis(100)).with_loss(0.0);
    let w = cfg.window_rate();
    let run = |bytes: u64| {
        let mut link = ConstantProcess::new(1e9);
        transfer_time(
            bytes,
            SimTime::ZERO,
            cfg,
            &mut link,
            SimDuration::from_secs(3600),
        )
        .unwrap()
        .duration
        .as_secs_f64()
    };
    let t1 = run(5_000_000);
    let t2 = run(10_000_000);
    let marginal = (t2 - t1) / 5_000_000.0;
    assert!(
        (marginal - 1.0 / w).abs() < 1e-9,
        "marginal {marginal} vs 1/window {}",
        1.0 / w
    );
}

#[test]
fn slow_link_time_is_bytes_over_rate_plus_overheads() {
    // When the link rate is far below the TCP ceiling, total time ≈
    // startup + short ramp + bytes/rate; bound the overhead tightly.
    let cfg = TcpConfig::for_rtt(SimDuration::from_millis(80)).with_loss(0.0);
    let rate = 50_000.0;
    let bytes = 2_000_000u64;
    let mut link = ConstantProcess::new(rate);
    let t = transfer_time(
        bytes,
        SimTime::ZERO,
        cfg,
        &mut link,
        SimDuration::from_secs(3600),
    )
    .unwrap()
    .duration
    .as_secs_f64();
    let floor = bytes as f64 / rate;
    assert!(t >= floor, "cannot beat the link");
    // Startup 0.12 s + ramp-to-50KBps (~couple RTTs of deficit).
    assert!(t < floor + 1.0, "overhead too large: {t} vs floor {floor}");
}
