//! Property tests for the TCP model: monotonicity and consistency of
//! the transfer-time integration, PFTK bounds, ramp sanity.

use ir_simnet::bandwidth::ConstantProcess;
use ir_simnet::sim::RateCap;
use ir_simnet::time::{SimDuration, SimTime};
use ir_tcp::{bytes_by, pftk_rate, transfer_time, TcpConfig, TcpRateCap};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = TcpConfig> {
    (5u64..400, 0.0f64..0.2, 16u32..512).prop_map(|(rtt_ms, loss, win_kb)| {
        TcpConfig::for_rtt(SimDuration::from_millis(rtt_ms))
            .with_loss(loss)
            .with_recv_window(win_kb * 1024)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pftk_bounded_by_window_rate(cfg in arb_cfg()) {
        let r = pftk_rate(&cfg);
        prop_assert!(r > 0.0);
        prop_assert!(r <= cfg.window_rate() + 1e-9);
    }

    #[test]
    fn cap_never_exceeds_steady(cfg in arb_cfg(), ages in prop::collection::vec(0u64..120_000, 1..20)) {
        let mut cap = TcpRateCap::new(cfg);
        let steady = cap.steady_rate();
        for &ms in &ages {
            let c = cap.cap(SimDuration::from_millis(ms), 0);
            prop_assert!(c <= steady + 1e-9);
            prop_assert!(c >= 0.0);
        }
    }

    #[test]
    fn cap_is_monotone_in_age(cfg in arb_cfg()) {
        let mut cap = TcpRateCap::new(cfg);
        let mut prev = -1.0;
        for ms in (0..30_000).step_by(97) {
            let c = cap.cap(SimDuration::from_millis(ms), 0);
            prop_assert!(c + 1e-9 >= prev, "cap decreased at {ms} ms");
            prev = c;
        }
    }

    #[test]
    fn transfer_time_monotone_in_bytes(
        cfg in arb_cfg(),
        rate in 1e4f64..1e7,
        b1 in 1u64..5_000_000,
        extra in 1u64..5_000_000,
    ) {
        let horizon = SimDuration::from_secs(100_000);
        let mut p1 = ConstantProcess::new(rate);
        let t1 = transfer_time(b1, SimTime::ZERO, cfg, &mut p1, horizon).unwrap();
        let mut p2 = ConstantProcess::new(rate);
        let t2 = transfer_time(b1 + extra, SimTime::ZERO, cfg, &mut p2, horizon).unwrap();
        prop_assert!(t2.duration >= t1.duration);
    }

    #[test]
    fn throughput_below_both_bounds(
        cfg in arb_cfg(),
        rate in 1e4f64..1e7,
        bytes in 100_000u64..5_000_000,
    ) {
        let mut p = ConstantProcess::new(rate);
        let r = transfer_time(bytes, SimTime::ZERO, cfg, &mut p, SimDuration::from_secs(100_000)).unwrap();
        let steady = TcpRateCap::new(cfg).steady_rate();
        prop_assert!(r.throughput <= rate + 1.0, "above link rate");
        prop_assert!(r.throughput <= steady + 1.0, "above TCP ceiling");
    }

    #[test]
    fn faster_links_never_slower(
        cfg in arb_cfg(),
        rate in 1e4f64..1e6,
        factor in 1.0f64..50.0,
        bytes in 50_000u64..2_000_000,
    ) {
        let horizon = SimDuration::from_secs(100_000);
        let mut slow = ConstantProcess::new(rate);
        let mut fast = ConstantProcess::new(rate * factor);
        let ts = transfer_time(bytes, SimTime::ZERO, cfg, &mut slow, horizon).unwrap();
        let tf = transfer_time(bytes, SimTime::ZERO, cfg, &mut fast, horizon).unwrap();
        prop_assert!(tf.duration <= ts.duration);
    }

    #[test]
    fn bytes_by_monotone_and_consistent(
        cfg in arb_cfg(),
        rate in 1e4f64..1e6,
        secs in prop::collection::vec(0u64..600, 2..8),
    ) {
        let mut sorted = secs.clone();
        sorted.sort_unstable();
        let mut prev = 0;
        for &s in &sorted {
            let mut p = ConstantProcess::new(rate);
            let b = bytes_by(SimDuration::from_secs(s), SimTime::ZERO, cfg, &mut p);
            prop_assert!(b >= prev);
            // Never more than the raw link could carry.
            prop_assert!(b as f64 <= rate * s as f64 + 1.0);
            prev = b;
        }
    }
}
