//! Randomized tests for the TCP model: monotonicity and consistency of
//! the transfer-time integration, PFTK bounds, ramp sanity.
//!
//! These were proptest-based; the offline build has no proptest, so the
//! same invariants are checked over seeded random case sweeps (every
//! failure reproduces from the printed case number).

use ir_simnet::bandwidth::ConstantProcess;
use ir_simnet::sim::RateCap;
use ir_simnet::time::{SimDuration, SimTime};
use ir_tcp::{bytes_by, pftk_rate, transfer_time, TcpConfig, TcpRateCap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gen_cfg(rng: &mut StdRng) -> TcpConfig {
    let rtt_ms = rng.gen_range(5u64..400);
    let loss = rng.gen_range(0.0f64..0.2);
    let win_kb = rng.gen_range(16u32..512);
    TcpConfig::for_rtt(SimDuration::from_millis(rtt_ms))
        .with_loss(loss)
        .with_recv_window(win_kb * 1024)
}

#[test]
fn pftk_bounded_by_window_rate() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x7C_0000 + case);
        let cfg = gen_cfg(&mut rng);
        let r = pftk_rate(&cfg);
        assert!(r > 0.0, "case {case}");
        assert!(r <= cfg.window_rate() + 1e-9, "case {case}");
    }
}

#[test]
fn cap_never_exceeds_steady() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x7C_1000 + case);
        let cfg = gen_cfg(&mut rng);
        let mut cap = TcpRateCap::new(cfg);
        let steady = cap.steady_rate();
        for _ in 0..rng.gen_range(1..20usize) {
            let ms = rng.gen_range(0u64..120_000);
            let c = cap.cap(SimDuration::from_millis(ms), 0);
            assert!(c <= steady + 1e-9, "case {case}");
            assert!(c >= 0.0, "case {case}");
        }
    }
}

#[test]
fn cap_is_monotone_in_age() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x7C_2000 + case);
        let cfg = gen_cfg(&mut rng);
        let mut cap = TcpRateCap::new(cfg);
        let mut prev = -1.0;
        for ms in (0..30_000).step_by(97) {
            let c = cap.cap(SimDuration::from_millis(ms), 0);
            assert!(c + 1e-9 >= prev, "case {case}: cap decreased at {ms} ms");
            prev = c;
        }
    }
}

#[test]
fn transfer_time_monotone_in_bytes() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x7C_3000 + case);
        let cfg = gen_cfg(&mut rng);
        let rate = rng.gen_range(1e4f64..1e7);
        let b1 = rng.gen_range(1u64..5_000_000);
        let extra = rng.gen_range(1u64..5_000_000);
        let horizon = SimDuration::from_secs(100_000);
        let mut p1 = ConstantProcess::new(rate);
        let t1 = transfer_time(b1, SimTime::ZERO, cfg, &mut p1, horizon).unwrap();
        let mut p2 = ConstantProcess::new(rate);
        let t2 = transfer_time(b1 + extra, SimTime::ZERO, cfg, &mut p2, horizon).unwrap();
        assert!(t2.duration >= t1.duration, "case {case}");
    }
}

#[test]
fn throughput_below_both_bounds() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x7C_4000 + case);
        let cfg = gen_cfg(&mut rng);
        let rate = rng.gen_range(1e4f64..1e7);
        let bytes = rng.gen_range(100_000u64..5_000_000);
        let mut p = ConstantProcess::new(rate);
        let r = transfer_time(
            bytes,
            SimTime::ZERO,
            cfg,
            &mut p,
            SimDuration::from_secs(100_000),
        )
        .unwrap();
        let steady = TcpRateCap::new(cfg).steady_rate();
        assert!(r.throughput <= rate + 1.0, "case {case}: above link rate");
        assert!(
            r.throughput <= steady + 1.0,
            "case {case}: above TCP ceiling"
        );
    }
}

#[test]
fn faster_links_never_slower() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x7C_5000 + case);
        let cfg = gen_cfg(&mut rng);
        let rate = rng.gen_range(1e4f64..1e6);
        let factor = rng.gen_range(1.0f64..50.0);
        let bytes = rng.gen_range(50_000u64..2_000_000);
        let horizon = SimDuration::from_secs(100_000);
        let mut slow = ConstantProcess::new(rate);
        let mut fast = ConstantProcess::new(rate * factor);
        let ts = transfer_time(bytes, SimTime::ZERO, cfg, &mut slow, horizon).unwrap();
        let tf = transfer_time(bytes, SimTime::ZERO, cfg, &mut fast, horizon).unwrap();
        assert!(tf.duration <= ts.duration, "case {case}");
    }
}

#[test]
fn bytes_by_monotone_and_consistent() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x7C_6000 + case);
        let cfg = gen_cfg(&mut rng);
        let rate = rng.gen_range(1e4f64..1e6);
        let mut sorted: Vec<u64> = (0..rng.gen_range(2..8usize))
            .map(|_| rng.gen_range(0u64..600))
            .collect();
        sorted.sort_unstable();
        let mut prev = 0;
        for &s in &sorted {
            let mut p = ConstantProcess::new(rate);
            let b = bytes_by(SimDuration::from_secs(s), SimTime::ZERO, cfg, &mut p);
            assert!(b >= prev, "case {case}");
            // Never more than the raw link could carry.
            assert!(b as f64 <= rate * s as f64 + 1.0, "case {case}");
            prev = b;
        }
    }
}
