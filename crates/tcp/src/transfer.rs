//! Standalone transfer-time integration.
//!
//! A fast path that answers "how long does TCP take to move `b` bytes
//! over this path" without instantiating the full flow engine — the
//! flow is alone on the path, so its rate at any instant is simply
//! `min(tcp_cap(age), available_bandwidth(t))`. Used by unit tests, the
//! probe-size ablation, and as a cross-check oracle for the engine
//! (`tests/engine_vs_analytic.rs`).

use crate::cap::TcpRateCap;
use crate::config::TcpConfig;
use ir_simnet::bandwidth::BandwidthProcess;
use ir_simnet::sim::RateCap;
use ir_simnet::time::{SimDuration, SimTime};

/// Result of an analytic transfer computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferResult {
    /// Total wall-clock duration, including connection startup.
    pub duration: SimDuration,
    /// Mean goodput, bytes/sec (`bytes / duration`).
    pub throughput: f64,
}

/// Computes the completion time of a solo TCP transfer of `bytes` bytes
/// starting at absolute time `start` over the available-bandwidth
/// process `avail`.
///
/// Returns `None` if the transfer would not finish within `horizon`
/// after start (e.g. the path is effectively down).
pub fn transfer_time(
    bytes: u64,
    start: SimTime,
    cfg: TcpConfig,
    avail: &mut dyn BandwidthProcess,
    horizon: SimDuration,
) -> Option<TransferResult> {
    cfg.validate();
    let mut cap = TcpRateCap::new(cfg);
    let deadline = start + horizon;
    let mut now = start;
    let mut done = 0.0f64;
    let total = bytes as f64;

    if bytes == 0 {
        return Some(TransferResult {
            duration: SimDuration::ZERO,
            throughput: f64::INFINITY,
        });
    }

    while now < deadline {
        let age = now - start;
        let rate = cap.cap(age, done as u64).min(avail.rate_at(now));

        // Next boundary: cap change, availability change, completion.
        let mut boundary = deadline;
        if let Some(next_age) = cap.next_cap_change(age) {
            boundary = boundary.min(start + next_age);
        }
        if let Some(ch) = avail.next_change_after(now) {
            boundary = boundary.min(ch);
        }
        if rate > 0.0 {
            let remaining = total - done;
            let dt = SimDuration::from_secs_f64_ceil(remaining / rate);
            let dt = if dt.is_zero() {
                SimDuration::from_micros(1)
            } else {
                dt
            };
            boundary = boundary.min(now.saturating_add(dt));
        }
        if boundary <= now {
            boundary = now + SimDuration::from_micros(1);
        }

        let dt = (boundary - now).as_secs_f64();
        done = (done + rate * dt).min(total);
        now = boundary;
        if total - done < 0.5 {
            let duration = now - start;
            return Some(TransferResult {
                duration,
                throughput: total / duration.as_secs_f64(),
            });
        }
    }
    None
}

/// Bytes delivered by flow age `age` (inverse query), same model as
/// [`transfer_time`]. Useful for "how much of the probe has arrived by
/// time t" questions.
pub fn bytes_by(
    age: SimDuration,
    start: SimTime,
    cfg: TcpConfig,
    avail: &mut dyn BandwidthProcess,
) -> u64 {
    cfg.validate();
    let mut cap = TcpRateCap::new(cfg);
    let end = start + age;
    let mut now = start;
    let mut done = 0.0f64;
    while now < end {
        let flow_age = now - start;
        let rate = cap.cap(flow_age, done as u64).min(avail.rate_at(now));
        let mut boundary = end;
        if let Some(next_age) = cap.next_cap_change(flow_age) {
            boundary = boundary.min(start + next_age);
        }
        if let Some(ch) = avail.next_change_after(now) {
            boundary = boundary.min(ch);
        }
        if boundary <= now {
            boundary = now + SimDuration::from_micros(1);
        }
        done += rate * (boundary - now).as_secs_f64();
        now = boundary;
    }
    done as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::bandwidth::{ConstantProcess, PiecewiseProcess};

    fn cfg(rtt_ms: u64) -> TcpConfig {
        TcpConfig::for_rtt(SimDuration::from_millis(rtt_ms)).with_loss(0.0)
    }

    #[test]
    fn zero_bytes_is_instant() {
        let mut p = ConstantProcess::new(1e6);
        let r = transfer_time(
            0,
            SimTime::ZERO,
            cfg(100),
            &mut p,
            SimDuration::from_secs(10),
        )
        .unwrap();
        assert!(r.duration.is_zero());
    }

    #[test]
    fn large_transfer_approaches_bottleneck() {
        // 64 KiB window / 100 ms RTT = 655 KB/s window bound; link 10
        // MB/s → TCP-bound. 50 MB at ~655 KB/s ≈ 76 s.
        let mut p = ConstantProcess::new(10e6);
        let r = transfer_time(
            50_000_000,
            SimTime::ZERO,
            cfg(100),
            &mut p,
            SimDuration::from_secs(600),
        )
        .unwrap();
        let expect = cfg(100).window_rate();
        assert!(
            (r.throughput - expect).abs() / expect < 0.02,
            "thr {} vs {}",
            r.throughput,
            expect
        );
    }

    #[test]
    fn link_bound_when_slower_than_window() {
        let mut p = ConstantProcess::new(50_000.0);
        let r = transfer_time(
            5_000_000,
            SimTime::ZERO,
            cfg(100),
            &mut p,
            SimDuration::from_secs(600),
        )
        .unwrap();
        assert!(
            (r.throughput - 50_000.0).abs() / 50_000.0 < 0.03,
            "thr {}",
            r.throughput
        );
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let mut prev = SimDuration::ZERO;
        for &b in &[10_000u64, 100_000, 1_000_000, 10_000_000] {
            let mut p = ConstantProcess::new(1e6);
            let r = transfer_time(
                b,
                SimTime::ZERO,
                cfg(80),
                &mut p,
                SimDuration::from_secs(600),
            )
            .unwrap();
            assert!(r.duration > prev, "not monotone at {b}");
            prev = r.duration;
        }
    }

    #[test]
    fn respects_availability_drop() {
        // 1 MB/s for 5 s then 10 KB/s: a 10 MB transfer must slow down.
        let mk = || PiecewiseProcess::new(vec![(SimTime::ZERO, 1e6), (SimTime::from_secs(5), 1e4)]);
        let big_window = cfg(10).with_recv_window(16 * 1024 * 1024);
        let mut p = mk();
        let r = transfer_time(
            10_000_000,
            SimTime::ZERO,
            big_window,
            &mut p,
            SimDuration::from_secs(3600),
        )
        .unwrap();
        // ~5 MB in the first 5 s (minus ramp), rest at 10 KB/s → ~500+ s.
        assert!(r.duration.as_secs_f64() > 400.0, "{:?}", r);
    }

    #[test]
    fn start_time_offsets_into_process_timeline() {
        // Process is slow before t=100 s and fast after; starting late
        // must be faster.
        let mk =
            || PiecewiseProcess::new(vec![(SimTime::ZERO, 1e4), (SimTime::from_secs(100), 1e6)]);
        let c = cfg(50);
        let mut p1 = mk();
        let early = transfer_time(
            1_000_000,
            SimTime::ZERO,
            c,
            &mut p1,
            SimDuration::from_secs(3600),
        )
        .unwrap();
        let mut p2 = mk();
        let late = transfer_time(
            1_000_000,
            SimTime::from_secs(100),
            c,
            &mut p2,
            SimDuration::from_secs(3600),
        )
        .unwrap();
        assert!(late.duration < early.duration);
    }

    #[test]
    fn horizon_timeout_returns_none() {
        let mut p = ConstantProcess::new(10.0);
        let r = transfer_time(
            1_000_000,
            SimTime::ZERO,
            cfg(100),
            &mut p,
            SimDuration::from_secs(10),
        );
        assert!(r.is_none());
    }

    #[test]
    fn bytes_by_is_monotone_and_bounded() {
        let c = cfg(100);
        let mut prev = 0;
        for secs in [0u64, 1, 2, 5, 10, 30] {
            let mut p = ConstantProcess::new(1e5);
            let b = bytes_by(SimDuration::from_secs(secs), SimTime::ZERO, c, &mut p);
            assert!(b >= prev, "not monotone at {secs}");
            assert!(b as f64 <= 1e5 * secs as f64 + 1.0, "over link capacity");
            prev = b;
        }
    }

    #[test]
    fn bytes_by_consistent_with_transfer_time() {
        let c = cfg(80);
        let mut p1 = ConstantProcess::new(2e5);
        let r = transfer_time(
            500_000,
            SimTime::ZERO,
            c,
            &mut p1,
            SimDuration::from_secs(600),
        )
        .unwrap();
        let mut p2 = ConstantProcess::new(2e5);
        let b = bytes_by(r.duration, SimTime::ZERO, c, &mut p2);
        assert!((b as i64 - 500_000i64).unsigned_abs() < 2_000, "b = {b}");
    }
}
