//! `ir-tcp` — a fluid model of long-lived TCP throughput.
//!
//! The paper's probe protocol measures the throughput of the first
//! x = 100 KB of a transfer and uses it to predict the throughput of the
//! remaining megabytes. For that prediction problem to exist in our
//! reproduction, the substrate must model the two things that make
//! short-probe throughput differ from long-transfer throughput:
//!
//! 1. **Slow start** — early rounds run well below the path's capacity;
//!    x must be "large enough … to marginalize the initial effects of
//!    TCP slow-start" (§2.1).
//! 2. **A steady-state ceiling** — the classic PFTK loss/window bound a
//!    long flow converges to.
//!
//! Components:
//! * [`config::TcpConfig`] — MSS, RTT, initial window, receiver window,
//!   loss rate, handshake delay (2005-era defaults).
//! * [`pftk::pftk_rate`] — Padhye et al. steady-state throughput.
//! * [`cap::TcpRateCap`] — an [`ir_simnet::sim::RateCap`] gluing the
//!   model into the flow engine: zero rate during the handshake, a
//!   doubling per-RTT ramp, then the steady ceiling.
//! * [`transfer`] — standalone solo-flow transfer-time integration used
//!   as an analytic oracle and by the probe-size ablation.

pub mod cap;
pub mod config;
pub mod pftk;
pub mod transfer;

pub use cap::TcpRateCap;
pub use config::TcpConfig;
pub use pftk::pftk_rate;
pub use transfer::{bytes_by, transfer_time, TransferResult};
