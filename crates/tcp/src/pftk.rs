//! PFTK steady-state TCP throughput (Padhye, Firoiu, Towsley, Kurose,
//! SIGCOMM '98).
//!
//! The paper's §3.1 cites He et al. on the throughput of large TCP
//! transfers being driven by path load; the canonical analytic model of
//! a long-lived TCP flow under loss rate `p` is the PFTK formula. We use
//! it as the steady-state ceiling of the fluid model:
//!
//! ```text
//! B(p) = min( Wmax/RTT,
//!             MSS / (RTT·sqrt(2bp/3) + T0·min(1, 3·sqrt(3bp/8))·p·(1+32p²)) )
//! ```
//!
//! with `b` delayed-ACK factor (2) and `T0` the retransmission timeout
//! (taken as `max(4·RTT, 1s)` per common practice).

use crate::config::TcpConfig;

/// Delayed-ACK factor: segments acknowledged per ACK.
const B_DELAYED_ACK: f64 = 2.0;

/// PFTK steady-state throughput in **bytes/sec** for the given
/// configuration. With `loss_rate == 0` the formula's loss term
/// vanishes and the bound is the receiver window rate.
pub fn pftk_rate(cfg: &TcpConfig) -> f64 {
    cfg.validate();
    let wmax_rate = cfg.window_rate();
    let p = cfg.loss_rate;
    if p <= 0.0 {
        return wmax_rate;
    }
    let rtt = cfg.rtt.as_secs_f64();
    let t0 = (4.0 * rtt).max(1.0);
    let b = B_DELAYED_ACK;
    let term_fast = rtt * (2.0 * b * p / 3.0).sqrt();
    let term_to = t0 * (1.0f64).min(3.0 * (3.0 * b * p / 8.0).sqrt()) * p * (1.0 + 32.0 * p * p);
    let loss_bound = cfg.mss as f64 / (term_fast + term_to);
    wmax_rate.min(loss_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::time::SimDuration;

    fn cfg(rtt_ms: u64, loss: f64) -> TcpConfig {
        TcpConfig::for_rtt(SimDuration::from_millis(rtt_ms)).with_loss(loss)
    }

    #[test]
    fn zero_loss_hits_window_bound() {
        let c = cfg(100, 0.0);
        assert!((pftk_rate(&c) - c.window_rate()).abs() < 1e-9);
    }

    #[test]
    fn throughput_decreases_with_loss() {
        let rates: Vec<f64> = [0.001, 0.005, 0.01, 0.05, 0.1]
            .iter()
            .map(|&p| pftk_rate(&cfg(80, p)))
            .collect();
        for w in rates.windows(2) {
            assert!(w[0] > w[1], "not monotone: {rates:?}");
        }
    }

    #[test]
    fn throughput_decreases_with_rtt() {
        let a = pftk_rate(&cfg(20, 0.01));
        let b = pftk_rate(&cfg(200, 0.01));
        assert!(a > b, "{a} !> {b}");
    }

    #[test]
    fn simplified_formula_magnitude() {
        // For small p the formula approaches MSS/(RTT·sqrt(2bp/3)).
        // p=1e-4, RTT=100ms, b=2: sqrt term = sqrt(2*2*1e-4/3) ≈ 0.01155
        // → ≈ 1460/(0.1*0.01155) ≈ 1.26 MB/s, but window bound (655 KB/s)
        // binds first with the default 64 KiB window.
        let c = cfg(100, 0.0001);
        assert!((pftk_rate(&c) - c.window_rate()).abs() < 1e-9);
        // Enlarged window exposes the loss bound.
        let c2 = c.with_recv_window(16 * 1024 * 1024);
        let r = pftk_rate(&c2);
        assert!(r > 1.0e6 && r < 1.4e6, "r = {r}");
    }

    #[test]
    fn paper_regime_sanity() {
        // The paper's Low category is < 1.5 Mbps = 187.5 KB/s. A 1%-loss
        // 150 ms path lands in that band — the defaults reproduce the
        // regime the paper studies.
        let r = pftk_rate(&cfg(150, 0.01));
        let mbps = r * 8.0 / 1e6;
        assert!(mbps > 0.2 && mbps < 1.5, "{mbps} Mbps");
    }

    #[test]
    fn high_loss_is_brutal_but_positive() {
        let r = pftk_rate(&cfg(100, 0.3));
        assert!(r > 0.0 && r < 20_000.0, "r = {r}");
    }
}
