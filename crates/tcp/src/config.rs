//! TCP model parameters.

use ir_simnet::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the fluid TCP model for one connection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in bytes (default 1460, Ethernet-era MSS).
    pub mss: u32,
    /// Round-trip time of the connection's path.
    pub rtt: SimDuration,
    /// Initial congestion window, in segments (default 3 — the RFC 3390
    /// initial window of min(4·MSS, 4380 B), standard by the paper's
    /// 2005 measurement period).
    pub init_cwnd_segments: u32,
    /// Receiver window in bytes; bounds steady-state rate at
    /// `recv_window / rtt` (default 64 KiB, the classic un-scaled
    /// window).
    pub recv_window: u32,
    /// Steady-state loss probability seen by the connection. Zero means
    /// the receiver window is the only steady-state bound.
    pub loss_rate: f64,
    /// Connection setup time before the first payload byte flows
    /// (handshake + request). Defaults to `1.5 × rtt`: SYN/SYN-ACK (1
    /// RTT) plus request propagation (0.5 RTT).
    pub startup: SimDuration,
}

impl TcpConfig {
    /// A configuration for the given path RTT with era-appropriate
    /// defaults (MSS 1460, IW 2, 64 KiB window, 1% loss).
    pub fn for_rtt(rtt: SimDuration) -> Self {
        TcpConfig {
            mss: 1460,
            rtt,
            init_cwnd_segments: 3,
            recv_window: 64 * 1024,
            loss_rate: 0.01,
            startup: SimDuration::from_micros(rtt.as_micros() * 3 / 2),
        }
    }

    /// Overrides the loss rate.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss rate out of range: {p}");
        self.loss_rate = p;
        self
    }

    /// Overrides the receiver window.
    pub fn with_recv_window(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "zero receive window");
        self.recv_window = bytes;
        self
    }

    /// Overrides the startup (handshake) delay.
    pub fn with_startup(mut self, d: SimDuration) -> Self {
        self.startup = d;
        self
    }

    /// Validates invariants; called by model constructors.
    pub fn validate(&self) {
        assert!(self.mss > 0, "zero MSS");
        assert!(!self.rtt.is_zero(), "zero RTT");
        assert!(self.init_cwnd_segments > 0, "zero initial window");
        assert!(self.recv_window > 0, "zero receive window");
        assert!(
            (0.0..1.0).contains(&self.loss_rate),
            "loss rate out of range: {}",
            self.loss_rate
        );
    }

    /// The receiver-window rate bound, bytes/sec.
    pub fn window_rate(&self) -> f64 {
        self.recv_window as f64 / self.rtt.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TcpConfig::for_rtt(SimDuration::from_millis(100));
        c.validate();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.startup, SimDuration::from_millis(150));
        // 64 KiB / 100 ms = 655360 B/s.
        assert!((c.window_rate() - 655_360.0).abs() < 1.0);
    }

    #[test]
    fn builders_override() {
        let c = TcpConfig::for_rtt(SimDuration::from_millis(50))
            .with_loss(0.02)
            .with_recv_window(128 * 1024)
            .with_startup(SimDuration::ZERO);
        assert_eq!(c.loss_rate, 0.02);
        assert_eq!(c.recv_window, 128 * 1024);
        assert!(c.startup.is_zero());
    }

    #[test]
    #[should_panic(expected = "loss rate out of range")]
    fn bad_loss_rejected() {
        TcpConfig::for_rtt(SimDuration::from_millis(10)).with_loss(1.0);
    }

    #[test]
    #[should_panic(expected = "zero RTT")]
    fn zero_rtt_rejected() {
        let mut c = TcpConfig::for_rtt(SimDuration::from_millis(10));
        c.rtt = SimDuration::ZERO;
        c.validate();
    }
}
