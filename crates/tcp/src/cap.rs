//! The fluid TCP rate cap: startup delay → slow-start ramp →
//! steady-state ceiling.
//!
//! This implements [`ir_simnet::sim::RateCap`], plugging the TCP model
//! into the flow engine. The cap is an *upper bound* on the flow's rate;
//! the engine takes the min of this cap and the max–min fair share of
//! the path. The shape matters for the paper's methodology: the probe
//! transfers the first x = 100 KB, which the authors chose "large enough
//! to … marginalize the initial effects of TCP slow-start". A probe too
//! small sits inside the ramp and under-measures fast paths — our
//! ablation benchmark sweeps x to reproduce that trade-off.

use crate::config::TcpConfig;
use crate::pftk::pftk_rate;
use ir_simnet::sim::RateCap;
use ir_simnet::time::SimDuration;

/// Fluid TCP ceiling for one connection.
#[derive(Debug, Clone, Copy)]
pub struct TcpRateCap {
    cfg: TcpConfig,
    steady_rate: f64,
}

impl TcpRateCap {
    /// Creates the cap from a configuration.
    pub fn new(cfg: TcpConfig) -> Self {
        cfg.validate();
        TcpRateCap {
            cfg,
            steady_rate: pftk_rate(&cfg),
        }
    }

    /// The steady-state ceiling (bytes/sec) this connection converges
    /// to: `min(window/RTT, PFTK(p))`.
    pub fn steady_rate(&self) -> f64 {
        self.steady_rate
    }

    /// Ramp sub-steps per RTT. Real congestion windows grow per-ACK,
    /// i.e. near-continuously; whole-RTT quantisation would make probe
    /// race outcomes depend on ±1 round of luck rather than on path
    /// rate. Quarter-RTT steps keep the fluid approximation close to
    /// the continuous exponential while bounding event count.
    const SUBSTEPS: u64 = 4;

    /// Number of complete ramp sub-rounds elapsed at flow age `age`,
    /// after startup.
    fn subround(&self, age: SimDuration) -> Option<u64> {
        if age < self.cfg.startup {
            return None;
        }
        let since = age.as_micros() - self.cfg.startup.as_micros();
        let step = (self.cfg.rtt.as_micros() / Self::SUBSTEPS).max(1);
        Some(since / step)
    }

    /// Slow-start window rate in sub-round `q`:
    /// `IW · 2^(q/SUBSTEPS) / RTT`, clamped to the steady-state ceiling.
    fn ramp_rate(&self, subround: u64) -> f64 {
        let iw = (self.cfg.init_cwnd_segments * self.cfg.mss) as f64;
        let factor = 2.0f64.powf((subround.min(240) as f64) / Self::SUBSTEPS as f64);
        (iw * factor / self.cfg.rtt.as_secs_f64()).min(self.steady_rate)
    }

    /// The first sub-round in which the ramp reaches the steady rate.
    fn subrounds_to_steady(&self) -> u64 {
        let iw_rate =
            (self.cfg.init_cwnd_segments * self.cfg.mss) as f64 / self.cfg.rtt.as_secs_f64();
        if iw_rate >= self.steady_rate {
            return 0;
        }
        ((self.steady_rate / iw_rate).log2() * Self::SUBSTEPS as f64).ceil() as u64
    }
}

impl RateCap for TcpRateCap {
    fn cap(&mut self, age: SimDuration, _bytes_done: u64) -> f64 {
        match self.subround(age) {
            None => 0.0, // handshake in progress; no payload yet
            Some(q) => self.ramp_rate(q),
        }
    }

    fn next_cap_change(&mut self, age: SimDuration) -> Option<SimDuration> {
        match self.subround(age) {
            None => Some(self.cfg.startup),
            Some(q) => {
                if q >= self.subrounds_to_steady() {
                    None // converged; constant from here on
                } else {
                    let step = (self.cfg.rtt.as_micros() / Self::SUBSTEPS).max(1);
                    let next = self.cfg.startup.as_micros() + (q + 1) * step;
                    Some(SimDuration::from_micros(next))
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn RateCap> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_simnet::time::SimDuration;

    fn cap_for(rtt_ms: u64, loss: f64) -> TcpRateCap {
        TcpRateCap::new(TcpConfig::for_rtt(SimDuration::from_millis(rtt_ms)).with_loss(loss))
    }

    #[test]
    fn zero_rate_during_handshake() {
        let mut c = cap_for(100, 0.01);
        assert_eq!(c.cap(SimDuration::ZERO, 0), 0.0);
        assert_eq!(c.cap(SimDuration::from_millis(149), 0), 0.0);
        assert!(c.cap(SimDuration::from_millis(150), 0) > 0.0);
    }

    #[test]
    fn ramp_doubles_per_rtt() {
        let mut c = cap_for(100, 0.0);
        let r0 = c.cap(SimDuration::from_millis(150), 0);
        let r1 = c.cap(SimDuration::from_millis(250), 0);
        let r2 = c.cap(SimDuration::from_millis(350), 0);
        // IW=3 segments of 1460 → 4380 bytes / 0.1 s = 43800 B/s,
        // doubling per RTT (in quarter-RTT sub-steps).
        assert!((r0 - 43_800.0).abs() < 1.0, "r0 = {r0}");
        assert!((r1 - 87_600.0).abs() < 1.0);
        assert!((r2 - 175_200.0).abs() < 1.0);
        // Sub-RTT granularity: a quarter-RTT later the cap has already
        // moved by 2^(1/4).
        let mid = c.cap(SimDuration::from_millis(175), 0);
        assert!(
            (mid - 43_800.0 * 2f64.powf(0.25)).abs() < 1.0,
            "mid = {mid}"
        );
    }

    #[test]
    fn ramp_clamps_at_steady_rate() {
        let mut c = cap_for(100, 0.01);
        let steady = c.steady_rate();
        // Far in the future the cap equals the steady rate.
        let late = c.cap(SimDuration::from_secs(60), 0);
        assert!((late - steady).abs() < 1e-9);
        // And it never exceeds it at any round.
        for ms in (150..5000).step_by(50) {
            assert!(c.cap(SimDuration::from_millis(ms), 0) <= steady + 1e-9);
        }
    }

    #[test]
    fn next_change_walks_subround_boundaries_then_none() {
        let mut c = cap_for(100, 0.01);
        // During handshake: change at startup.
        assert_eq!(
            c.next_cap_change(SimDuration::ZERO),
            Some(SimDuration::from_millis(150))
        );
        // In sub-round 0: next at startup + RTT/4.
        assert_eq!(
            c.next_cap_change(SimDuration::from_millis(150)),
            Some(SimDuration::from_millis(175))
        );
        // Eventually None.
        assert_eq!(c.next_cap_change(SimDuration::from_secs(120)), None);
    }

    #[test]
    fn next_change_strictly_after_age() {
        let mut c = cap_for(80, 0.005);
        let mut age = SimDuration::ZERO;
        for _ in 0..100 {
            match c.next_cap_change(age) {
                Some(next) => {
                    assert!(next > age, "{next:?} !> {age:?}");
                    age = next;
                }
                None => return,
            }
        }
        panic!("ramp never converged");
    }

    #[test]
    fn subrounds_to_steady_consistent_with_ramp() {
        let c = cap_for(100, 0.01);
        let q = c.subrounds_to_steady();
        assert!((c.ramp_rate(q) - c.steady_rate()).abs() < 1e-9);
        if q > 0 {
            assert!(c.ramp_rate(q - 1) < c.steady_rate());
        }
    }

    #[test]
    fn integrates_with_flow_engine() {
        use ir_simnet::prelude::*;
        let mut topo = Topology::new();
        let a = topo.add_node("a", NodeKind::Client);
        let b = topo.add_node("b", NodeKind::Server);
        let l = topo.add_link(a, b, SimDuration::from_millis(50));
        let route = topo.route(&[a, b]).unwrap();
        let mut net = Network::new(topo, 1.0);
        net.set_link_process(l, Box::new(ConstantProcess::new(10e6)));

        let cfg = TcpConfig::for_rtt(SimDuration::from_millis(100)).with_loss(0.01);
        let tcp = TcpRateCap::new(cfg);
        let steady = tcp.steady_rate();
        let id = net.start_flow(route, 4_000_000, Box::new(tcp));
        let done = net.run_flow(id, SimTime::from_secs(600)).unwrap();
        // Link is 10 MB/s but TCP converges to `steady`; overall
        // throughput must be below steady (startup + ramp) but within
        // 25% of it for a multi-MB transfer.
        let thr = done.throughput();
        assert!(thr < steady, "thr {thr} >= steady {steady}");
        assert!(thr > 0.75 * steady, "thr {thr} too far below {steady}");
    }

    #[test]
    fn short_transfer_biased_by_slow_start() {
        // The same connection moving 20 KB vs 2 MB: the short transfer's
        // mean throughput is a fraction of steady state. This is the
        // effect that makes tiny probes bad predictors (paper §2.1).
        use ir_simnet::prelude::*;
        let mk_net = || {
            let mut topo = Topology::new();
            let a = topo.add_node("a", NodeKind::Client);
            let b = topo.add_node("b", NodeKind::Server);
            let l = topo.add_link(a, b, SimDuration::from_millis(50));
            let route = topo.route(&[a, b]).unwrap();
            let mut net = Network::new(topo, 1.0);
            net.set_link_process(l, Box::new(ConstantProcess::new(10e6)));
            (net, route)
        };
        let cfg = TcpConfig::for_rtt(SimDuration::from_millis(100)).with_loss(0.001);
        let run = |bytes: u64| {
            let (mut net, route) = mk_net();
            let id = net.start_flow(route, bytes, Box::new(TcpRateCap::new(cfg)));
            net.run_flow(id, SimTime::from_secs(600))
                .unwrap()
                .throughput()
        };
        let short = run(20_000);
        let long = run(2_000_000);
        assert!(short < 0.5 * long, "short {short}, long {long}");
    }
}
