//! Randomized tests for the HTTP subset: parser/serializer round trips
//! and range-resolution invariants.
//!
//! These were proptest-based; the offline build has no proptest, so the
//! same invariants are checked over seeded random case sweeps (every
//! failure reproduces from the printed case number).

use ir_http::{
    encode_request, encode_response, parse_request, parse_response, ByteRange, ContentRange,
    Headers, Method, Parsed, Request, Response, StatusCode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `[A-Za-z][A-Za-z0-9-]{0,15}` — an HTTP header token.
fn gen_token(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-";
    let mut s = String::new();
    s.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..rng.gen_range(0..16usize) {
        s.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    s
}

/// A header value: printable ASCII, no CR/LF, no leading/trailing
/// whitespace, non-empty.
fn gen_value(rng: &mut StdRng) -> String {
    loop {
        let mut s = String::new();
        s.push(rng.gen_range(b'!'..=b'~') as char);
        for _ in 0..rng.gen_range(0..31usize) {
            s.push(rng.gen_range(b' '..=b'~') as char);
        }
        let t = s.trim();
        if !t.is_empty() {
            return t.to_string();
        }
    }
}

fn gen_headers(rng: &mut StdRng) -> Vec<(String, String)> {
    (0..rng.gen_range(0..8usize))
        .map(|_| (gen_token(rng), gen_value(rng)))
        .collect()
}

/// `/[a-z0-9/._-]{0,30}` — a request path.
fn gen_path(rng: &mut StdRng, max: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
    let mut s = String::from("/");
    for _ in 0..rng.gen_range(0..=max) {
        s.push(CHARS[rng.gen_range(0..CHARS.len())] as char);
    }
    s
}

#[test]
fn request_round_trips() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x47_0000 + case);
        let mut req = Request::get(gen_path(&mut rng, 30));
        if rng.gen::<bool>() {
            req.method = Method::Head;
        }
        for (n, v) in gen_headers(&mut rng) {
            req.headers.append(n, v);
        }
        let mut buf = bytes::BytesMut::new();
        encode_request(&req, &mut buf);
        match parse_request(&buf).unwrap() {
            Parsed::Complete { value, consumed } => {
                assert_eq!(value, req, "case {case}");
                assert_eq!(consumed, buf.len(), "case {case}");
            }
            Parsed::Partial => panic!("case {case}: complete message parsed as partial"),
        }
    }
}

#[test]
fn response_round_trips() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x47_1000 + case);
        let mut resp = Response::new(StatusCode(rng.gen_range(100u16..600)));
        for (n, v) in gen_headers(&mut rng) {
            resp.headers.append(n, v);
        }
        let mut buf = bytes::BytesMut::new();
        encode_response(&resp, &mut buf);
        match parse_response(&buf).unwrap() {
            Parsed::Complete { value, consumed } => {
                assert_eq!(value, resp, "case {case}");
                assert_eq!(consumed, buf.len(), "case {case}");
            }
            Parsed::Partial => panic!("case {case}: complete message parsed as partial"),
        }
    }
}

#[test]
fn any_prefix_is_partial_or_error_never_complete_wrong() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x47_2000 + case);
        let req = Request::get(gen_path(&mut rng, 10)).with_header("Host", "h");
        let mut buf = bytes::BytesMut::new();
        encode_request(&req, &mut buf);
        let cut_frac: f64 = rng.gen_range(0.0..1.0);
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        // A strict prefix can be Partial (or an error for pathological
        // cuts, though our grammar has none) — never a Complete parse.
        if let Ok(Parsed::Complete { .. }) = parse_request(&buf[..cut]) {
            panic!("case {case}: prefix of length {cut} parsed as complete");
        }
    }
}

#[test]
fn byte_range_display_parse_round_trip() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x47_3000 + case);
        let a = rng.gen_range(0u64..1_000_000);
        let span = rng.gen_range(0u64..1_000_000);
        for r in [
            ByteRange::FromTo(a, a + span),
            ByteRange::From(a),
            ByteRange::Suffix(span + 1),
        ] {
            assert_eq!(ByteRange::parse(&r.to_string()).unwrap(), r, "case {case}");
        }
    }
}

#[test]
fn resolve_is_within_bounds() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x47_4000 + case);
        let a = rng.gen_range(0u64..2_000_000);
        let b = rng.gen_range(0u64..2_000_000);
        let total = rng.gen_range(0u64..1_500_000);
        let (lo, hi) = (a.min(b), a.max(b));
        for r in [
            ByteRange::FromTo(lo, hi),
            ByteRange::From(lo),
            ByteRange::Suffix(hi + 1),
        ] {
            match r.resolve(total) {
                None => assert!(
                    total == 0
                        || matches!(
                            r,
                            ByteRange::FromTo(x, _) | ByteRange::From(x) if x >= total
                        ),
                    "case {case}"
                ),
                Some((first, last)) => {
                    assert!(first <= last, "case {case}");
                    assert!(last < total, "case {case}");
                }
            }
        }
    }
}

#[test]
fn probe_and_remainder_partition_the_file() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x47_5000 + case);
        let x = rng.gen_range(1u64..1_000_000);
        let extra = rng.gen_range(1u64..1_000_000);
        // The paper's two requests: bytes=0-(x-1) and bytes=x- must
        // partition an n-byte file exactly.
        let n = x + extra;
        let (p1, p2) = ByteRange::first(x).resolve(n).unwrap();
        let (r1, r2) = ByteRange::from_offset(x).resolve(n).unwrap();
        assert_eq!(p1, 0, "case {case}");
        assert_eq!(p2 + 1, r1, "case {case}");
        assert_eq!(r2, n - 1, "case {case}");
        assert_eq!(
            ByteRange::resolved_len(p1, p2) + ByteRange::resolved_len(r1, r2),
            n,
            "case {case}"
        );
    }
}

#[test]
fn content_range_round_trips() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x47_6000 + case);
        let first = rng.gen_range(0u64..1_000_000);
        let len = rng.gen_range(1u64..1_000_000);
        let slack = rng.gen_range(0u64..100);
        let last = first + len - 1;
        let total = last + 1 + slack;
        let cr = ContentRange::new(first, last, total);
        assert_eq!(
            ContentRange::parse(&cr.to_string()).unwrap(),
            cr,
            "case {case}"
        );
        assert_eq!(cr.len(), len, "case {case}");
    }
}

#[test]
fn headers_lookup_is_case_insensitive() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x47_7000 + case);
        let name = gen_token(&mut rng);
        let value = gen_value(&mut rng);
        let mut h = Headers::new();
        h.append(name.clone(), value.clone());
        assert_eq!(
            h.get(&name.to_uppercase()),
            Some(value.as_str()),
            "case {case}"
        );
        assert_eq!(
            h.get(&name.to_lowercase()),
            Some(value.as_str()),
            "case {case}"
        );
    }
}
