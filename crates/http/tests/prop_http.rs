//! Property tests for the HTTP subset: parser/serializer round trips
//! and range-resolution invariants.

use ir_http::{
    encode_request, encode_response, parse_request, parse_response, ByteRange, ContentRange,
    Headers, Method, Parsed, Request, Response, StatusCode,
};
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,15}".prop_map(|s| s)
}

fn arb_value() -> impl Strategy<Value = String> {
    // Header values without CR/LF or leading/trailing whitespace.
    "[!-~][ -~]{0,30}".prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((arb_token(), arb_value()), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_round_trips(
        path in "/[a-z0-9/._-]{0,30}",
        headers in arb_headers(),
        is_head in any::<bool>(),
    ) {
        let mut req = Request::get(path);
        if is_head {
            req.method = Method::Head;
        }
        for (n, v) in &headers {
            req.headers.append(n.clone(), v.clone());
        }
        let mut buf = bytes::BytesMut::new();
        encode_request(&req, &mut buf);
        match parse_request(&buf).unwrap() {
            Parsed::Complete { value, consumed } => {
                prop_assert_eq!(value, req);
                prop_assert_eq!(consumed, buf.len());
            }
            Parsed::Partial => prop_assert!(false, "complete message parsed as partial"),
        }
    }

    #[test]
    fn response_round_trips(
        code in 100u16..600,
        headers in arb_headers(),
    ) {
        let mut resp = Response::new(StatusCode(code));
        for (n, v) in &headers {
            resp.headers.append(n.clone(), v.clone());
        }
        let mut buf = bytes::BytesMut::new();
        encode_response(&resp, &mut buf);
        match parse_response(&buf).unwrap() {
            Parsed::Complete { value, consumed } => {
                prop_assert_eq!(value, resp);
                prop_assert_eq!(consumed, buf.len());
            }
            Parsed::Partial => prop_assert!(false, "complete message parsed as partial"),
        }
    }

    #[test]
    fn any_prefix_is_partial_or_error_never_complete_wrong(
        path in "/[a-z0-9]{0,10}",
        cut_frac in 0.0f64..1.0,
    ) {
        let req = Request::get(path).with_header("Host", "h");
        let mut buf = bytes::BytesMut::new();
        encode_request(&req, &mut buf);
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        // A strict prefix can be Partial (or an error for pathological
        // cuts, though our grammar has none) — never a Complete parse.
        if let Ok(Parsed::Complete { .. }) = parse_request(&buf[..cut]) {
            prop_assert!(false, "prefix of length {cut} parsed as complete");
        }
    }

    #[test]
    fn byte_range_display_parse_round_trip(a in 0u64..1_000_000, span in 0u64..1_000_000) {
        for r in [
            ByteRange::FromTo(a, a + span),
            ByteRange::From(a),
            ByteRange::Suffix(span + 1),
        ] {
            prop_assert_eq!(ByteRange::parse(&r.to_string()).unwrap(), r);
        }
    }

    #[test]
    fn resolve_is_within_bounds(a in 0u64..2_000_000, b in 0u64..2_000_000, total in 0u64..1_500_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        for r in [ByteRange::FromTo(lo, hi), ByteRange::From(lo), ByteRange::Suffix(hi + 1)] {
            match r.resolve(total) {
                None => prop_assert!(total == 0 || matches!(r, ByteRange::FromTo(x, _) | ByteRange::From(x) if x >= total)),
                Some((first, last)) => {
                    prop_assert!(first <= last);
                    prop_assert!(last < total);
                }
            }
        }
    }

    #[test]
    fn probe_and_remainder_partition_the_file(x in 1u64..1_000_000, extra in 1u64..1_000_000) {
        // The paper's two requests: bytes=0-(x-1) and bytes=x- must
        // partition an n-byte file exactly.
        let n = x + extra;
        let (p1, p2) = ByteRange::first(x).resolve(n).unwrap();
        let (r1, r2) = ByteRange::from_offset(x).resolve(n).unwrap();
        prop_assert_eq!(p1, 0);
        prop_assert_eq!(p2 + 1, r1);
        prop_assert_eq!(r2, n - 1);
        prop_assert_eq!(
            ByteRange::resolved_len(p1, p2) + ByteRange::resolved_len(r1, r2),
            n
        );
    }

    #[test]
    fn content_range_round_trips(first in 0u64..1_000_000, len in 1u64..1_000_000, slack in 0u64..100) {
        let last = first + len - 1;
        let total = last + 1 + slack;
        let cr = ContentRange::new(first, last, total);
        prop_assert_eq!(ContentRange::parse(&cr.to_string()).unwrap(), cr);
        prop_assert_eq!(cr.len(), len);
    }

    #[test]
    fn headers_lookup_is_case_insensitive(name in arb_token(), value in arb_value()) {
        let mut h = Headers::new();
        h.append(name.clone(), value.clone());
        prop_assert_eq!(h.get(&name.to_uppercase()), Some(value.as_str()));
        prop_assert_eq!(h.get(&name.to_lowercase()), Some(value.as_str()));
    }
}
