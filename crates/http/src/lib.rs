//! `ir-http` — the HTTP/1.1 subset the indirect-routing framework
//! speaks.
//!
//! The paper's measurement framework is built on "HTTP and its support
//! for partial transfers and proxies" (§2.1). This crate implements
//! exactly that slice of HTTP/1.1, from scratch:
//!
//! * [`types`] — methods (GET/HEAD), status codes (200/206/416/…),
//!   case-insensitive headers, request/response heads.
//! * [`range`] — RFC 7233 single-range `Range` and `Content-Range`
//!   headers with satisfiability resolution; the probe is
//!   `bytes=0-{x-1}`, the remainder `bytes={x}-`.
//! * [`uri`] — origin-form and absolute-form request targets.
//! * [`codec`] — incremental head parser and serializer over
//!   [`bytes::BytesMut`] (bodies stream; heads are bounded).
//! * [`proxy`] — the relay rewrite: absolute-form in, origin-form out,
//!   `Range` preserved, `Via` annotated.
//! * [`reassembly`] — out-of-order chunk reassembly for striped
//!   multi-path range downloads (`ir-stripe`).
//!
//! Both the simulated transport (`ir-core`) and the real-socket relay
//! (`ir-relay`) drive these same types, so the protocol logic is tested
//! once and exercised everywhere.

pub mod codec;
pub mod error;
pub mod proxy;
pub mod range;
pub mod reassembly;
pub mod types;
pub mod uri;

pub use codec::{encode_request, encode_response, parse_request, parse_response, Parsed};
pub use error::HttpError;
pub use proxy::{plan_forward, via_proxy, ForwardPlan};
pub use range::{ByteRange, ContentRange};
pub use reassembly::{Reassembly, ReassemblyError};
pub use types::{Headers, Method, Request, Response, StatusCode};
pub use uri::Target;
