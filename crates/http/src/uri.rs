//! Minimal URI handling: absolute-form `http://host:port/path` (what a
//! client sends to a proxy) and origin-form `/path` (what it sends to
//! the server directly).

use crate::error::HttpError;
use std::fmt;

/// A parsed request target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Origin-form: just a path, e.g. `/big/file.bin`.
    Origin {
        /// The path, always starting with `/`.
        path: String,
    },
    /// Absolute-form: scheme + authority + path, e.g.
    /// `http://origin:8080/big/file.bin`. Used when requesting via a
    /// proxy (the paper's intermediate node).
    Absolute {
        /// Host name or IP literal.
        host: String,
        /// Port (default 80 when absent).
        port: u16,
        /// The path, always starting with `/`.
        path: String,
    },
}

impl Target {
    /// Parses a request target.
    pub fn parse(s: &str) -> Result<Target, HttpError> {
        let err = || HttpError::BadUri(s.to_string());
        if let Some(rest) = s.strip_prefix("http://") {
            let (authority, path) = match rest.find('/') {
                Some(idx) => (&rest[..idx], &rest[idx..]),
                None => (rest, "/"),
            };
            if authority.is_empty() {
                return Err(err());
            }
            let (host, port) = match authority.rsplit_once(':') {
                Some((h, p)) => {
                    let port: u16 = p.parse().map_err(|_| err())?;
                    (h, port)
                }
                None => (authority, 80),
            };
            if host.is_empty() {
                return Err(err());
            }
            Ok(Target::Absolute {
                host: host.to_string(),
                port,
                path: path.to_string(),
            })
        } else if s.starts_with('/') {
            Ok(Target::Origin {
                path: s.to_string(),
            })
        } else {
            Err(err())
        }
    }

    /// The path component.
    pub fn path(&self) -> &str {
        match self {
            Target::Origin { path } => path,
            Target::Absolute { path, .. } => path,
        }
    }

    /// Builds an absolute-form target.
    pub fn absolute(host: impl Into<String>, port: u16, path: impl Into<String>) -> Target {
        let path = path.into();
        assert!(path.starts_with('/'), "path must start with /");
        Target::Absolute {
            host: host.into(),
            port,
            path,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Origin { path } => f.write_str(path),
            Target::Absolute { host, port, path } => write!(f, "http://{host}:{port}{path}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_origin_form() {
        let t = Target::parse("/a/b.bin").unwrap();
        assert_eq!(
            t,
            Target::Origin {
                path: "/a/b.bin".into()
            }
        );
        assert_eq!(t.path(), "/a/b.bin");
    }

    #[test]
    fn parses_absolute_form() {
        let t = Target::parse("http://origin:8080/f").unwrap();
        assert_eq!(
            t,
            Target::Absolute {
                host: "origin".into(),
                port: 8080,
                path: "/f".into()
            }
        );
    }

    #[test]
    fn default_port_and_path() {
        let t = Target::parse("http://e.com").unwrap();
        assert_eq!(
            t,
            Target::Absolute {
                host: "e.com".into(),
                port: 80,
                path: "/".into()
            }
        );
    }

    #[test]
    fn round_trip_display() {
        for s in ["/x/y", "http://h:99/z"] {
            let t = Target::parse(s).unwrap();
            assert_eq!(Target::parse(&t.to_string()).unwrap(), t);
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "ftp://x/y",
            "http://",
            "http://:80/x",
            "relative/path",
            "http://h:badport/x",
        ] {
            assert!(Target::parse(bad).is_err(), "{bad} should fail");
        }
    }
}
