//! Error type for the HTTP subset.

use std::fmt;

/// Errors produced while parsing or validating HTTP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request/status line is malformed.
    BadStartLine(String),
    /// A header line is malformed (no colon, bad characters).
    BadHeader(String),
    /// The method is not one we support.
    UnsupportedMethod(String),
    /// The HTTP version is not 1.0/1.1.
    UnsupportedVersion(String),
    /// A `Range` header could not be parsed.
    BadRange(String),
    /// A `Content-Range` header could not be parsed.
    BadContentRange(String),
    /// A URI could not be parsed.
    BadUri(String),
    /// The message claims a body longer than the configured limit.
    BodyTooLarge { declared: u64, limit: u64 },
    /// `Content-Length` missing or unparsable where required.
    BadContentLength(String),
    /// The peer closed mid-message.
    UnexpectedEof,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadStartLine(s) => write!(f, "malformed start line: {s:?}"),
            HttpError::BadHeader(s) => write!(f, "malformed header: {s:?}"),
            HttpError::UnsupportedMethod(s) => write!(f, "unsupported method: {s:?}"),
            HttpError::UnsupportedVersion(s) => write!(f, "unsupported HTTP version: {s:?}"),
            HttpError::BadRange(s) => write!(f, "malformed Range: {s:?}"),
            HttpError::BadContentRange(s) => write!(f, "malformed Content-Range: {s:?}"),
            HttpError::BadUri(s) => write!(f, "malformed URI: {s:?}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::BadContentLength(s) => write!(f, "bad Content-Length: {s:?}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
        }
    }
}

impl std::error::Error for HttpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HttpError::BadRange("x".into())
            .to_string()
            .contains("Range"));
        assert!(HttpError::UnexpectedEof.to_string().contains("closed"));
        let e = HttpError::BodyTooLarge {
            declared: 10,
            limit: 5,
        };
        assert!(e.to_string().contains("10"));
    }
}
