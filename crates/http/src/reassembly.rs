//! Chunk reassembly for striped range downloads.
//!
//! The striper (`ir-stripe` / `ir-relay`'s striped client) fetches
//! disjoint byte ranges of one resource concurrently over several
//! paths; responses land in arbitrary order. [`Reassembly`] collects
//! them into the final body, tracking coverage so a transfer is
//! `complete` exactly when every byte of `[0, total)` arrived once.
//!
//! Overlapping inserts are rejected rather than reconciled: the chunk
//! scheduler owns the partition and an overlap means it double-fetched
//! (or a server answered the wrong `Content-Range`) — silently keeping
//! either copy would hide the bug the differential tests exist to
//! catch. Zero-length inserts are accepted as no-ops (a rebalanced
//! chunk whose remainder shrank to nothing reassembles trivially).

use std::fmt;

/// Why an insert was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassemblyError {
    /// The segment ends past the declared total length.
    OutOfBounds {
        /// First byte offset of the rejected segment.
        offset: u64,
        /// Rejected segment length.
        len: u64,
        /// Declared resource size.
        total: u64,
    },
    /// The segment intersects bytes that already arrived.
    Overlap {
        /// First byte offset of the rejected segment.
        offset: u64,
        /// Rejected segment length.
        len: u64,
    },
}

impl fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReassemblyError::OutOfBounds { offset, len, total } => write!(
                f,
                "segment [{offset}, {}) exceeds total {total}",
                offset + len
            ),
            ReassemblyError::Overlap { offset, len } => write!(
                f,
                "segment [{offset}, {}) overlaps received bytes",
                offset + len
            ),
        }
    }
}

impl std::error::Error for ReassemblyError {}

/// An out-of-order range reassembly buffer for a resource of known
/// size.
#[derive(Debug, Clone)]
pub struct Reassembly {
    buf: Vec<u8>,
    /// Received segments as half-open `(start, end)` intervals, kept
    /// sorted, disjoint, and coalesced (adjacent segments merge).
    segments: Vec<(u64, u64)>,
    received: u64,
}

impl Reassembly {
    /// An empty buffer for a resource of `total` bytes.
    pub fn new(total: u64) -> Reassembly {
        Reassembly {
            buf: vec![0; usize::try_from(total).expect("resource exceeds address space")],
            segments: Vec::new(),
            received: 0,
        }
    }

    /// Declared resource size in bytes.
    pub fn total(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Bytes received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// True once every byte of `[0, total)` has arrived.
    pub fn complete(&self) -> bool {
        self.received == self.total()
    }

    /// The uncovered intervals, sorted, as half-open `(start, end)`
    /// pairs — what a repair pass would still need to fetch.
    pub fn missing(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0;
        for &(s, e) in &self.segments {
            if cursor < s {
                out.push((cursor, s));
            }
            cursor = e;
        }
        if cursor < self.total() {
            out.push((cursor, self.total()));
        }
        out
    }

    /// Inserts the bytes of one range response starting at `offset`.
    /// Empty segments are accepted without effect; out-of-bounds and
    /// overlapping segments are rejected and change nothing.
    pub fn insert(&mut self, offset: u64, data: &[u8]) -> Result<(), ReassemblyError> {
        let len = data.len() as u64;
        if len == 0 {
            return Ok(());
        }
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= self.total())
            .ok_or(ReassemblyError::OutOfBounds {
                offset,
                len,
                total: self.total(),
            })?;
        // `idx` is where (offset, end) would sit; overlap can only be
        // with the segment before or after that slot.
        let idx = self.segments.partition_point(|&(s, _)| s < offset);
        if idx > 0 && self.segments[idx - 1].1 > offset {
            return Err(ReassemblyError::Overlap { offset, len });
        }
        if idx < self.segments.len() && self.segments[idx].0 < end {
            return Err(ReassemblyError::Overlap { offset, len });
        }
        self.buf[offset as usize..end as usize].copy_from_slice(data);
        self.received += len;
        // Coalesce with adjacent neighbours to keep the list short.
        let merge_prev = idx > 0 && self.segments[idx - 1].1 == offset;
        let merge_next = idx < self.segments.len() && self.segments[idx].0 == end;
        match (merge_prev, merge_next) {
            (true, true) => {
                self.segments[idx - 1].1 = self.segments[idx].1;
                self.segments.remove(idx);
            }
            (true, false) => self.segments[idx - 1].1 = end,
            (false, true) => self.segments[idx].0 = offset,
            (false, false) => self.segments.insert(idx, (offset, end)),
        }
        Ok(())
    }

    /// The reassembled body, or `None` while bytes are missing.
    pub fn into_body(self) -> Option<Vec<u8>> {
        self.complete().then_some(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn body(n: u64) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn in_order_adjacent_chunks_reassemble() {
        let b = body(100);
        let mut r = Reassembly::new(100);
        r.insert(0, &b[..40]).unwrap();
        assert!(!r.complete());
        assert_eq!(r.missing(), vec![(40, 100)]);
        r.insert(40, &b[40..]).unwrap();
        assert!(r.complete());
        assert_eq!(r.into_body().unwrap(), b);
    }

    #[test]
    fn out_of_order_chunks_reassemble() {
        let b = body(90);
        let mut r = Reassembly::new(90);
        r.insert(60, &b[60..]).unwrap();
        r.insert(0, &b[..30]).unwrap();
        assert_eq!(r.missing(), vec![(30, 60)]);
        r.insert(30, &b[30..60]).unwrap();
        assert_eq!(r.into_body().unwrap(), b);
    }

    #[test]
    fn zero_length_insert_is_a_noop_anywhere() {
        let b = body(10);
        let mut r = Reassembly::new(10);
        r.insert(0, &[]).unwrap();
        r.insert(5, &[]).unwrap();
        r.insert(10, &[]).unwrap(); // even at the end boundary
        assert_eq!(r.received(), 0);
        assert_eq!(r.missing(), vec![(0, 10)]);
        r.insert(0, &b).unwrap();
        assert!(r.complete());
    }

    #[test]
    fn zero_total_resource_is_born_complete() {
        let r = Reassembly::new(0);
        assert!(r.complete());
        assert!(r.missing().is_empty());
        assert_eq!(r.into_body().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overlap_is_rejected_and_changes_nothing() {
        let b = body(50);
        let mut r = Reassembly::new(50);
        r.insert(10, &b[10..30]).unwrap();
        // Left overlap, right overlap, containment, exact duplicate.
        for (off, seg) in [(5, &b[5..15]), (25, &b[25..35]), (12, &b[12..18])] {
            assert_eq!(
                r.insert(off, seg),
                Err(ReassemblyError::Overlap {
                    offset: off,
                    len: seg.len() as u64
                })
            );
        }
        assert!(r.insert(10, &b[10..30]).is_err());
        assert_eq!(r.received(), 20);
        assert_eq!(r.missing(), vec![(0, 10), (30, 50)]);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let mut r = Reassembly::new(20);
        assert!(matches!(
            r.insert(15, &[0; 10]),
            Err(ReassemblyError::OutOfBounds { .. })
        ));
        assert!(matches!(
            r.insert(u64::MAX, &[0; 2]),
            Err(ReassemblyError::OutOfBounds { .. })
        ));
        assert_eq!(r.received(), 0);
    }

    /// Fuzz-style sweep: random partitions of random bodies, inserted
    /// in a random order, must reassemble byte-identically — the
    /// invariant the striper's correctness rests on.
    #[test]
    fn seeded_random_partitions_reassemble_byte_identically() {
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(0xC40C + seed);
            let total = rng.gen_range(1u64..5000);
            let b = body(total);
            // Random partition: sorted unique cut points.
            let cuts = rng.gen_range(0usize..20);
            let mut points: Vec<u64> = (0..cuts).map(|_| rng.gen_range(0..=total)).collect();
            points.push(0);
            points.push(total);
            points.sort_unstable();
            points.dedup();
            let mut chunks: Vec<(u64, u64)> = points.windows(2).map(|w| (w[0], w[1])).collect();
            // Shuffle the insertion order (Fisher–Yates).
            for i in (1..chunks.len()).rev() {
                let j = rng.gen_range(0..=i);
                chunks.swap(i, j);
            }
            let mut r = Reassembly::new(total);
            for &(s, e) in &chunks {
                r.insert(s, &b[s as usize..e as usize])
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
            assert!(r.complete(), "seed {seed}: {:?}", r.missing());
            assert_eq!(r.into_body().unwrap(), b, "seed {seed} body mismatch");
        }
    }
}
