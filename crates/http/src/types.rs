//! Core HTTP message types: methods, status codes, headers, requests,
//! responses.

use crate::error::HttpError;
use std::fmt;

/// Request methods the measurement framework uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Fetch content (optionally a byte range of it).
    Get,
    /// Fetch headers only; used for size discovery.
    Head,
}

impl Method {
    /// Canonical token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
        }
    }

    /// Parses a method token.
    pub fn parse(s: &str) -> Result<Method, HttpError> {
        match s {
            "GET" => Ok(Method::Get),
            "HEAD" => Ok(Method::Head),
            other => Err(HttpError::UnsupportedMethod(other.to_string())),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Response status codes the framework emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 206 Partial Content — the range-request workhorse.
    pub const PARTIAL_CONTENT: StatusCode = StatusCode(206);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 416 Range Not Satisfiable.
    pub const RANGE_NOT_SATISFIABLE: StatusCode = StatusCode(416);
    /// 502 Bad Gateway — relay could not reach the origin.
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// 503 Service Unavailable — relay refused under backpressure.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            206 => "Partial Content",
            400 => "Bad Request",
            404 => "Not Found",
            416 => "Range Not Satisfiable",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// 2xx?
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An ordered, case-insensitive multimap of headers.
///
/// Backed by a `Vec` — header counts are tiny and iteration order
/// matters for byte-exact round-trips.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Appends a header (does not replace existing ones of the same
    /// name).
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replaces all headers of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.entries.push((name.to_string(), value.into()));
    }

    /// Removes all headers of `name`; returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    /// First value of `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True if a header of `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Parses `Content-Length`, if present.
    pub fn content_length(&self) -> Result<Option<u64>, HttpError> {
        match self.get("Content-Length") {
            None => Ok(None),
            Some(v) => v
                .trim()
                .parse::<u64>()
                .map(Some)
                .map_err(|_| HttpError::BadContentLength(v.to_string())),
        }
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target: origin-form (`/path`) or absolute-form
    /// (`http://host:port/path`, used when talking to a proxy).
    pub target: String,
    /// Headers.
    pub headers: Headers,
}

impl Request {
    /// Creates a GET request for `target`.
    pub fn get(target: impl Into<String>) -> Self {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: Headers::new(),
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.set(name, value);
        self
    }
}

/// An HTTP response. The body is kept separate from the head so large
/// bodies can stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers.
    pub headers: Headers,
}

impl Response {
    /// Creates a response with the given status.
    pub fn new(status: StatusCode) -> Self {
        Response {
            status,
            headers: Headers::new(),
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.set(name, value);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trip() {
        assert_eq!(Method::parse("GET").unwrap(), Method::Get);
        assert_eq!(Method::parse("HEAD").unwrap(), Method::Head);
        assert_eq!(Method::Get.as_str(), "GET");
        assert!(matches!(
            Method::parse("POST"),
            Err(HttpError::UnsupportedMethod(_))
        ));
    }

    #[test]
    fn status_reasons() {
        assert_eq!(StatusCode::PARTIAL_CONTENT.reason(), "Partial Content");
        assert_eq!(StatusCode(599).reason(), "Unknown");
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::PARTIAL_CONTENT.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.append("Content-Length", "42");
        assert_eq!(h.get("content-length"), Some("42"));
        assert_eq!(h.get("CONTENT-LENGTH"), Some("42"));
        assert!(h.contains("Content-length"));
        assert_eq!(h.get("Host"), None);
    }

    #[test]
    fn set_replaces_append_stacks() {
        let mut h = Headers::new();
        h.append("X-A", "1");
        h.append("X-A", "2");
        assert_eq!(h.len(), 2);
        h.set("x-a", "3");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("X-A"), Some("3"));
    }

    #[test]
    fn remove_counts() {
        let mut h = Headers::new();
        h.append("Via", "a");
        h.append("VIA", "b");
        assert_eq!(h.remove("via"), 2);
        assert!(h.is_empty());
        assert_eq!(h.remove("via"), 0);
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        assert_eq!(h.content_length().unwrap(), None);
        h.set("Content-Length", " 1024 ");
        assert_eq!(h.content_length().unwrap(), Some(1024));
        h.set("Content-Length", "abc");
        assert!(h.content_length().is_err());
    }

    #[test]
    fn request_builders() {
        let r = Request::get("/file.bin").with_header("Host", "example.org");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.target, "/file.bin");
        assert_eq!(r.headers.get("host"), Some("example.org"));
    }
}
