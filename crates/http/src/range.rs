//! Byte ranges (RFC 7233 subset).
//!
//! The paper's entire probe mechanism is "the HTTP range request
//! option" (§2.1): fetch `bytes=0-{x-1}` over both paths, then fetch
//! `bytes={x}-` over the winner. We implement the single-range subset of
//! RFC 7233: `bytes=a-b`, `bytes=a-`, and suffix ranges `bytes=-n`,
//! plus `Content-Range` for 206 responses.

use crate::error::HttpError;
use std::fmt;

/// A single byte-range specifier from a `Range` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteRange {
    /// `bytes=a-b` — closed interval, inclusive on both ends.
    FromTo(u64, u64),
    /// `bytes=a-` — from offset `a` to the end.
    From(u64),
    /// `bytes=-n` — the final `n` bytes.
    Suffix(u64),
}

impl ByteRange {
    /// The range fetching the **first `n` bytes** (`bytes=0-{n-1}`):
    /// the paper's probe request.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn first(n: u64) -> ByteRange {
        assert!(n > 0, "empty prefix range");
        ByteRange::FromTo(0, n - 1)
    }

    /// The range fetching everything **from offset `a`** (`bytes=a-`):
    /// the paper's remainder request.
    pub fn from_offset(a: u64) -> ByteRange {
        ByteRange::From(a)
    }

    /// Parses a `Range` header value, e.g. `bytes=0-102399`.
    pub fn parse(value: &str) -> Result<ByteRange, HttpError> {
        let err = || HttpError::BadRange(value.to_string());
        let rest = value.trim().strip_prefix("bytes=").ok_or_else(err)?;
        if rest.contains(',') {
            // Multi-range is deliberately unsupported: the framework
            // never sends it and a server may ignore it anyway.
            return Err(err());
        }
        let (a, b) = rest.split_once('-').ok_or_else(err)?;
        let a = a.trim();
        let b = b.trim();
        match (a.is_empty(), b.is_empty()) {
            (true, true) => Err(err()),
            (true, false) => {
                let n: u64 = b.parse().map_err(|_| err())?;
                if n == 0 {
                    return Err(err());
                }
                Ok(ByteRange::Suffix(n))
            }
            (false, true) => Ok(ByteRange::From(a.parse().map_err(|_| err())?)),
            (false, false) => {
                let lo: u64 = a.parse().map_err(|_| err())?;
                let hi: u64 = b.parse().map_err(|_| err())?;
                if lo > hi {
                    return Err(err());
                }
                Ok(ByteRange::FromTo(lo, hi))
            }
        }
    }

    /// Resolves the range against a representation of `total` bytes:
    /// the concrete `(first, last)` inclusive offsets that will be
    /// served, or `None` if unsatisfiable (→ 416).
    pub fn resolve(self, total: u64) -> Option<(u64, u64)> {
        if total == 0 {
            return None;
        }
        match self {
            ByteRange::FromTo(a, b) => {
                if a >= total {
                    None
                } else {
                    Some((a, b.min(total - 1)))
                }
            }
            ByteRange::From(a) => {
                if a >= total {
                    None
                } else {
                    Some((a, total - 1))
                }
            }
            ByteRange::Suffix(n) => {
                let n = n.min(total);
                Some((total - n, total - 1))
            }
        }
    }

    /// Number of bytes a resolved `(first, last)` pair covers.
    pub fn resolved_len(first: u64, last: u64) -> u64 {
        last - first + 1
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByteRange::FromTo(a, b) => write!(f, "bytes={a}-{b}"),
            ByteRange::From(a) => write!(f, "bytes={a}-"),
            ByteRange::Suffix(n) => write!(f, "bytes=-{n}"),
        }
    }
}

/// A `Content-Range: bytes first-last/total` header for 206 responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentRange {
    /// First byte offset served (inclusive).
    pub first: u64,
    /// Last byte offset served (inclusive).
    pub last: u64,
    /// Total size of the representation.
    pub total: u64,
}

impl ContentRange {
    /// Creates a content range; validates ordering.
    ///
    /// # Panics
    ///
    /// Panics if `first > last` or `last >= total`.
    pub fn new(first: u64, last: u64, total: u64) -> Self {
        assert!(first <= last, "inverted content range");
        assert!(last < total, "range exceeds total");
        ContentRange { first, last, total }
    }

    /// Bytes covered.
    pub fn len(&self) -> u64 {
        self.last - self.first + 1
    }

    /// Content ranges are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Parses a `Content-Range` header value.
    pub fn parse(value: &str) -> Result<ContentRange, HttpError> {
        let err = || HttpError::BadContentRange(value.to_string());
        let rest = value.trim().strip_prefix("bytes ").ok_or_else(err)?;
        let (range, total) = rest.split_once('/').ok_or_else(err)?;
        let total: u64 = total.trim().parse().map_err(|_| err())?;
        let (a, b) = range.split_once('-').ok_or_else(err)?;
        let first: u64 = a.trim().parse().map_err(|_| err())?;
        let last: u64 = b.trim().parse().map_err(|_| err())?;
        if first > last || last >= total {
            return Err(err());
        }
        Ok(ContentRange { first, last, total })
    }
}

impl fmt::Display for ContentRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}-{}/{}", self.first, self.last, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_from_to() {
        assert_eq!(
            ByteRange::parse("bytes=0-102399").unwrap(),
            ByteRange::FromTo(0, 102_399)
        );
        assert_eq!(
            ByteRange::parse(" bytes=5-9 ").unwrap(),
            ByteRange::FromTo(5, 9)
        );
    }

    #[test]
    fn parse_open_and_suffix() {
        assert_eq!(
            ByteRange::parse("bytes=102400-").unwrap(),
            ByteRange::From(102_400)
        );
        assert_eq!(
            ByteRange::parse("bytes=-500").unwrap(),
            ByteRange::Suffix(500)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "bytes=",
            "bytes=-",
            "bytes=9-5",
            "bytes=a-b",
            "bytes=1-2,4-5",
            "bits=0-1",
            "bytes=-0",
        ] {
            assert!(ByteRange::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn display_round_trips() {
        for r in [
            ByteRange::FromTo(0, 99),
            ByteRange::From(100),
            ByteRange::Suffix(7),
        ] {
            assert_eq!(ByteRange::parse(&r.to_string()).unwrap(), r);
        }
    }

    #[test]
    fn probe_helpers() {
        assert_eq!(ByteRange::first(102_400), ByteRange::FromTo(0, 102_399));
        assert_eq!(ByteRange::from_offset(102_400), ByteRange::From(102_400));
    }

    #[test]
    fn resolve_clamps_and_rejects() {
        assert_eq!(ByteRange::FromTo(0, 99).resolve(1000), Some((0, 99)));
        assert_eq!(ByteRange::FromTo(0, 5000).resolve(1000), Some((0, 999)));
        assert_eq!(ByteRange::FromTo(1000, 2000).resolve(1000), None);
        assert_eq!(ByteRange::From(500).resolve(1000), Some((500, 999)));
        assert_eq!(ByteRange::From(1000).resolve(1000), None);
        assert_eq!(ByteRange::Suffix(100).resolve(1000), Some((900, 999)));
        assert_eq!(ByteRange::Suffix(5000).resolve(1000), Some((0, 999)));
        assert_eq!(ByteRange::FromTo(0, 0).resolve(0), None);
    }

    #[test]
    fn content_range_round_trip() {
        let cr = ContentRange::new(0, 102_399, 2_000_000);
        assert_eq!(cr.to_string(), "bytes 0-102399/2000000");
        assert_eq!(ContentRange::parse(&cr.to_string()).unwrap(), cr);
        assert_eq!(cr.len(), 102_400);
    }

    #[test]
    fn content_range_parse_rejects() {
        for bad in [
            "bytes 5-4/10",
            "bytes 0-10/10",
            "0-5/10",
            "bytes x-y/z",
            "bytes 0-5",
        ] {
            assert!(ContentRange::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    #[should_panic(expected = "range exceeds total")]
    fn content_range_new_validates() {
        ContentRange::new(0, 10, 10);
    }
}
