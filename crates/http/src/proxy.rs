//! Proxy request rewriting — the relay's forwarding semantics.
//!
//! The paper interposes "an intermediate overlay node … between the
//! client and the server using a proxy" (§2.1). The client sends the
//! relay an **absolute-form** request naming the origin; the relay
//! rewrites it to **origin-form**, dials the origin, forwards, and
//! streams the response back. The rewrite preserves the `Range` header
//! — that is what makes the probe/remainder protocol work end-to-end
//! through a relay.

use crate::error::HttpError;
use crate::types::Request;
use crate::uri::Target;

/// Where the relay should forward a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardPlan {
    /// Origin host to dial.
    pub host: String,
    /// Origin port to dial.
    pub port: u16,
    /// The rewritten (origin-form) request to send there.
    pub request: Request,
}

/// Rewrites an absolute-form proxy request into a forward plan.
///
/// Errors if the target is not absolute-form (a relay refuses
/// origin-form requests: it would not know where to send them).
pub fn plan_forward(req: &Request) -> Result<ForwardPlan, HttpError> {
    let target = Target::parse(&req.target)?;
    match target {
        Target::Origin { .. } => Err(HttpError::BadUri(format!(
            "proxy needs absolute-form target, got {:?}",
            req.target
        ))),
        Target::Absolute { host, port, path } => {
            let mut fwd = Request {
                method: req.method,
                target: path,
                headers: req.headers.clone(),
            };
            // Host reflects the origin, not the relay.
            fwd.headers.set("Host", format!("{host}:{port}"));
            // Annotate the hop, useful in tests and debugging.
            fwd.headers.append("Via", "1.1 ir-relay");
            Ok(ForwardPlan {
                host,
                port,
                request: fwd,
            })
        }
    }
}

/// Builds the absolute-form request a client sends to a relay to fetch
/// `path` from `origin_host:origin_port`.
pub fn via_proxy(origin_host: &str, origin_port: u16, path: &str) -> Request {
    Request::get(Target::absolute(origin_host, origin_port, path).to_string())
        .with_header("Host", format!("{origin_host}:{origin_port}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::ByteRange;

    #[test]
    fn rewrites_absolute_to_origin_form() {
        let req = via_proxy("origin.test", 8080, "/big.bin")
            .with_header("Range", ByteRange::first(102_400).to_string());
        let plan = plan_forward(&req).unwrap();
        assert_eq!(plan.host, "origin.test");
        assert_eq!(plan.port, 8080);
        assert_eq!(plan.request.target, "/big.bin");
        assert_eq!(plan.request.headers.get("Range"), Some("bytes=0-102399"));
        assert_eq!(plan.request.headers.get("Host"), Some("origin.test:8080"));
        assert!(plan
            .request
            .headers
            .get("Via")
            .unwrap()
            .contains("ir-relay"));
    }

    #[test]
    fn refuses_origin_form() {
        let req = Request::get("/no-idea-where");
        assert!(matches!(plan_forward(&req), Err(HttpError::BadUri(_))));
    }

    #[test]
    fn refuses_garbage_target() {
        let req = Request::get("not-a-uri");
        assert!(plan_forward(&req).is_err());
    }

    #[test]
    fn preserves_method() {
        let mut req = via_proxy("h", 80, "/x");
        req.method = crate::types::Method::Head;
        let plan = plan_forward(&req).unwrap();
        assert_eq!(plan.request.method, crate::types::Method::Head);
    }
}
