//! Wire codec: incremental parsing and serialization of message heads.
//!
//! Bodies are streamed by the transport layer (`ir-relay`) and never
//! buffered whole, so the codec only deals with heads (start line +
//! headers). Parsing is incremental: feed any prefix of the byte
//! stream; until the terminating blank line arrives the parser reports
//! [`Parsed::Partial`] and consumes nothing.

use crate::error::HttpError;
use crate::types::{Headers, Method, Request, Response, StatusCode};
use bytes::BytesMut;

/// Maximum bytes a message head may occupy. Far above anything the
/// framework generates; exists to bound a malicious/buggy peer.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum header lines per message.
pub const MAX_HEADERS: usize = 64;

/// Outcome of an incremental parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed<T> {
    /// A complete head was parsed; `consumed` bytes should be drained
    /// from the input buffer.
    Complete {
        /// The parsed message head.
        value: T,
        /// Bytes of input the head occupied, including the blank line.
        consumed: usize,
    },
    /// More input is needed.
    Partial,
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn split_head_lines(head: &[u8]) -> Result<Vec<&str>, HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| {
        HttpError::BadStartLine(String::from_utf8_lossy(&head[..head.len().min(64)]).into_owned())
    })?;
    Ok(text.split("\r\n").filter(|l| !l.is_empty()).collect())
}

fn parse_headers(lines: &[&str]) -> Result<Headers, HttpError> {
    if lines.len() > MAX_HEADERS {
        return Err(HttpError::BadHeader(format!(
            "too many headers: {}",
            lines.len()
        )));
    }
    let mut headers = Headers::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.to_string()))?;
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader(line.to_string()));
        }
        headers.append(name, value.trim());
    }
    Ok(headers)
}

/// Incrementally parses a request head from `buf`.
pub fn parse_request(buf: &[u8]) -> Result<Parsed<Request>, HttpError> {
    let Some(end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadStartLine("head too large".into()));
        }
        return Ok(Parsed::Partial);
    };
    let lines = split_head_lines(&buf[..end])?;
    let start = lines
        .first()
        .ok_or_else(|| HttpError::BadStartLine(String::new()))?;
    let mut parts = start.split(' ');
    let method = Method::parse(parts.next().unwrap_or(""))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadStartLine(start.to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadStartLine(start.to_string()))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    if parts.next().is_some() {
        return Err(HttpError::BadStartLine(start.to_string()));
    }
    let headers = parse_headers(&lines[1..])?;
    Ok(Parsed::Complete {
        value: Request {
            method,
            target,
            headers,
        },
        consumed: end,
    })
}

/// Incrementally parses a response head from `buf`.
pub fn parse_response(buf: &[u8]) -> Result<Parsed<Response>, HttpError> {
    let Some(end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadStartLine("head too large".into()));
        }
        return Ok(Parsed::Partial);
    };
    let lines = split_head_lines(&buf[..end])?;
    let start = lines
        .first()
        .ok_or_else(|| HttpError::BadStartLine(String::new()))?;
    let mut parts = start.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| HttpError::BadStartLine(start.to_string()))?;
    // Reason phrase (rest of line) is ignored.
    let headers = parse_headers(&lines[1..])?;
    Ok(Parsed::Complete {
        value: Response {
            status: StatusCode(code),
            headers,
        },
        consumed: end,
    })
}

/// Serializes a request head into `buf`.
pub fn encode_request(req: &Request, buf: &mut BytesMut) {
    buf.extend_from_slice(req.method.as_str().as_bytes());
    buf.extend_from_slice(b" ");
    buf.extend_from_slice(req.target.as_bytes());
    buf.extend_from_slice(b" HTTP/1.1\r\n");
    for (n, v) in req.headers.iter() {
        buf.extend_from_slice(n.as_bytes());
        buf.extend_from_slice(b": ");
        buf.extend_from_slice(v.as_bytes());
        buf.extend_from_slice(b"\r\n");
    }
    buf.extend_from_slice(b"\r\n");
}

/// Serializes a response head into `buf`.
pub fn encode_response(resp: &Response, buf: &mut BytesMut) {
    buf.extend_from_slice(b"HTTP/1.1 ");
    buf.extend_from_slice(resp.status.0.to_string().as_bytes());
    buf.extend_from_slice(b" ");
    buf.extend_from_slice(resp.status.reason().as_bytes());
    buf.extend_from_slice(b"\r\n");
    for (n, v) in resp.headers.iter() {
        buf.extend_from_slice(n.as_bytes());
        buf.extend_from_slice(b": ");
        buf.extend_from_slice(v.as_bytes());
        buf.extend_from_slice(b"\r\n");
    }
    buf.extend_from_slice(b"\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Request;

    fn req_bytes(r: &Request) -> BytesMut {
        let mut b = BytesMut::new();
        encode_request(r, &mut b);
        b
    }

    #[test]
    fn request_round_trip() {
        let r = Request::get("http://origin:80/f.bin")
            .with_header("Host", "origin")
            .with_header("Range", "bytes=0-102399");
        let buf = req_bytes(&r);
        match parse_request(&buf).unwrap() {
            Parsed::Complete { value, consumed } => {
                assert_eq!(value, r);
                assert_eq!(consumed, buf.len());
            }
            Parsed::Partial => panic!("should be complete"),
        }
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::new(StatusCode::PARTIAL_CONTENT)
            .with_header("Content-Length", "102400")
            .with_header("Content-Range", "bytes 0-102399/2000000");
        let mut buf = BytesMut::new();
        encode_response(&resp, &mut buf);
        match parse_response(&buf).unwrap() {
            Parsed::Complete { value, consumed } => {
                assert_eq!(value, resp);
                assert_eq!(consumed, buf.len());
            }
            Parsed::Partial => panic!("should be complete"),
        }
    }

    #[test]
    fn partial_input_reports_partial() {
        let r = Request::get("/x").with_header("Host", "h");
        let buf = req_bytes(&r);
        for cut in 0..buf.len() - 1 {
            match parse_request(&buf[..cut]) {
                Ok(Parsed::Partial) => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn consumed_excludes_following_bytes() {
        let r = Request::get("/x");
        let mut buf = req_bytes(&r);
        let head_len = buf.len();
        buf.extend_from_slice(b"BODYBYTES");
        match parse_request(&buf).unwrap() {
            Parsed::Complete { consumed, .. } => assert_eq!(consumed, head_len),
            _ => panic!(),
        }
    }

    #[test]
    fn pipelined_heads_parse_one_at_a_time() {
        // Two requests back to back in one buffer (keep-alive
        // pipelining): each parse consumes exactly one head.
        let r1 = Request::get("/a").with_header("Host", "h");
        let r2 = Request::get("/b").with_header("Range", "bytes=0-9");
        let mut buf = BytesMut::new();
        encode_request(&r1, &mut buf);
        let first_len = buf.len();
        encode_request(&r2, &mut buf);
        match parse_request(&buf).unwrap() {
            Parsed::Complete { value, consumed } => {
                assert_eq!(value, r1);
                assert_eq!(consumed, first_len);
                match parse_request(&buf[consumed..]).unwrap() {
                    Parsed::Complete {
                        value,
                        consumed: c2,
                    } => {
                        assert_eq!(value, r2);
                        assert_eq!(first_len + c2, buf.len());
                    }
                    Parsed::Partial => panic!("second head should parse"),
                }
            }
            Parsed::Partial => panic!("first head should parse"),
        }
    }

    #[test]
    fn rejects_bad_method_and_version() {
        assert!(matches!(
            parse_request(b"BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            parse_request(b"GET /pot HTTP/2\r\n\r\n"),
            Err(HttpError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            parse_request(b"GET\r\n\r\n"),
            Err(HttpError::BadStartLine(_))
        ));
    }

    #[test]
    fn rejects_bad_header_lines() {
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
    }

    #[test]
    fn oversized_head_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GET / HTTP/1.1\r\nX: ");
        buf.extend_from_slice(&vec![b'a'; MAX_HEAD_BYTES + 10]);
        assert!(parse_request(&buf).is_err());
    }

    #[test]
    fn response_reason_phrase_tolerated() {
        let raw = b"HTTP/1.1 206 Partial Content\r\nContent-Length: 5\r\n\r\n";
        match parse_response(raw).unwrap() {
            Parsed::Complete { value, .. } => {
                assert_eq!(value.status, StatusCode::PARTIAL_CONTENT);
                assert_eq!(value.headers.content_length().unwrap(), Some(5));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn http_10_accepted() {
        let raw = b"GET /f HTTP/1.0\r\n\r\n";
        assert!(matches!(parse_request(raw), Ok(Parsed::Complete { .. })));
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(parse_request(raw.as_bytes()).is_err());
    }
}
