//! `ir-simnet` — a deterministic flow-level (fluid) network simulator.
//!
//! This crate is the substrate substituting for the paper's PlanetLab
//! testbed (see DESIGN.md §2). It models what the indirect-routing study
//! actually depends on — *per-path available bandwidth that varies over
//! time* — without packet-level detail:
//!
//! * [`time`] — integer-microsecond simulated clock.
//! * [`events`] — deterministic event queue (FIFO tie-breaking).
//! * [`topology`] — nodes, directed links with latency, routes.
//! * [`bandwidth`] — time-varying available-bandwidth processes
//!   (constant, piecewise, regime-switching Markov, AR(1) log-rate,
//!   rare-jump decorators).
//! * [`fairshare`] — max–min fair allocation among concurrent flows
//!   with per-flow caps (progressive filling).
//! * [`sim`] — the engine: fluid flows advance between rate-change /
//!   cap-change / completion boundaries; supports racing (`first of`)
//!   and cancellation, which is exactly what the paper's probe protocol
//!   needs.
//!
//! # Example
//!
//! ```
//! use ir_simnet::prelude::*;
//!
//! let mut topo = Topology::new();
//! let c = topo.add_node("client", NodeKind::Client);
//! let s = topo.add_node("server", NodeKind::Server);
//! let link = topo.add_link(c, s, SimDuration::from_millis(50));
//! let route = topo.route(&[c, s]).unwrap();
//!
//! let mut net = Network::new(topo, 1.0);
//! net.set_link_process(link, Box::new(ConstantProcess::new(125_000.0))); // 1 Mbps
//! let flow = net.start_flow(route, 250_000, Box::new(NoCap));
//! let done = net.run_flow(flow, SimTime::from_secs(60)).unwrap();
//! assert!((done.throughput() - 125_000.0).abs() < 1.0);
//! ```

pub mod bandwidth;
pub mod events;
pub mod fairshare;
pub mod faults;
pub mod partition;
pub mod sim;
pub mod soa;
pub mod stable;
pub mod time;
pub mod topology;
pub mod tracer;

/// One-stop imports for simulator users.
pub mod prelude {
    pub use crate::bandwidth::{
        Ar1LogProcess, BandwidthProcess, ConstantProcess, DiurnalProcess, JumpMixProcess,
        MinProcess, PiecewiseProcess, RegimeSwitchingProcess, ScaledProcess, MIN_RATE,
    };
    pub use crate::events::EventQueue;
    pub use crate::fairshare::{max_min_rates, reference_rates, AllocFlow};
    pub use crate::faults::{FaultEvent, FaultPlan, FaultSpec};
    pub use crate::partition::{Components, FlowLinkPartition, UnionFind};
    pub use crate::sim::{
        CompletedFlow, ConstCap, EngineMode, EngineStats, FlowId, Network, NoCap, RateCap,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{LinkId, Node, NodeId, NodeKind, Route, Sharing, Topology};
    pub use crate::tracer::{trace_link, trace_process, RateTrace};
}

pub use prelude::*;
