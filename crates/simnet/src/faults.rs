//! Deterministic fault plane: scheduled link outages, capacity
//! brownouts, and node crash/restart events.
//!
//! A [`FaultPlan`] is a plain schedule of [`FaultEvent`]s, fixed before
//! the run starts. The engine replays it through its event queue, so a
//! faulted run is exactly as deterministic as a fault-free one: the
//! same seed and plan produce bit-identical results, and an **empty**
//! plan leaves the engine byte-identical to a build without the fault
//! plane (see `Network::set_fault_plan`).
//!
//! Plans are built three ways:
//!
//! * [`FaultPlan::none`] — no faults (the guaranteed no-op);
//! * explicit builders ([`FaultPlan::link_outage`],
//!   [`FaultPlan::brownout`], [`FaultPlan::node_outage`]) — tests and
//!   replay;
//! * [`FaultPlan::random`] — a seeded renewal process per target link
//!   and node ([`FaultSpec`] holds the means), for the experiments'
//!   outage-rate sweeps. Generation is a pure function of
//!   `(spec, targets, seed)`; the same inputs always yield the same
//!   schedule, which is how a fault schedule is replayed from its seed.

use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId};
use ir_stats::sampling::{Exponential, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The link stops carrying traffic (effective rate 0).
    LinkDown(LinkId),
    /// The link recovers.
    LinkUp(LinkId),
    /// The link's available bandwidth is scaled by `factor` from this
    /// instant on; a factor of `1.0` restores full capacity. Factors
    /// must lie in `(0, 1]` — use [`FaultEvent::LinkDown`] for a full
    /// outage.
    BrownoutSet {
        /// The affected link.
        link: LinkId,
        /// Multiplier applied to the link's process rate.
        factor: f64,
    },
    /// The node crashes: every link touching it stops carrying traffic.
    NodeDown(NodeId),
    /// The node restarts.
    NodeUp(NodeId),
}

/// Parameters of [`FaultPlan::random`]: independent renewal processes
/// of outages per target link and crash/restart cycles per target node,
/// with exponential inter-failure and repair times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Generate events in `[0, horizon)`. Repairs may land past the
    /// horizon (an outage in progress at the horizon still ends).
    pub horizon: SimDuration,
    /// Mean time between outage onsets per target link. Zero disables
    /// link faults.
    pub link_mtbf: SimDuration,
    /// Mean outage (or brownout) duration.
    pub link_outage_mean: SimDuration,
    /// Probability that a link fault is a brownout instead of a full
    /// outage.
    pub brownout_prob: f64,
    /// Rate multiplier during a brownout, in `(0, 1]`.
    pub brownout_factor: f64,
    /// Mean time between crashes per target node. Zero disables node
    /// faults.
    pub node_mtbf: SimDuration,
    /// Mean node downtime.
    pub node_downtime_mean: SimDuration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            horizon: SimDuration::from_secs(3600),
            link_mtbf: SimDuration::from_secs(600),
            link_outage_mean: SimDuration::from_secs(30),
            brownout_prob: 0.3,
            brownout_factor: 0.25,
            node_mtbf: SimDuration::ZERO,
            node_downtime_mean: SimDuration::from_secs(60),
        }
    }
}

impl FaultSpec {
    /// Validates invariants.
    pub fn validate(&self) {
        assert!(!self.horizon.is_zero(), "zero horizon");
        assert!(!self.link_outage_mean.is_zero(), "zero outage mean");
        assert!(!self.node_downtime_mean.is_zero(), "zero downtime mean");
        assert!(
            (0.0..=1.0).contains(&self.brownout_prob),
            "brownout_prob out of [0,1]"
        );
        assert!(
            self.brownout_factor > 0.0 && self.brownout_factor <= 1.0,
            "brownout_factor out of (0,1]"
        );
    }
}

/// A deterministic schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

/// SplitMix64 sub-seed derivation, so each target gets an independent
/// stream regardless of how many targets precede it.
fn sub_seed(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: guaranteed no-op (the engine discards it and
    /// behaves byte-identically to a build without the fault plane).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The schedule, in insertion order (the queue orders by time with
    /// FIFO tie-breaking).
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// Schedules a raw event.
    pub fn push(&mut self, at: SimTime, event: FaultEvent) {
        if let FaultEvent::BrownoutSet { factor, .. } = event {
            assert!(
                factor > 0.0 && factor <= 1.0,
                "brownout factor {factor} out of (0,1]"
            );
        }
        self.events.push((at, event));
    }

    /// Schedules a full outage of `link` over `[from, to)`.
    pub fn link_outage(mut self, link: LinkId, from: SimTime, to: SimTime) -> Self {
        assert!(to > from, "outage ends before it starts");
        self.push(from, FaultEvent::LinkDown(link));
        self.push(to, FaultEvent::LinkUp(link));
        self
    }

    /// Schedules a brownout of `link` to `factor` over `[from, to)`.
    pub fn brownout(mut self, link: LinkId, from: SimTime, to: SimTime, factor: f64) -> Self {
        assert!(to > from, "brownout ends before it starts");
        self.push(from, FaultEvent::BrownoutSet { link, factor });
        self.push(to, FaultEvent::BrownoutSet { link, factor: 1.0 });
        self
    }

    /// Schedules a crash/restart of `node` over `[from, to)`.
    pub fn node_outage(mut self, node: NodeId, from: SimTime, to: SimTime) -> Self {
        assert!(to > from, "outage ends before it starts");
        self.push(from, FaultEvent::NodeDown(node));
        self.push(to, FaultEvent::NodeUp(node));
        self
    }

    /// Generates a seeded random plan over explicit targets. Each link
    /// in `links` and node in `nodes` gets an independent renewal
    /// process (exponential inter-failure and repair draws) from its own
    /// sub-seeded stream, so the schedule does not depend on target
    /// iteration order beyond the targets themselves.
    pub fn random(spec: &FaultSpec, links: &[LinkId], nodes: &[NodeId], seed: u64) -> Self {
        spec.validate();
        let mut plan = FaultPlan::none();
        if !spec.link_mtbf.is_zero() {
            let gap = Exponential::with_mean(spec.link_mtbf.as_secs_f64());
            let dur = Exponential::with_mean(spec.link_outage_mean.as_secs_f64());
            for &link in links {
                let mut rng = StdRng::seed_from_u64(sub_seed(seed, 0xFA17_0000 + link.0 as u64));
                let mut t = SimTime::ZERO;
                loop {
                    t += SimDuration::from_secs_f64_ceil(gap.sample(&mut rng));
                    if t >= SimTime::ZERO + spec.horizon {
                        break;
                    }
                    let end = t + SimDuration::from_secs_f64_ceil(dur.sample(&mut rng).max(1e-6));
                    if rng.gen::<f64>() < spec.brownout_prob {
                        plan = plan.brownout(link, t, end, spec.brownout_factor);
                    } else {
                        plan = plan.link_outage(link, t, end);
                    }
                    t = end;
                }
            }
        }
        if !spec.node_mtbf.is_zero() {
            let gap = Exponential::with_mean(spec.node_mtbf.as_secs_f64());
            let dur = Exponential::with_mean(spec.node_downtime_mean.as_secs_f64());
            for &node in nodes {
                let mut rng = StdRng::seed_from_u64(sub_seed(seed, 0xFA17_8000 + node.0 as u64));
                let mut t = SimTime::ZERO;
                loop {
                    t += SimDuration::from_secs_f64_ceil(gap.sample(&mut rng));
                    if t >= SimTime::ZERO + spec.horizon {
                        break;
                    }
                    let end = t + SimDuration::from_secs_f64_ceil(dur.sample(&mut rng).max(1e-6));
                    plan = plan.node_outage(node, t, end);
                    t = end;
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.events().is_empty());
    }

    #[test]
    fn builders_schedule_paired_events() {
        let l = LinkId(3);
        let n = NodeId(1);
        let p = FaultPlan::none()
            .link_outage(l, SimTime::from_secs(10), SimTime::from_secs(20))
            .brownout(l, SimTime::from_secs(30), SimTime::from_secs(40), 0.5)
            .node_outage(n, SimTime::from_secs(50), SimTime::from_secs(60));
        assert_eq!(p.len(), 6);
        assert_eq!(
            p.events()[0],
            (SimTime::from_secs(10), FaultEvent::LinkDown(l))
        );
        assert_eq!(
            p.events()[1],
            (SimTime::from_secs(20), FaultEvent::LinkUp(l))
        );
        assert_eq!(
            p.events()[3],
            (
                SimTime::from_secs(40),
                FaultEvent::BrownoutSet {
                    link: l,
                    factor: 1.0
                }
            )
        );
        assert_eq!(
            p.events()[5],
            (SimTime::from_secs(60), FaultEvent::NodeUp(n))
        );
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn zero_brownout_factor_rejected() {
        let _ = FaultPlan::none().brownout(LinkId(0), SimTime::ZERO, SimTime::from_secs(1), 0.0);
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let spec = FaultSpec {
            link_mtbf: SimDuration::from_secs(120),
            node_mtbf: SimDuration::from_secs(600),
            ..FaultSpec::default()
        };
        let links = [LinkId(0), LinkId(1), LinkId(2)];
        let nodes = [NodeId(0)];
        let a = FaultPlan::random(&spec, &links, &nodes, 7);
        let b = FaultPlan::random(&spec, &links, &nodes, 7);
        assert_eq!(a, b);
        let c = FaultPlan::random(&spec, &links, &nodes, 8);
        assert_ne!(a, c, "different seed should reshuffle the schedule");
        assert!(!a.is_empty(), "an hour at 2-minute MTBF yields events");
    }

    #[test]
    fn random_events_respect_horizon_and_pairing() {
        let spec = FaultSpec {
            horizon: SimDuration::from_secs(1800),
            link_mtbf: SimDuration::from_secs(90),
            brownout_prob: 0.0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::random(&spec, &[LinkId(4)], &[], 42);
        let mut down = 0i32;
        for &(at, ev) in plan.events() {
            match ev {
                FaultEvent::LinkDown(l) => {
                    assert_eq!(l, LinkId(4));
                    assert!(at < SimTime::ZERO + spec.horizon, "onset past horizon");
                    down += 1;
                }
                FaultEvent::LinkUp(_) => down -= 1,
                other => panic!("unexpected event {other:?}"),
            }
            assert!((0..=1).contains(&down), "outages must not nest");
        }
        assert_eq!(down, 0, "every outage is repaired");
    }

    #[test]
    fn disabled_dimensions_generate_nothing() {
        let spec = FaultSpec {
            link_mtbf: SimDuration::ZERO,
            node_mtbf: SimDuration::ZERO,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::random(&spec, &[LinkId(0)], &[NodeId(0)], 1);
        assert!(plan.is_empty());
    }
}
