//! Congestion-component partitioning of fair-share problems.
//!
//! Two flows can influence each other's max–min allocation only if they
//! are connected through a chain of shared **finite-capacity** links:
//! progressive filling moves capacity between flows exclusively across
//! links both sides cross. Links with infinite problem capacity
//! ([`crate::topology::Sharing::PerFlow`] links enter the solver as ∞;
//! see `Network::scratch_problem`) never saturate and never freeze
//! anybody, so they do not couple flows at all. The *congestion
//! components* of a problem are therefore the connected components of
//! the bipartite flow↔finite-link membership graph, and the solver may
//! treat every component as an independent sub-problem
//! ([`crate::soa`] holds the component-wise kernels).
//!
//! Everything here is deterministic by construction: components are
//! numbered by their smallest member flow (ascending), members are
//! listed ascending, and none of it depends on hash iteration order or
//! on how many worker threads later solve the components.

/// Union–find (disjoint-set forest) over `u32` elements with
/// path-halving finds. Unions attach the larger root under the smaller,
/// so representatives are the minimum element of each set — stable and
/// insertion-order-independent.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// An empty structure; call [`UnionFind::reset`] to size it.
    pub fn new() -> Self {
        UnionFind::default()
    }

    /// Re-initialises to `n` singleton elements, reusing the allocation.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when sized to zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Grows to at least `n` elements (new elements are singletons).
    pub fn ensure(&mut self, n: usize) {
        let from = self.parent.len();
        if n > from {
            self.parent.extend(from as u32..n as u32);
        }
    }

    /// Re-singletonises one element (used by lazy rebuilds that only
    /// reset the elements they are about to re-union).
    pub fn isolate(&mut self, x: u32) {
        self.ensure(x as usize + 1);
        self.parent[x as usize] = x;
    }

    /// Representative (minimum element) of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            // Path halving: point x at its grandparent.
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets of `a` and `b`; returns true if they were
    /// distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        true
    }
}

/// The congestion components of one fair-share problem, in a dense
/// struct-of-arrays layout ready for the component-wise solver.
///
/// Components are ordered by their smallest member flow; flow and link
/// member lists are each ascending. Indices are in *problem space*:
/// flows `0..n_flows`, links `0..n_links` of whatever problem the
/// builder was handed (the `fairshare` wrappers use their dense finite
/// subset, the engine its in-use capacity slots).
#[derive(Debug, Clone, Default)]
pub struct Components {
    /// Flow members grouped by component (ascending within each).
    pub flows: Vec<u32>,
    /// Half-open component extents into `flows` (`len = count + 1`).
    pub flow_starts: Vec<u32>,
    /// Link members grouped by component (ascending within each). Links
    /// crossed by no flow belong to no component and are absent.
    pub links: Vec<u32>,
    /// Half-open component extents into `links` (`len = count + 1`).
    pub link_starts: Vec<u32>,
    /// Component of each flow.
    pub comp_of_flow: Vec<u32>,
    /// Root element → component id + 1 (0 = none). Scratch for the
    /// extraction passes, reused across builds.
    map: Vec<u32>,
    /// Cursor scratch for the counting sorts.
    cursor: Vec<u32>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.flow_starts.len().saturating_sub(1)
    }

    /// Flow members of component `c`, ascending.
    pub fn comp_flows(&self, c: usize) -> &[u32] {
        &self.flows[self.flow_starts[c] as usize..self.flow_starts[c + 1] as usize]
    }

    /// Link members of component `c`, ascending.
    pub fn comp_links(&self, c: usize) -> &[u32] {
        &self.links[self.link_starts[c] as usize..self.link_starts[c + 1] as usize]
    }

    /// Size of the largest component (flows), 0 when empty.
    pub fn max_flows(&self) -> usize {
        (0..self.count())
            .map(|c| self.comp_flows(c).len())
            .max()
            .unwrap_or(0)
    }

    /// Builds the decomposition of a CSR problem: flow `f` crosses the
    /// links `flow_links[flow_off[f]..flow_off[f + 1]]`. `uf` is scratch
    /// (reset here). Element layout inside: links first (`0..n_links`),
    /// then flows (`n_links..n_links + n_flows`) — links first so their
    /// element ids are stable as flows are appended.
    pub fn build_csr(
        &mut self,
        n_flows: usize,
        n_links: usize,
        flow_off: &[u32],
        flow_links: &[u32],
        uf: &mut UnionFind,
    ) {
        debug_assert_eq!(flow_off.len(), n_flows + 1);
        uf.reset(n_links + n_flows);
        for f in 0..n_flows {
            let fe = (n_links + f) as u32;
            for &l in &flow_links[flow_off[f] as usize..flow_off[f + 1] as usize] {
                uf.union(fe, l);
            }
        }
        self.extract(n_flows, n_links, uf, |k| (n_links + k) as u32, |s| s as u32);
    }

    /// Shared extraction: given a populated union–find, produce the
    /// grouped member lists. `flow_elem`/`link_elem` map problem indices
    /// to union–find elements.
    fn extract(
        &mut self,
        n_flows: usize,
        n_links: usize,
        uf: &mut UnionFind,
        flow_elem: impl Fn(usize) -> u32,
        link_elem: impl Fn(usize) -> u32,
    ) {
        self.map.clear();
        self.map.resize(uf.len(), 0);
        // Pass 1: number components in order of first (i.e. smallest)
        // member flow.
        self.comp_of_flow.clear();
        let mut count = 0u32;
        for k in 0..n_flows {
            let r = uf.find(flow_elem(k)) as usize;
            if self.map[r] == 0 {
                count += 1;
                self.map[r] = count;
            }
            self.comp_of_flow.push(self.map[r] - 1);
        }
        // Pass 2: counting-sort flows into component groups (ascending
        // order is preserved because we scan flows ascending).
        self.flow_starts.clear();
        self.flow_starts.resize(count as usize + 1, 0);
        for &c in &self.comp_of_flow {
            self.flow_starts[c as usize + 1] += 1;
        }
        for c in 0..count as usize {
            self.flow_starts[c + 1] += self.flow_starts[c];
        }
        self.cursor.clear();
        self.cursor
            .extend_from_slice(&self.flow_starts[..count as usize]);
        self.flows.clear();
        self.flows.resize(n_flows, 0);
        for (k, &c) in self.comp_of_flow.iter().enumerate() {
            self.flows[self.cursor[c as usize] as usize] = k as u32;
            self.cursor[c as usize] += 1;
        }
        // Pass 3: the same for links; a link whose root holds no flow is
        // crossed by no flow and is dropped.
        self.link_starts.clear();
        self.link_starts.resize(count as usize + 1, 0);
        let mut kept = 0u32;
        for s in 0..n_links {
            let r = uf.find(link_elem(s)) as usize;
            if self.map[r] != 0 {
                self.link_starts[self.map[r] as usize] += 1;
                kept += 1;
            }
        }
        for c in 0..count as usize {
            self.link_starts[c + 1] += self.link_starts[c];
        }
        self.cursor.clear();
        self.cursor
            .extend_from_slice(&self.link_starts[..count as usize]);
        self.links.clear();
        self.links.resize(kept as usize, 0);
        for s in 0..n_links {
            let r = uf.find(link_elem(s)) as usize;
            let m = self.map[r];
            if m != 0 {
                let c = (m - 1) as usize;
                self.links[self.cursor[c] as usize] = s as u32;
                self.cursor[c] += 1;
            }
        }
    }
}

/// Incrementally-maintained union–find over the engine's flow↔link
/// membership (flow slots against **capacity-shared** link ids).
///
/// * Flow **arrival** is a pure union — O(α) per route link — so
///   arrival-heavy phases (a megaflow study starting 10⁶ transfers)
///   never rebuild.
/// * Flow **departure** (completion or cancellation) cannot be expressed
///   as a union; it marks the structure dirty, and the next query
///   rebuilds from the live membership — lazily, so a burst of
///   simultaneous completions costs one rebuild.
///
/// The canonical component numbering produced by
/// [`FlowLinkPartition::components_into`] is a pure function of the live
/// membership, so an incrementally-maintained structure and a rebuilt
/// one yield identical components (the partitioner property suite pins
/// this).
#[derive(Debug, Clone)]
pub struct FlowLinkPartition {
    /// Links occupy elements `0..n_links`; flow slot `i` is element
    /// `n_links + i`.
    uf: UnionFind,
    n_links: usize,
    dirty: bool,
    /// Rebuilds performed (telemetry).
    pub rebuilds: u64,
    /// Arrivals folded in incrementally (telemetry).
    pub incremental_adds: u64,
}

impl FlowLinkPartition {
    /// A clean partition over a topology with `n_links` links and no
    /// flows yet.
    pub fn new(n_links: usize) -> Self {
        let mut uf = UnionFind::new();
        uf.reset(n_links);
        FlowLinkPartition {
            uf,
            n_links,
            dirty: false,
            rebuilds: 0,
            incremental_adds: 0,
        }
    }

    /// True when a departure has invalidated the structure and the next
    /// query will rebuild.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Folds an arriving flow in incrementally. `links` are the
    /// capacity-shared link ids of its route. A no-op while dirty (the
    /// pending rebuild will see the flow in the live membership).
    pub fn on_flow_start(&mut self, slot: u32, links: impl Iterator<Item = u32>) {
        if self.dirty {
            return;
        }
        let fe = self.n_links as u32 + slot;
        self.uf.isolate(fe);
        for l in links {
            debug_assert!((l as usize) < self.n_links);
            self.uf.union(fe, l);
        }
        self.incremental_adds += 1;
    }

    /// Notes a departing flow; the structure is dirty until rebuilt.
    pub fn on_flow_end(&mut self) {
        self.dirty = true;
    }

    /// Starts a from-scratch rebuild: resets every link element (flow
    /// elements are reset as [`FlowLinkPartition::rebuild_flow`] re-adds
    /// them; stale elements of departed flows are never queried again).
    pub fn begin_rebuild(&mut self) {
        for l in 0..self.n_links as u32 {
            self.uf.isolate(l);
        }
        self.dirty = false;
        self.rebuilds += 1;
    }

    /// Re-adds one live flow during a rebuild.
    pub fn rebuild_flow(&mut self, slot: u32, links: impl Iterator<Item = u32>) {
        let fe = self.n_links as u32 + slot;
        self.uf.isolate(fe);
        for l in links {
            debug_assert!((l as usize) < self.n_links);
            self.uf.union(fe, l);
        }
    }

    /// Extracts the components of the current active set, in *dense
    /// problem space*: flow `k` is `active_slots[k]`, link `s` is
    /// `prob_links[s]`. Must not be called dirty (the engine rebuilds
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if called while dirty.
    pub fn components_into(
        &mut self,
        active_slots: &[u32],
        prob_links: &[u32],
        out: &mut Components,
    ) {
        assert!(!self.dirty, "partition queried while dirty");
        let n_links = self.n_links;
        for &s in active_slots {
            self.uf.ensure(n_links + s as usize + 1);
        }
        let uf = &mut self.uf;
        out.extract(
            active_slots.len(),
            prob_links.len(),
            uf,
            |k| n_links as u32 + active_slots[k],
            |s| prob_links[s],
        );
    }
}

/// Splits components `0..comps.count()` into at most `nworkers`
/// contiguous ranges of roughly equal total flows (`nf` is the
/// problem's flow count). Ranges cover every component exactly once, in
/// component order — the split is a pure function of the decomposition
/// and the worker count, independent of which thread later solves
/// which range.
pub fn split_component_ranges(
    comps: &Components,
    nf: usize,
    nworkers: usize,
) -> Vec<(usize, usize)> {
    let ncomp = comps.count();
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    if ncomp == 0 {
        return ranges;
    }
    let target = nf.div_ceil(nworkers.max(1));
    let mut c0 = 0usize;
    let mut acc = 0usize;
    for c in 0..ncomp {
        acc += comps.comp_flows(c).len();
        if acc >= target || c + 1 == ncomp {
            ranges.push((c0, c + 1));
            c0 = c + 1;
            acc = 0;
        }
    }
    ranges
}

/// Deterministic scatter-merge of per-worker component solutions:
/// worker `w` solved the components of `ranges[w]` into its own
/// full-problem-size `worker_rates[w]` buffer; each component's flow
/// rates are copied back in **stable component order**, so the merged
/// `solution` is a pure function of the per-component results — not of
/// the order in which workers finished. Component flow sets are
/// disjoint, so every slot is written exactly once.
pub fn merge_component_rates(
    comps: &Components,
    ranges: &[(usize, usize)],
    worker_rates: &[&[f64]],
    solution: &mut [f64],
) {
    for (rates, &(r0, r1)) in worker_rates.iter().zip(ranges) {
        for c in r0..r1 {
            for &f in comps.comp_flows(c) {
                solution[f as usize] = rates[f as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(flows: &[&[u32]]) -> (Vec<u32>, Vec<u32>) {
        let mut off = vec![0u32];
        let mut links = Vec::new();
        for f in flows {
            links.extend_from_slice(f);
            off.push(links.len() as u32);
        }
        (off, links)
    }

    #[test]
    fn disjoint_flows_are_singletons() {
        let (off, links) = csr(&[&[0], &[1], &[]]);
        let mut uf = UnionFind::new();
        let mut c = Components::default();
        c.build_csr(3, 2, &off, &links, &mut uf);
        assert_eq!(c.count(), 3);
        assert_eq!(c.comp_flows(0), &[0]);
        assert_eq!(c.comp_links(0), &[0]);
        assert_eq!(c.comp_flows(2), &[2]);
        assert_eq!(c.comp_links(2), &[] as &[u32]);
    }

    #[test]
    fn shared_link_merges_flows() {
        let (off, links) = csr(&[&[0, 1], &[1, 2], &[3]]);
        let mut uf = UnionFind::new();
        let mut c = Components::default();
        c.build_csr(3, 4, &off, &links, &mut uf);
        assert_eq!(c.count(), 2);
        assert_eq!(c.comp_flows(0), &[0, 1]);
        assert_eq!(c.comp_links(0), &[0, 1, 2]);
        assert_eq!(c.comp_flows(1), &[2]);
        assert_eq!(c.comp_links(1), &[3]);
    }

    #[test]
    fn unreferenced_links_belong_to_no_component() {
        let (off, links) = csr(&[&[2]]);
        let mut uf = UnionFind::new();
        let mut c = Components::default();
        c.build_csr(1, 5, &off, &links, &mut uf);
        assert_eq!(c.count(), 1);
        assert_eq!(c.comp_links(0), &[2]);
    }

    #[test]
    fn component_order_follows_smallest_flow() {
        // Flow 0 alone on link 3; flows 1 & 2 share link 0. Components
        // must come out in flow order, not link order.
        let (off, links) = csr(&[&[3], &[0], &[0]]);
        let mut uf = UnionFind::new();
        let mut c = Components::default();
        c.build_csr(3, 4, &off, &links, &mut uf);
        assert_eq!(c.count(), 2);
        assert_eq!(c.comp_flows(0), &[0]);
        assert_eq!(c.comp_flows(1), &[1, 2]);
        assert_eq!(c.comp_of_flow, vec![0, 1, 1]);
    }

    #[test]
    fn incremental_arrivals_match_rebuild() {
        let mut inc = FlowLinkPartition::new(4);
        inc.on_flow_start(0, [0u32, 1].into_iter());
        inc.on_flow_start(1, [1u32].into_iter());
        inc.on_flow_start(2, [3u32].into_iter());

        let mut fresh = FlowLinkPartition::new(4);
        fresh.on_flow_end();
        fresh.begin_rebuild();
        fresh.rebuild_flow(0, [0u32, 1].into_iter());
        fresh.rebuild_flow(1, [1u32].into_iter());
        fresh.rebuild_flow(2, [3u32].into_iter());

        let active = [0u32, 1, 2];
        let prob = [0u32, 1, 3];
        let (mut a, mut b) = (Components::default(), Components::default());
        inc.components_into(&active, &prob, &mut a);
        fresh.components_into(&active, &prob, &mut b);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.flow_starts, b.flow_starts);
        assert_eq!(a.links, b.links);
        assert_eq!(a.link_starts, b.link_starts);
        assert_eq!(a.comp_of_flow, b.comp_of_flow);
    }

    #[test]
    #[should_panic(expected = "dirty")]
    fn dirty_query_panics() {
        let mut p = FlowLinkPartition::new(1);
        p.on_flow_end();
        let mut c = Components::default();
        p.components_into(&[], &[], &mut c);
    }
}
