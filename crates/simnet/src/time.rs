//! Simulated time.
//!
//! Time is an integer count of **microseconds** since the simulation
//! epoch. Integer time keeps the event loop deterministic (no
//! accumulating float error in comparisons) while one microsecond of
//! resolution is far below anything a throughput measurement can
//! resolve.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since the epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "no next event".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Builds an instant from fractional seconds (rounds to the nearest
    /// microsecond).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s.is_finite() && s >= 0.0, "bad time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier <= self,
            "time went backwards: {earlier:?} > {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Builds a span from fractional seconds (rounds to nearest
    /// microsecond).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "bad duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Like [`SimDuration::from_secs_f64`] but always rounds **up** to
    /// the next microsecond, so a nonzero float span never becomes a
    /// zero integer span (which could stall an event loop).
    pub fn from_secs_f64_ceil(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "bad duration {s}");
        SimDuration((s * 1e6).ceil() as u64)
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds in this span.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// True for the zero-length span.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!((t - SimTime::from_secs(10)).as_micros(), 500_000);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_micros(7);
        assert_eq!(u.as_micros(), 7);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ceil_rounding_never_zero() {
        let d = SimDuration::from_secs_f64_ceil(1e-9);
        assert_eq!(d.as_micros(), 1);
        assert!(SimDuration::from_secs_f64_ceil(0.0).is_zero());
    }

    #[test]
    fn saturating_add_clamps() {
        let t = SimTime::MAX.saturating_add(SimDuration::from_secs(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "0.000003s");
    }

    #[test]
    #[should_panic(expected = "bad time")]
    fn from_secs_f64_rejects_negative() {
        SimTime::from_secs_f64(-1.0);
    }
}
