//! [`StableHash`] impls for simnet parameter types.
//!
//! These encodings key the on-disk study cache (`ir-artifact`): they
//! must stay **pinned**. Each impl destructures its type exhaustively,
//! so adding a field is a compile error here — the fix is to extend the
//! encoding *and* bump the consuming artefact's code-version salt so
//! stale cache entries are retired rather than wrongly reused.

use crate::faults::{FaultEvent, FaultPlan, FaultSpec};
use crate::sim::EngineMode;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId};
use ir_artifact::{StableHash, StableHasher};

impl StableHash for SimTime {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
    }
}

impl StableHash for SimDuration {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
    }
}

impl StableHash for NodeId {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
    }
}

impl StableHash for LinkId {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
    }
}

impl StableHash for EngineMode {
    fn stable_hash(&self, h: &mut StableHasher) {
        // The sharded engine's thread count is deliberately *excluded*:
        // every engine produces bit-identical results at any thread
        // count (enforced by the cross-engine differential suite), so
        // threads is an execution knob, not a semantic input — hashing
        // it would force spurious cache misses between `--threads`
        // settings. The variant tag stays in so a future mode whose
        // semantics *do* diverge gets its own cache lineage.
        h.write_tag(match self {
            EngineMode::Incremental => 0,
            EngineMode::Reference => 1,
            EngineMode::Sharded { .. } => 2,
        });
    }
}

impl StableHash for FaultEvent {
    fn stable_hash(&self, h: &mut StableHasher) {
        match *self {
            FaultEvent::LinkDown(link) => {
                h.write_tag(0);
                link.stable_hash(h);
            }
            FaultEvent::LinkUp(link) => {
                h.write_tag(1);
                link.stable_hash(h);
            }
            FaultEvent::BrownoutSet { link, factor } => {
                h.write_tag(2);
                link.stable_hash(h);
                factor.stable_hash(h);
            }
            FaultEvent::NodeDown(node) => {
                h.write_tag(3);
                node.stable_hash(h);
            }
            FaultEvent::NodeUp(node) => {
                h.write_tag(4);
                node.stable_hash(h);
            }
        }
    }
}

impl StableHash for FaultSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        let FaultSpec {
            horizon,
            link_mtbf,
            link_outage_mean,
            brownout_prob,
            brownout_factor,
            node_mtbf,
            node_downtime_mean,
        } = *self;
        horizon.stable_hash(h);
        link_mtbf.stable_hash(h);
        link_outage_mean.stable_hash(h);
        brownout_prob.stable_hash(h);
        brownout_factor.stable_hash(h);
        node_mtbf.stable_hash(h);
        node_downtime_mean.stable_hash(h);
    }
}

impl StableHash for FaultPlan {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.events().stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_artifact::fingerprint_of;

    #[test]
    fn fault_event_variants_do_not_collide() {
        let down = fingerprint_of(&FaultEvent::LinkDown(LinkId(3)));
        let up = fingerprint_of(&FaultEvent::LinkUp(LinkId(3)));
        let node = fingerprint_of(&FaultEvent::NodeDown(NodeId(3)));
        assert_ne!(down, up);
        assert_ne!(down, node);
    }

    #[test]
    fn engine_mode_hashes_variant_but_not_thread_count() {
        let inc = fingerprint_of(&EngineMode::Incremental);
        let refc = fingerprint_of(&EngineMode::Reference);
        let s2 = fingerprint_of(&EngineMode::Sharded { threads: 2 });
        let s8 = fingerprint_of(&EngineMode::Sharded { threads: 8 });
        assert_ne!(inc, refc);
        assert_ne!(inc, s2);
        assert_eq!(s2, s8, "thread count must not change the fingerprint");
    }

    #[test]
    fn plan_fingerprint_is_a_pure_function_of_inputs() {
        let spec = FaultSpec::default();
        let links = [LinkId(0), LinkId(1)];
        let a = FaultPlan::random(&spec, &links, &[], 7);
        let b = FaultPlan::random(&spec, &links, &[], 7);
        let c = FaultPlan::random(&spec, &links, &[], 8);
        assert_eq!(fingerprint_of(&a), fingerprint_of(&b));
        assert_ne!(fingerprint_of(&a), fingerprint_of(&c));
        assert_ne!(fingerprint_of(&a), fingerprint_of(&FaultPlan::none()));
    }
}
