//! Max–min fair bandwidth allocation with per-flow rate caps.
//!
//! When several flows share a link (e.g. the direct and indirect probes
//! both crossing the client's access link during a race), the simulator
//! splits capacity max–min fairly — the classic fluid approximation of
//! long-lived TCP flows sharing a bottleneck. Each flow may additionally
//! carry its own rate cap (from the TCP model: slow-start ramp or the
//! loss-based PFTK ceiling), which the progressive-filling algorithm
//! honours.

/// Relative slack used by the freeze conditions of **both** solvers.
/// Shared so that [`max_min_rates`] and [`reference_rates`] freeze on
/// exactly the same comparisons — a prerequisite for their bit-level
/// equivalence. (Also used by the component kernels in [`crate::soa`].)
pub(crate) const EPS: f64 = 1e-9;

/// A flow, for allocation purposes: the links it traverses and its own
/// rate cap (`f64::INFINITY` for none).
#[derive(Debug, Clone)]
pub struct AllocFlow {
    /// Indices into the capacity slice of the links this flow crosses.
    pub links: Vec<usize>,
    /// Upper bound on this flow's rate (bytes/sec).
    pub cap: f64,
}

fn validate(link_caps: &[f64], flows: &[AllocFlow]) {
    for &c in link_caps {
        assert!(c >= 0.0 && !c.is_nan(), "bad link capacity {c}");
    }
    for f in flows {
        assert!(f.cap >= 0.0 && !f.cap.is_nan(), "bad flow cap {}", f.cap);
        for &l in &f.links {
            assert!(l < link_caps.len(), "unknown link index {l}");
        }
    }
}

/// Computes max–min fair rates via component-decomposed progressive
/// filling.
///
/// * `link_caps[l]` — capacity of link `l` in bytes/sec;
/// * `flows[f]` — the links flow `f` crosses and its own cap.
///
/// Returns the allocated rate of each flow. A flow crossing no links is
/// limited only by its own cap.
///
/// The problem is first split into congestion components — maximal
/// groups of flows transitively connected through shared finite-capacity
/// links ([`crate::partition`]) — and progressive filling runs per
/// component, in ascending order of each component's smallest flow
/// index. Components are mathematically independent (no flow or
/// saturable link spans two), so the decomposition is exact, and it is
/// what makes million-flow problems tractable: the global filling's
/// round count grows with the number of distinct freeze levels across
/// the *whole* problem, the decomposed one's only per component.
///
/// Invariants (tested property-style):
/// * feasibility — per-link sums never exceed capacity (up to fp slack);
/// * cap respect — no flow exceeds its own cap;
/// * bottleneck saturation — every flow is limited by either its cap or
///   at least one saturated link;
/// * rates are a pure function of each flow's own component.
///
/// # Panics
///
/// Panics if a flow references an unknown link or a cap/capacity is
/// negative or NaN.
pub fn max_min_rates(link_caps: &[f64], flows: &[AllocFlow]) -> Vec<f64> {
    validate(link_caps, flows);
    let slab = crate::soa::ProblemSlab::from_alloc(link_caps, flows);
    let mut scratch = crate::soa::SolveScratch::default();
    let mut rates = Vec::new();
    crate::soa::solve_slab(&slab, &mut scratch, &mut rates);
    rates
}

/// Naive progressive-filling oracle: the brute-force allocator with
/// **no** incremental bookkeeping — per-link unfrozen-flow counts are
/// recounted from scratch every round instead of being maintained as
/// flows freeze. It exists as the reference the engine's differential
/// test suite (`tests/engine_equivalence.rs`) and the fair-share
/// property sweep hold the production solver to, **bitwise**.
///
/// Bit-level comparability pins the arithmetic: both solvers use the
/// identical congestion-component decomposition (components in the same
/// stable order), and within a component each round's increment is
/// computed and applied with exactly the same floating-point operations
/// in the same order as [`max_min_rates`] (links ascending, then flows
/// ascending; `rate += inc` / `residual -= inc` updates; the shared
/// `EPS` freeze slack). The *bookkeeping* differs — per-link
/// unfrozen-flow counts are recounted from scratch every round instead
/// of maintained — the *arithmetic* must not, so any divergence between
/// the two solvers is a logic bug, never fp noise.
///
/// # Panics
///
/// Same contract as [`max_min_rates`].
pub fn reference_rates(link_caps: &[f64], flows: &[AllocFlow]) -> Vec<f64> {
    validate(link_caps, flows);
    let slab = crate::soa::ProblemSlab::from_alloc(link_caps, flows);
    let mut scratch = crate::soa::SolveScratch::default();
    let mut rates = Vec::new();
    crate::soa::solve_slab_reference(&slab, &mut scratch, &mut rates);
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(links: &[usize], cap: f64) -> AllocFlow {
        AllocFlow {
            links: links.to_vec(),
            cap,
        }
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "{a} !~ {b}");
    }

    #[test]
    fn single_flow_takes_bottleneck() {
        let rates = max_min_rates(&[10.0, 4.0], &[flow(&[0, 1], f64::INFINITY)]);
        assert_close(rates[0], 4.0);
    }

    #[test]
    fn two_flows_split_shared_link() {
        let rates = max_min_rates(
            &[10.0],
            &[flow(&[0], f64::INFINITY), flow(&[0], f64::INFINITY)],
        );
        assert_close(rates[0], 5.0);
        assert_close(rates[1], 5.0);
    }

    #[test]
    fn capped_flow_releases_share() {
        // Link of 10; one flow capped at 2 → other gets 8.
        let rates = max_min_rates(&[10.0], &[flow(&[0], 2.0), flow(&[0], f64::INFINITY)]);
        assert_close(rates[0], 2.0);
        assert_close(rates[1], 8.0);
    }

    #[test]
    fn classic_three_flow_two_link_example() {
        // Links: A(cap 10), B(cap 4).
        // f0 crosses A+B, f1 crosses A, f2 crosses B.
        // Max-min: f0 and f2 share B → 2 each; f1 gets A's residual 8.
        let rates = max_min_rates(
            &[10.0, 4.0],
            &[
                flow(&[0, 1], f64::INFINITY),
                flow(&[0], f64::INFINITY),
                flow(&[1], f64::INFINITY),
            ],
        );
        assert_close(rates[0], 2.0);
        assert_close(rates[1], 8.0);
        assert_close(rates[2], 2.0);
    }

    #[test]
    fn disjoint_flows_each_get_full_capacity() {
        let rates = max_min_rates(
            &[3.0, 7.0],
            &[flow(&[0], f64::INFINITY), flow(&[1], f64::INFINITY)],
        );
        assert_close(rates[0], 3.0);
        assert_close(rates[1], 7.0);
    }

    #[test]
    fn no_links_flow_limited_by_cap() {
        let rates = max_min_rates(&[], &[flow(&[], 5.0)]);
        assert_close(rates[0], 5.0);
    }

    #[test]
    fn empty_flows_empty_result() {
        assert!(max_min_rates(&[1.0], &[]).is_empty());
    }

    #[test]
    fn zero_capacity_link_starves_flow() {
        let rates = max_min_rates(&[0.0], &[flow(&[0], f64::INFINITY)]);
        assert_close(rates[0], 0.0);
    }

    #[test]
    fn zero_cap_flow_gets_zero_and_frees_link() {
        let rates = max_min_rates(&[6.0], &[flow(&[0], 0.0), flow(&[0], f64::INFINITY)]);
        assert_close(rates[0], 0.0);
        assert_close(rates[1], 6.0);
    }

    #[test]
    fn infinite_capacity_links_never_freeze_flows() {
        // Two flows on disjoint infinite links, different own caps: each
        // must reach its own cap (regression: INF<=EPS*INF once froze
        // everyone at the smaller cap).
        let rates = max_min_rates(
            &[f64::INFINITY, f64::INFINITY],
            &[flow(&[0], 100.0), flow(&[1], 400.0)],
        );
        assert_close(rates[0], 100.0);
        assert_close(rates[1], 400.0);
    }

    #[test]
    fn mixed_infinite_and_finite_links() {
        // Flow 0 crosses an infinite link then a finite one shared with
        // flow 1.
        let rates = max_min_rates(
            &[f64::INFINITY, 10.0],
            &[flow(&[0, 1], f64::INFINITY), flow(&[1], f64::INFINITY)],
        );
        assert_close(rates[0], 5.0);
        assert_close(rates[1], 5.0);
    }

    #[test]
    fn reference_oracle_bitwise_matches_production() {
        let caps = [5.0, 8.0, 3.0, 12.0, f64::INFINITY, 0.0];
        let flows = [
            flow(&[0, 1], f64::INFINITY),
            flow(&[1, 2], 4.0),
            flow(&[2, 3], f64::INFINITY),
            flow(&[0, 3], 1.5),
            flow(&[1, 4], f64::INFINITY),
            flow(&[5], f64::INFINITY),
            flow(&[], 7.25),
        ];
        let a = max_min_rates(&caps, &flows);
        let b = reference_rates(&caps, &flows);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn reference_oracle_degenerate_unconstrained() {
        let a = max_min_rates(&[], &[flow(&[], f64::INFINITY)]);
        let b = reference_rates(&[], &[flow(&[], f64::INFINITY)]);
        assert!(a[0].is_infinite() && b[0].is_infinite());
    }

    #[test]
    fn feasibility_and_saturation_invariants() {
        // A semi-random but fixed mesh; check the max-min invariants.
        let caps = [5.0, 8.0, 3.0, 12.0];
        let flows = [
            flow(&[0, 1], f64::INFINITY),
            flow(&[1, 2], 4.0),
            flow(&[2, 3], f64::INFINITY),
            flow(&[0, 3], 1.5),
            flow(&[1], f64::INFINITY),
        ];
        let rates = max_min_rates(&caps, &flows);
        // Feasibility.
        for (l, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.links.contains(&l))
                .map(|(_, &r)| r)
                .sum();
            assert!(load <= cap + 1e-6, "link {l} overloaded: {load} > {cap}");
        }
        // Cap respect + bottleneck condition.
        for (i, f) in flows.iter().enumerate() {
            assert!(rates[i] <= f.cap + 1e-6);
            let cap_bound = rates[i] >= f.cap - 1e-6;
            let saturated_link = f.links.iter().any(|&l| {
                let load: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                load >= caps[l] - 1e-6
            });
            assert!(
                cap_bound || saturated_link,
                "flow {i} not limited by anything (rate {})",
                rates[i]
            );
        }
    }
}
