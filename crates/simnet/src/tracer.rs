//! Link-rate tracing: sample a link's available-bandwidth process over
//! a window into a `(time, rate)` series.
//!
//! Used to export Fig 4-style path-rate timelines to CSV, to debug
//! calibrations, and by the scenario inspector.

use crate::bandwidth::BandwidthProcess;
use crate::sim::Network;
use crate::time::{SimDuration, SimTime};
use crate::topology::LinkId;

/// A sampled rate series.
#[derive(Debug, Clone, PartialEq)]
pub struct RateTrace {
    /// Sample instants.
    pub times: Vec<SimTime>,
    /// Rates at those instants, bytes/sec.
    pub rates: Vec<f64>,
}

impl RateTrace {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Mean rate over the samples.
    pub fn mean(&self) -> f64 {
        if self.rates.is_empty() {
            f64::NAN
        } else {
            self.rates.iter().sum::<f64>() / self.rates.len() as f64
        }
    }

    /// Coefficient of variation of the sampled rates.
    pub fn cov(&self) -> f64 {
        let s: ir_stats::OnlineStats = self.rates.iter().copied().collect();
        s.cov()
    }

    /// Renders `time_secs,rate_bytes_per_sec` CSV lines (with header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_secs,rate_bytes_per_sec\n");
        for (t, r) in self.times.iter().zip(&self.rates) {
            out.push_str(&format!("{:.3},{:.3}\n", t.as_secs_f64(), r));
        }
        out
    }

    /// Parses the output of [`RateTrace::to_csv`] back into a trace.
    ///
    /// The header line is required; blank lines are ignored. Times are
    /// quantised to the CSV's millisecond precision, so a round trip
    /// preserves sample count and rates to 3 decimals, not raw micros.
    pub fn from_csv(text: &str) -> Result<RateTrace, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("time_secs,rate_bytes_per_sec") => {}
            other => return Err(format!("bad or missing CSV header: {other:?}")),
        }
        let mut times = Vec::new();
        let mut rates = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let (t, r) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: expected two fields, got {line:?}", i + 2))?;
            let t: f64 = t
                .parse()
                .map_err(|e| format!("line {}: bad time {t:?}: {e}", i + 2))?;
            let r: f64 = r
                .parse()
                .map_err(|e| format!("line {}: bad rate {r:?}: {e}", i + 2))?;
            if !t.is_finite() || t < 0.0 {
                return Err(format!("line {}: time {t} out of range", i + 2));
            }
            times.push(SimTime::from_secs_f64(t));
            rates.push(r);
        }
        Ok(RateTrace { times, rates })
    }
}

/// Samples a process directly.
pub fn trace_process(
    process: &mut dyn BandwidthProcess,
    start: SimTime,
    end: SimTime,
    step: SimDuration,
) -> RateTrace {
    assert!(start <= end, "inverted window");
    assert!(!step.is_zero(), "zero step");
    let mut times = Vec::new();
    let mut rates = Vec::new();
    let mut t = start;
    while t <= end {
        times.push(t);
        rates.push(process.rate_at(t));
        t = t.saturating_add(step);
        if t == SimTime::MAX {
            break;
        }
    }
    RateTrace { times, rates }
}

/// Samples a link of a network **without disturbing it**: the link's
/// process is cloned and sampled on the side.
pub fn trace_link(
    net: &Network,
    link: LinkId,
    start: SimTime,
    end: SimTime,
    step: SimDuration,
) -> RateTrace {
    let mut process = net.link_process(link).clone_box();
    trace_process(process.as_mut(), start, end, step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::{ConstantProcess, PiecewiseProcess};
    use crate::topology::{NodeKind, Topology};

    #[test]
    fn traces_piecewise_exactly() {
        let mut p =
            PiecewiseProcess::new(vec![(SimTime::ZERO, 10.0), (SimTime::from_secs(5), 20.0)]);
        let tr = trace_process(
            &mut p,
            SimTime::ZERO,
            SimTime::from_secs(9),
            SimDuration::from_secs(1),
        );
        assert_eq!(tr.len(), 10);
        assert_eq!(tr.rates[0], 10.0);
        assert_eq!(tr.rates[4], 10.0);
        assert_eq!(tr.rates[5], 20.0);
        assert_eq!(tr.rates[9], 20.0);
        assert!((tr.mean() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn trace_link_does_not_disturb_network() {
        let mut topo = Topology::new();
        let a = topo.add_node("a", NodeKind::Client);
        let b = topo.add_node("b", NodeKind::Server);
        let l = topo.add_link(a, b, SimDuration::from_millis(10));
        let mut net = Network::new(topo, 1.0);
        net.set_link_process(l, Box::new(ConstantProcess::new(123.0)));
        let before = net.now();
        let tr = trace_link(
            &net,
            l,
            SimTime::ZERO,
            SimTime::from_secs(100),
            SimDuration::from_secs(10),
        );
        assert_eq!(net.now(), before);
        assert_eq!(tr.len(), 11);
        assert!(tr.rates.iter().all(|&r| r == 123.0));
        assert!((tr.cov() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn csv_renders_header_and_rows() {
        let mut p = ConstantProcess::new(5.0);
        let tr = trace_process(
            &mut p,
            SimTime::ZERO,
            SimTime::from_secs(2),
            SimDuration::from_secs(1),
        );
        let csv = tr.to_csv();
        assert!(csv.starts_with("time_secs,rate_bytes_per_sec\n"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "zero step")]
    fn zero_step_panics() {
        let mut p = ConstantProcess::new(1.0);
        trace_process(&mut p, SimTime::ZERO, SimTime::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn empty_trace_has_nan_mean() {
        let tr = RateTrace {
            times: vec![],
            rates: vec![],
        };
        assert!(tr.is_empty());
        assert_eq!(tr.len(), 0);
        assert!(tr.mean().is_nan());
        assert_eq!(tr.to_csv(), "time_secs,rate_bytes_per_sec\n");
    }

    #[test]
    fn single_sample_trace() {
        let mut p = ConstantProcess::new(42.5);
        let tr = trace_process(
            &mut p,
            SimTime::from_secs(3),
            SimTime::from_secs(3),
            SimDuration::from_secs(1),
        );
        assert!(!tr.is_empty());
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.times[0], SimTime::from_secs(3));
        assert_eq!(tr.mean(), 42.5);
    }

    #[test]
    fn csv_round_trip() {
        let mut p = PiecewiseProcess::new(vec![
            (SimTime::ZERO, 1000.0),
            (SimTime::from_secs(2), 2500.125),
        ]);
        let tr = trace_process(
            &mut p,
            SimTime::ZERO,
            SimTime::from_secs(4),
            SimDuration::from_millis(500),
        );
        let back = RateTrace::from_csv(&tr.to_csv()).unwrap();
        assert_eq!(back.len(), tr.len());
        for (a, b) in tr.times.iter().zip(&back.times) {
            assert!((a.as_secs_f64() - b.as_secs_f64()).abs() < 1e-3);
        }
        for (a, b) in tr.rates.iter().zip(&back.rates) {
            assert!((a - b).abs() < 1e-3);
        }
        // A second round trip is exact: quantisation is idempotent.
        assert_eq!(RateTrace::from_csv(&back.to_csv()).unwrap(), back);
    }

    #[test]
    fn from_csv_rejects_malformed_input() {
        assert!(RateTrace::from_csv("").is_err());
        assert!(RateTrace::from_csv("wrong,header\n1.0,2.0\n").is_err());
        assert!(RateTrace::from_csv("time_secs,rate_bytes_per_sec\nnope\n").is_err());
        assert!(RateTrace::from_csv("time_secs,rate_bytes_per_sec\nx,2.0\n").is_err());
        assert!(RateTrace::from_csv("time_secs,rate_bytes_per_sec\n-1.0,2.0\n").is_err());
        let ok = RateTrace::from_csv("time_secs,rate_bytes_per_sec\n\n0.5,9.0\n").unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok.rates[0], 9.0);
    }
}
