//! Network topology: nodes, directed links, and routes.
//!
//! The topology is deliberately simple — the paper's world is a star of
//! end hosts around "the Internet", where what matters is the available
//! bandwidth of each end-to-end segment, not hop-by-hop routing. Links
//! are directed (throughput is asymmetric in practice: the paper's
//! downloads stress the server→client direction) and carry a one-way
//! propagation latency used to derive per-route RTTs.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Role of a node in the indirect-routing experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A download client (the paper's international PlanetLab nodes).
    Client,
    /// An overlay relay (the paper's US PlanetLab nodes).
    Intermediate,
    /// An origin web server (eBay, Google, Microsoft, Yahoo).
    Server,
}

/// A node: a name, a role, nothing else.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name, e.g. `"Berlin"` or `"Texas"`.
    pub name: String,
    /// Role in the experiment.
    pub kind: NodeKind,
}

/// How a link's bandwidth process constrains concurrent flows.
///
/// A measured *available bandwidth* on a wide-area Internet path already
/// reflects the thousands of background flows sharing it; adding one
/// more of our flows does not halve anyone's share. A dedicated link
/// (e.g. an access link in a controlled testbed) is the opposite: our
/// flows are the only users and split it max–min fairly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Sharing {
    /// The process value is a hard capacity, max–min shared among the
    /// simulation's flows.
    #[default]
    Capacity,
    /// The process value is the available bandwidth *each* flow can
    /// obtain (statistical-multiplexing abstraction); flows crossing the
    /// link do not couple.
    PerFlow,
}

/// A directed link between two nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// How concurrent flows experience the bandwidth process.
    pub sharing: Sharing,
}

/// A directed multigraph of nodes and links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    by_endpoints: BTreeMap<(NodeId, NodeId), LinkId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.into(),
            kind,
        });
        id
    }

    /// Adds a directed [`Sharing::Capacity`] link and returns its id.
    /// At most one link may exist per ordered node pair.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist, the endpoints are equal,
    /// or a link between the pair already exists.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, latency: SimDuration) -> LinkId {
        self.add_link_shared(from, to, latency, Sharing::Capacity)
    }

    /// Adds a directed link with an explicit sharing model.
    ///
    /// # Panics
    ///
    /// As [`Topology::add_link`].
    pub fn add_link_shared(
        &mut self,
        from: NodeId,
        to: NodeId,
        latency: SimDuration,
        sharing: Sharing,
    ) -> LinkId {
        assert!(
            (from.0 as usize) < self.nodes.len(),
            "unknown node {from:?}"
        );
        assert!((to.0 as usize) < self.nodes.len(), "unknown node {to:?}");
        assert_ne!(from, to, "self-link");
        assert!(
            !self.by_endpoints.contains_key(&(from, to)),
            "duplicate link {from:?}->{to:?}"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            from,
            to,
            latency,
            sharing,
        });
        self.by_endpoints.insert((from, to), id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Looks up a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// The link from `a` to `b`, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.by_endpoints.get(&(a, b)).copied()
    }

    /// All node ids of a given kind, in insertion order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&id| self.node(id).kind == kind)
            .collect()
    }

    /// Finds a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .find(|&id| self.node(id).name == name)
    }

    /// Builds a route (sequence of links) through the given nodes.
    ///
    /// Returns `None` if any required link is missing.
    pub fn route(&self, hops: &[NodeId]) -> Option<Route> {
        assert!(hops.len() >= 2, "route needs at least two nodes");
        let mut links = Vec::with_capacity(hops.len() - 1);
        for w in hops.windows(2) {
            links.push(self.link_between(w[0], w[1])?);
        }
        Some(Route { links })
    }

    /// Round-trip time along a route: twice the sum of one-way latencies
    /// (assumes symmetric reverse latency, which is adequate for a
    /// throughput study).
    pub fn rtt(&self, route: &Route) -> SimDuration {
        let one_way: u64 = route
            .links
            .iter()
            .map(|&l| self.link(l).latency.as_micros())
            .sum();
        SimDuration::from_micros(one_way * 2)
    }
}

/// An ordered sequence of links a flow traverses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Links in traversal order.
    pub links: Vec<LinkId>,
}

impl Route {
    /// Builds a route directly from link ids.
    pub fn from_links(links: Vec<LinkId>) -> Self {
        assert!(!links.is_empty(), "empty route");
        Route { links }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Routes are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = t.add_node("client", NodeKind::Client);
        let m = t.add_node("mid", NodeKind::Intermediate);
        let s = t.add_node("server", NodeKind::Server);
        t.add_link(c, s, SimDuration::from_millis(80));
        t.add_link(c, m, SimDuration::from_millis(50));
        t.add_link(m, s, SimDuration::from_millis(10));
        (t, c, m, s)
    }

    #[test]
    fn build_and_lookup() {
        let (t, c, m, s) = tiny();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.node(c).name, "client");
        assert_eq!(t.node(m).kind, NodeKind::Intermediate);
        assert!(t.link_between(c, s).is_some());
        assert!(t.link_between(s, c).is_none());
        assert_eq!(t.node_by_name("server"), Some(s));
        assert_eq!(t.node_by_name("nope"), None);
    }

    #[test]
    fn nodes_of_kind_filters() {
        let (t, c, m, s) = tiny();
        assert_eq!(t.nodes_of_kind(NodeKind::Client), vec![c]);
        assert_eq!(t.nodes_of_kind(NodeKind::Intermediate), vec![m]);
        assert_eq!(t.nodes_of_kind(NodeKind::Server), vec![s]);
    }

    #[test]
    fn routes_and_rtt() {
        let (t, c, m, s) = tiny();
        let direct = t.route(&[c, s]).unwrap();
        assert_eq!(direct.len(), 1);
        assert_eq!(t.rtt(&direct), SimDuration::from_millis(160));
        let indirect = t.route(&[c, m, s]).unwrap();
        assert_eq!(indirect.len(), 2);
        assert_eq!(t.rtt(&indirect), SimDuration::from_millis(120));
        assert!(t.route(&[s, c]).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_panics() {
        let (mut t, c, _, s) = tiny();
        t.add_link(c, s, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_link_panics() {
        let (mut t, c, _, _) = tiny();
        t.add_link(c, c, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn short_route_panics() {
        let (t, c, _, _) = tiny();
        let _ = t.route(&[c]);
    }
}
