//! Time-varying available-bandwidth processes.
//!
//! Each directed link carries a piecewise-constant *available bandwidth*
//! process (bytes/sec). The paper's phenomenon — throughput diversity
//! that changes over time, with occasional regime flips that fool the
//! probe-based predictor — lives entirely in these processes:
//!
//! * [`ConstantProcess`] — fixed rate (calibration, tests).
//! * [`PiecewiseProcess`] — explicit breakpoints (tests, replay).
//! * [`RegimeSwitchingProcess`] — a continuous-time Markov chain over a
//!   small set of rate levels with exponential holding times and
//!   per-segment lognormal noise. This models the "path load and amount
//!   of statistical multiplexing … can dynamically change throughout the
//!   course of a transfer" behaviour the paper cites from He et al.
//! * [`Ar1LogProcess`] — mean-reverting AR(1) on log-rate at a fixed
//!   tick; models gentle drift around a baseline.
//! * [`JumpMixProcess`] — decorator adding rare multiplicative level
//!   shifts (the "small jumps" the paper observes on indirect paths in
//!   Fig 4).
//! * [`ScaledProcess`] — multiplies an inner process by a constant.
//!
//! All processes are deterministic functions of their construction seed,
//! and `Clone`-able so that an entire network can be duplicated to run a
//! control process under identical conditions (the paper's two-process
//! methodology).

use crate::time::{SimDuration, SimTime};
use ir_stats::sampling::{Exponential, LogNormal, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum rate any process will report, in bytes/sec. A literal zero
/// would stall flows forever; 1 B/s keeps the math finite while being
/// effectively "down".
pub const MIN_RATE: f64 = 1.0;

/// A time-varying available-bandwidth process (bytes/sec).
///
/// Implementations lazily materialise a piecewise-constant timeline;
/// queries may revisit past times but the process only ever *extends*
/// forward, so results are stable across queries.
pub trait BandwidthProcess: Send + Sync {
    /// Available bandwidth at `t`, in bytes/sec. Always `>= MIN_RATE`.
    fn rate_at(&mut self, t: SimTime) -> f64;

    /// Earliest instant strictly after `t` at which the rate changes,
    /// or `None` if the rate is constant forever after `t`.
    fn next_change_after(&mut self, t: SimTime) -> Option<SimTime>;

    /// Clones into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn BandwidthProcess>;
}

impl Clone for Box<dyn BandwidthProcess> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A lazily extended piecewise-constant timeline. `starts[0]` is always
/// `SimTime::ZERO`; segment `i` covers `[starts[i], starts[i+1])`.
/// Stores raw values — processes clamp to [`MIN_RATE`] when *rates* are
/// returned (the same structure also stores jump *factors*, which may
/// legitimately be below 1.0).
#[derive(Debug, Clone)]
struct Timeline {
    starts: Vec<SimTime>,
    rates: Vec<f64>,
    /// Everything before `horizon` is materialised.
    horizon: SimTime,
}

impl Timeline {
    fn new(initial_rate: f64) -> Self {
        Timeline {
            starts: vec![SimTime::ZERO],
            rates: vec![initial_rate],
            horizon: SimTime::ZERO,
        }
    }

    fn push(&mut self, start: SimTime, rate: f64) {
        debug_assert!(start > *self.starts.last().unwrap());
        self.starts.push(start);
        self.rates.push(rate);
        self.horizon = start;
    }

    fn segment_index(&self, t: SimTime) -> usize {
        // partition_point returns the count of starts <= t; segment is
        // that minus one.
        self.starts.partition_point(|&s| s <= t) - 1
    }

    fn rate_at(&self, t: SimTime) -> f64 {
        self.rates[self.segment_index(t)]
    }

    /// Next start strictly after `t` **within the materialised horizon**.
    fn next_start_after(&self, t: SimTime) -> Option<SimTime> {
        let idx = self.starts.partition_point(|&s| s <= t);
        self.starts.get(idx).copied()
    }
}

/// Ensures a generator-backed timeline extends past `t`, appending
/// segments produced by `next_hold`.
macro_rules! impl_gen_process {
    ($ty:ty) => {
        impl BandwidthProcess for $ty {
            fn rate_at(&mut self, t: SimTime) -> f64 {
                self.ensure(t);
                self.timeline.rate_at(t).max(MIN_RATE)
            }

            fn next_change_after(&mut self, t: SimTime) -> Option<SimTime> {
                // Materialise a little beyond t so the next breakpoint
                // exists.
                let mut probe = t;
                loop {
                    self.ensure(probe);
                    if let Some(next) = self.timeline.next_start_after(t) {
                        return Some(next);
                    }
                    // Timeline horizon is beyond probe but no break after
                    // t yet: extend further.
                    probe += SimDuration::from_secs(3600);
                }
            }

            fn clone_box(&self) -> Box<dyn BandwidthProcess> {
                Box::new(self.clone())
            }
        }
    };
}

/// Fixed-rate process.
#[derive(Debug, Clone)]
pub struct ConstantProcess {
    rate: f64,
}

impl ConstantProcess {
    /// Creates a constant process with `rate` bytes/sec.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "bad rate {rate}");
        ConstantProcess {
            rate: rate.max(MIN_RATE),
        }
    }
}

impl BandwidthProcess for ConstantProcess {
    fn rate_at(&mut self, _t: SimTime) -> f64 {
        self.rate
    }
    fn next_change_after(&mut self, _t: SimTime) -> Option<SimTime> {
        None
    }
    fn clone_box(&self) -> Box<dyn BandwidthProcess> {
        Box::new(self.clone())
    }
}

/// Explicit piecewise-constant process from `(start, rate)` breakpoints.
#[derive(Debug, Clone)]
pub struct PiecewiseProcess {
    starts: Vec<SimTime>,
    rates: Vec<f64>,
}

impl PiecewiseProcess {
    /// Creates a piecewise process. The first breakpoint must be at
    /// `SimTime::ZERO` and starts must be strictly increasing.
    pub fn new(breakpoints: Vec<(SimTime, f64)>) -> Self {
        assert!(!breakpoints.is_empty(), "no breakpoints");
        assert_eq!(
            breakpoints[0].0,
            SimTime::ZERO,
            "first breakpoint must be t=0"
        );
        let mut starts = Vec::with_capacity(breakpoints.len());
        let mut rates = Vec::with_capacity(breakpoints.len());
        for (t, r) in breakpoints {
            assert!(r.is_finite() && r > 0.0, "bad rate {r}");
            if let Some(&prev) = starts.last() {
                assert!(t > prev, "breakpoints must be strictly increasing");
            }
            starts.push(t);
            rates.push(r.max(MIN_RATE));
        }
        PiecewiseProcess { starts, rates }
    }
}

impl BandwidthProcess for PiecewiseProcess {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        let idx = self.starts.partition_point(|&s| s <= t) - 1;
        self.rates[idx]
    }
    fn next_change_after(&mut self, t: SimTime) -> Option<SimTime> {
        let idx = self.starts.partition_point(|&s| s <= t);
        self.starts.get(idx).copied()
    }
    fn clone_box(&self) -> Box<dyn BandwidthProcess> {
        Box::new(self.clone())
    }
}

/// Continuous-time Markov chain over rate levels with exponential
/// holding times and per-segment multiplicative lognormal noise.
#[derive(Debug, Clone)]
pub struct RegimeSwitchingProcess {
    timeline: Timeline,
    rng: StdRng,
    levels: Vec<f64>,
    hold_means: Vec<SimDuration>,
    noise_sigma: f64,
    state: usize,
}

impl RegimeSwitchingProcess {
    /// Creates a regime-switching process with a uniform mean holding
    /// time for every regime.
    pub fn new(levels: Vec<f64>, hold_mean: SimDuration, noise_sigma: f64, seed: u64) -> Self {
        let holds = vec![hold_mean; levels.len()];
        Self::with_holds(levels, holds, noise_sigma, seed)
    }

    /// Creates a regime-switching process with **per-level** mean
    /// holding times.
    ///
    /// * `levels` — the base rate (bytes/sec) of each regime;
    /// * `hold_means` — mean exponential dwell per regime (same length
    ///   as `levels`). Asymmetric dwells matter: brief low regimes are
    ///   what turn probe-time dips into later penalties rather than
    ///   sustained gains;
    /// * `noise_sigma` — lognormal sigma of per-segment noise (0 = none);
    /// * `seed` — RNG seed (the process is a pure function of it).
    ///
    /// The initial state is drawn with probability proportional to its
    /// mean dwell (approximate stationarity).
    pub fn with_holds(
        levels: Vec<f64>,
        hold_means: Vec<SimDuration>,
        noise_sigma: f64,
        seed: u64,
    ) -> Self {
        assert!(!levels.is_empty(), "no levels");
        assert!(
            levels.iter().all(|&l| l.is_finite() && l > 0.0),
            "bad level"
        );
        assert_eq!(levels.len(), hold_means.len(), "holds/levels mismatch");
        assert!(hold_means.iter().all(|h| !h.is_zero()), "zero holding time");
        assert!(noise_sigma >= 0.0, "negative sigma");
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = hold_means.iter().map(|h| h.as_secs_f64()).collect();
        let state = ir_stats::sampling::weighted_index(&mut rng, &weights);
        let noise = LogNormal::new(0.0, noise_sigma);
        let first = levels[state] * noise.sample(&mut rng).max(0.05);
        RegimeSwitchingProcess {
            timeline: Timeline::new(first),
            rng,
            levels,
            hold_means,
            noise_sigma,
            state,
        }
    }

    fn ensure(&mut self, t: SimTime) {
        let noise = LogNormal::new(0.0, self.noise_sigma);
        while self.timeline.horizon <= t {
            let hold = Exponential::with_mean(self.hold_means[self.state].as_secs_f64());
            let dwell = SimDuration::from_secs_f64_ceil(hold.sample(&mut self.rng).max(1e-6));
            let next_start = self.timeline.horizon + dwell;
            // Jump to a uniformly random *different* state when more than
            // one level exists.
            if self.levels.len() > 1 {
                let mut next = self.rng.gen_range(0..self.levels.len() - 1);
                if next >= self.state {
                    next += 1;
                }
                self.state = next;
            }
            // Clamp noise below so a rate never collapses to ~0 by noise
            // alone (regime levels encode real outages if desired).
            let rate = self.levels[self.state] * noise.sample(&mut self.rng).max(0.05);
            self.timeline.push(next_start, rate);
        }
    }
}

impl_gen_process!(RegimeSwitchingProcess);

/// Mean-reverting AR(1) on log-rate, sampled at a fixed tick.
///
/// `log r_{k+1} = log m + phi (log r_k - log m) + sigma eps_k`, so the
/// stationary median is `m` and `phi` in `[0,1)` controls persistence.
#[derive(Debug, Clone)]
pub struct Ar1LogProcess {
    timeline: Timeline,
    rng: StdRng,
    log_median: f64,
    phi: f64,
    sigma: f64,
    tick: SimDuration,
    log_state: f64,
}

impl Ar1LogProcess {
    /// Creates an AR(1) log-rate process with stationary median
    /// `median` bytes/sec, persistence `phi`, innovation `sigma`, and
    /// sampling interval `tick`.
    pub fn new(median: f64, phi: f64, sigma: f64, tick: SimDuration, seed: u64) -> Self {
        assert!(median > 0.0 && median.is_finite(), "bad median");
        assert!((0.0..1.0).contains(&phi), "phi must be in [0,1)");
        assert!(sigma >= 0.0, "negative sigma");
        assert!(!tick.is_zero(), "zero tick");
        let mut rng = StdRng::seed_from_u64(seed);
        // Start from the stationary distribution.
        let stationary_sigma = if sigma == 0.0 {
            0.0
        } else {
            sigma / (1.0 - phi * phi).sqrt()
        };
        let log_median = median.ln();
        let log_state =
            ir_stats::sampling::Normal::new(log_median, stationary_sigma).sample(&mut rng);
        Ar1LogProcess {
            timeline: Timeline::new(log_state.exp()),
            rng,
            log_median,
            phi,
            sigma,
            tick,
            log_state,
        }
    }

    fn ensure(&mut self, t: SimTime) {
        while self.timeline.horizon <= t {
            let eps = ir_stats::sampling::Normal::new(0.0, 1.0).sample(&mut self.rng);
            self.log_state =
                self.log_median + self.phi * (self.log_state - self.log_median) + self.sigma * eps;
            let next_start = self.timeline.horizon + self.tick;
            self.timeline.push(next_start, self.log_state.exp());
        }
    }
}

impl_gen_process!(Ar1LogProcess);

/// Decorator adding rare multiplicative level shifts ("jumps") on top of
/// an inner process: episodes arrive as a Poisson process, last an
/// exponential duration, and scale the inner rate by a fixed factor.
pub struct JumpMixProcess {
    inner: Box<dyn BandwidthProcess>,
    // Factor timeline generated lazily, analogous to Timeline.
    factor: Timeline,
    rng: StdRng,
    arrival_mean: SimDuration,
    duration_mean: SimDuration,
    jump_factor: f64,
}

// Box<dyn BandwidthProcess> is Clone via clone_box, but derive(Clone)
// can't see that Send propagates; spell the impl out.
impl JumpMixProcess {
    /// Creates a jump decorator.
    ///
    /// * `arrival_mean` — mean time between jump episodes;
    /// * `duration_mean` — mean episode length;
    /// * `jump_factor` — multiplier applied during an episode (e.g. 0.3
    ///   for a throughput drop, 2.0 for a surge).
    pub fn new(
        inner: Box<dyn BandwidthProcess>,
        arrival_mean: SimDuration,
        duration_mean: SimDuration,
        jump_factor: f64,
        seed: u64,
    ) -> Self {
        assert!(!arrival_mean.is_zero(), "zero arrival mean");
        assert!(!duration_mean.is_zero(), "zero duration mean");
        assert!(jump_factor > 0.0 && jump_factor.is_finite(), "bad factor");
        JumpMixProcess {
            inner,
            factor: Timeline::new(1.0),
            rng: StdRng::seed_from_u64(seed),
            arrival_mean,
            duration_mean,
            jump_factor,
        }
    }

    fn ensure_factor(&mut self, t: SimTime) {
        let arrive = Exponential::with_mean(self.arrival_mean.as_secs_f64());
        let last = Exponential::with_mean(self.duration_mean.as_secs_f64());
        while self.factor.horizon <= t {
            // Alternate: quiet gap, then an episode.
            let gap = SimDuration::from_secs_f64_ceil(arrive.sample(&mut self.rng).max(1e-6));
            let episode_start = self.factor.horizon + gap;
            self.factor.push(episode_start, self.jump_factor);
            let dur = SimDuration::from_secs_f64_ceil(last.sample(&mut self.rng).max(1e-6));
            let episode_end = episode_start + dur;
            self.factor.push(episode_end, 1.0);
        }
    }
}

impl BandwidthProcess for JumpMixProcess {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        self.ensure_factor(t);
        (self.inner.rate_at(t) * self.factor.rate_at(t)).max(MIN_RATE)
    }

    fn next_change_after(&mut self, t: SimTime) -> Option<SimTime> {
        self.ensure_factor(t);
        let inner_next = self.inner.next_change_after(t);
        // The factor timeline always extends; next_start_after may need
        // more material.
        let mut fac_next = self.factor.next_start_after(t);
        while fac_next.is_none() {
            self.ensure_factor(self.factor.horizon + SimDuration::from_secs(3600));
            fac_next = self.factor.next_start_after(t);
        }
        match (inner_next, fac_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (None, b) => b,
            (a, None) => a,
        }
    }

    fn clone_box(&self) -> Box<dyn BandwidthProcess> {
        Box::new(JumpMixProcess {
            inner: self.inner.clone_box(),
            factor: self.factor.clone(),
            rng: self.rng.clone(),
            arrival_mean: self.arrival_mean,
            duration_mean: self.duration_mean,
            jump_factor: self.jump_factor,
        })
    }
}

impl Clone for JumpMixProcess {
    fn clone(&self) -> Self {
        JumpMixProcess {
            inner: self.inner.clone_box(),
            factor: self.factor.clone(),
            rng: self.rng.clone(),
            arrival_mean: self.arrival_mean,
            duration_mean: self.duration_mean,
            jump_factor: self.jump_factor,
        }
    }
}

/// Minimum of two processes — e.g. an overlay path clamped at the
/// client's access capacity, where both legs vary over time.
pub struct MinProcess {
    a: Box<dyn BandwidthProcess>,
    b: Box<dyn BandwidthProcess>,
}

impl MinProcess {
    /// Creates the pointwise minimum of `a` and `b`.
    pub fn new(a: Box<dyn BandwidthProcess>, b: Box<dyn BandwidthProcess>) -> Self {
        MinProcess { a, b }
    }
}

impl BandwidthProcess for MinProcess {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        self.a.rate_at(t).min(self.b.rate_at(t)).max(MIN_RATE)
    }
    fn next_change_after(&mut self, t: SimTime) -> Option<SimTime> {
        match (self.a.next_change_after(t), self.b.next_change_after(t)) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (None, y) => y,
            (x, None) => x,
        }
    }
    fn clone_box(&self) -> Box<dyn BandwidthProcess> {
        Box::new(MinProcess {
            a: self.a.clone_box(),
            b: self.b.clone_box(),
        })
    }
}

/// A diurnal modulation: multiplies an inner process by a day-period
/// load curve (busy hours depress available bandwidth). The paper's
/// studies ran 10-hour and 6-hour sessions and staggered control/
/// treatment "so that time-of-day effects are minimized" — this
/// compositor lets scenarios put those effects back in.
pub struct DiurnalProcess {
    inner: Box<dyn BandwidthProcess>,
    /// Modulation depth in (0, 1): rate swings between `1-depth` and 1.
    depth: f64,
    /// Day length.
    period: SimDuration,
    /// Step at which the (piecewise-constant) curve is sampled.
    step: SimDuration,
    /// Offset of the busiest time within the period.
    peak_offset: SimDuration,
}

impl DiurnalProcess {
    /// Creates a diurnal modulation of `inner`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < depth < 1` and both durations are nonzero.
    pub fn new(
        inner: Box<dyn BandwidthProcess>,
        depth: f64,
        period: SimDuration,
        peak_offset: SimDuration,
    ) -> Self {
        assert!((0.0..1.0).contains(&depth) && depth > 0.0, "bad depth");
        assert!(!period.is_zero(), "zero period");
        let step = SimDuration::from_micros((period.as_micros() / 96).max(1));
        DiurnalProcess {
            inner,
            depth,
            period,
            step,
            peak_offset,
        }
    }

    fn factor_at(&self, t: SimTime) -> f64 {
        // Quantise to the step so the factor is piecewise-constant and
        // boundaries are predictable.
        let q = (t.as_micros() / self.step.as_micros()) * self.step.as_micros();
        let phase = ((q + self.period.as_micros()
            - self.peak_offset.as_micros() % self.period.as_micros())
            % self.period.as_micros()) as f64
            / self.period.as_micros() as f64;
        // Cosine load curve: factor = 1 - depth at the peak, 1 off-peak.
        let load = (std::f64::consts::TAU * phase).cos() * 0.5 + 0.5;
        1.0 - self.depth * load
    }
}

impl BandwidthProcess for DiurnalProcess {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        (self.inner.rate_at(t) * self.factor_at(t)).max(MIN_RATE)
    }
    fn next_change_after(&mut self, t: SimTime) -> Option<SimTime> {
        let next_step = SimTime::from_micros(
            (t.as_micros() / self.step.as_micros() + 1) * self.step.as_micros(),
        );
        match self.inner.next_change_after(t) {
            Some(x) => Some(x.min(next_step)),
            None => Some(next_step),
        }
    }
    fn clone_box(&self) -> Box<dyn BandwidthProcess> {
        Box::new(DiurnalProcess {
            inner: self.inner.clone_box(),
            depth: self.depth,
            period: self.period,
            step: self.step,
            peak_offset: self.peak_offset,
        })
    }
}

/// Multiplies an inner process by a constant factor.
pub struct ScaledProcess {
    inner: Box<dyn BandwidthProcess>,
    factor: f64,
}

impl ScaledProcess {
    /// Creates a scaled view of `inner`.
    pub fn new(inner: Box<dyn BandwidthProcess>, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "bad factor {factor}");
        ScaledProcess { inner, factor }
    }
}

impl BandwidthProcess for ScaledProcess {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        (self.inner.rate_at(t) * self.factor).max(MIN_RATE)
    }
    fn next_change_after(&mut self, t: SimTime) -> Option<SimTime> {
        self.inner.next_change_after(t)
    }
    fn clone_box(&self) -> Box<dyn BandwidthProcess> {
        Box::new(ScaledProcess {
            inner: self.inner.clone_box(),
            factor: self.factor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_process_never_changes() {
        let mut p = ConstantProcess::new(1e6);
        assert_eq!(p.rate_at(SimTime::ZERO), 1e6);
        assert_eq!(p.rate_at(t(100_000)), 1e6);
        assert_eq!(p.next_change_after(SimTime::ZERO), None);
    }

    #[test]
    fn piecewise_lookup_and_changes() {
        let mut p = PiecewiseProcess::new(vec![(SimTime::ZERO, 10.0), (t(10), 20.0), (t(20), 5.0)]);
        assert_eq!(p.rate_at(SimTime::ZERO), 10.0);
        assert_eq!(p.rate_at(t(9)), 10.0);
        assert_eq!(p.rate_at(t(10)), 20.0);
        assert_eq!(p.rate_at(t(25)), 5.0);
        assert_eq!(p.next_change_after(SimTime::ZERO), Some(t(10)));
        assert_eq!(p.next_change_after(t(10)), Some(t(20)));
        assert_eq!(p.next_change_after(t(20)), None);
    }

    #[test]
    #[should_panic(expected = "first breakpoint")]
    fn piecewise_must_start_at_zero() {
        PiecewiseProcess::new(vec![(t(1), 10.0)]);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // miri: thousands of rate_at samples, minutes under the interpreter
    fn regime_switching_is_deterministic_and_positive() {
        let mk = || {
            RegimeSwitchingProcess::new(vec![1e5, 1e6, 5e6], SimDuration::from_secs(300), 0.2, 42)
        };
        let mut a = mk();
        let mut b = mk();
        for s in (0..36_000).step_by(61) {
            let ra = a.rate_at(t(s));
            assert!(ra >= MIN_RATE);
            assert_eq!(ra, b.rate_at(t(s)));
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // miri: thousands of rate_at samples, minutes under the interpreter
    fn regime_switching_actually_switches() {
        let mut p = RegimeSwitchingProcess::new(vec![1e5, 1e6], SimDuration::from_secs(60), 0.0, 7);
        let mut seen = std::collections::BTreeSet::new();
        for s in 0..3600 {
            seen.insert(p.rate_at(t(s)).to_bits());
        }
        assert!(seen.len() >= 2, "never switched");
    }

    #[test]
    fn regime_switching_rate_stable_after_requery() {
        let mut p = RegimeSwitchingProcess::new(vec![1e6, 2e6], SimDuration::from_secs(10), 0.3, 9);
        let early = p.rate_at(t(5));
        let _ = p.rate_at(t(10_000)); // extend far ahead
        assert_eq!(p.rate_at(t(5)), early, "history rewritten");
    }

    #[test]
    fn next_change_is_strictly_after_and_rate_differs_segment() {
        let mut p = RegimeSwitchingProcess::new(vec![1e5, 1e6], SimDuration::from_secs(30), 0.0, 3);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            let next = p.next_change_after(now).unwrap();
            assert!(next > now);
            now = next;
        }
    }

    #[test]
    fn ar1_reverts_to_median() {
        let mut p = Ar1LogProcess::new(1e6, 0.9, 0.1, SimDuration::from_secs(30), 11);
        let mut rates: Vec<f64> = (0..5000).map(|i| p.rate_at(t(i * 30))).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = rates[rates.len() / 2];
        // Stationary median should be near 1e6 (within a factor ~1.5).
        assert!(med > 6e5 && med < 1.6e6, "median {med}");
    }

    #[test]
    fn ar1_zero_sigma_is_constant() {
        let mut p = Ar1LogProcess::new(2e6, 0.5, 0.0, SimDuration::from_secs(1), 1);
        let r0 = p.rate_at(SimTime::ZERO);
        assert!((r0 - 2e6).abs() < 1e-6);
        assert!((p.rate_at(t(1000)) - 2e6).abs() < 1e-6);
    }

    #[test]
    fn jump_mix_applies_factor_sometimes() {
        let inner = Box::new(ConstantProcess::new(1e6));
        let mut p = JumpMixProcess::new(
            inner,
            SimDuration::from_secs(100),
            SimDuration::from_secs(50),
            0.25,
            5,
        );
        let mut low = 0;
        let mut high = 0;
        for s in 0..10_000 {
            let r = p.rate_at(t(s));
            if (r - 1e6).abs() < 1.0 {
                high += 1;
            } else if (r - 2.5e5).abs() < 1.0 {
                low += 1;
            } else {
                panic!("unexpected rate {r}");
            }
        }
        assert!(low > 0, "no jump episodes in 10ks");
        assert!(high > low, "jumps dominate; should be rare-ish");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // miri: thousands of rate_at samples, minutes under the interpreter
    fn jump_mix_clone_matches_original() {
        let inner = Box::new(RegimeSwitchingProcess::new(
            vec![5e5, 2e6],
            SimDuration::from_secs(60),
            0.1,
            13,
        ));
        let p = JumpMixProcess::new(
            inner,
            SimDuration::from_secs(300),
            SimDuration::from_secs(30),
            0.5,
            17,
        );
        let mut a = p.clone();
        let mut b = p;
        for s in (0..7200).step_by(13) {
            assert_eq!(a.rate_at(t(s)), b.rate_at(t(s)));
        }
    }

    #[test]
    fn scaled_process_multiplies() {
        let mut p = ScaledProcess::new(Box::new(ConstantProcess::new(100.0)), 2.5);
        assert_eq!(p.rate_at(SimTime::ZERO), 250.0);
        assert_eq!(p.next_change_after(SimTime::ZERO), None);
    }

    #[test]
    fn min_process_takes_pointwise_minimum() {
        let a = Box::new(PiecewiseProcess::new(vec![
            (SimTime::ZERO, 100.0),
            (t(10), 500.0),
        ]));
        let b = Box::new(PiecewiseProcess::new(vec![
            (SimTime::ZERO, 300.0),
            (t(20), 50.0),
        ]));
        let mut m = MinProcess::new(a, b);
        assert_eq!(m.rate_at(t(5)), 100.0);
        assert_eq!(m.rate_at(t(15)), 300.0);
        assert_eq!(m.rate_at(t(25)), 50.0);
        // Changes of either side are boundaries.
        assert_eq!(m.next_change_after(SimTime::ZERO), Some(t(10)));
        assert_eq!(m.next_change_after(t(10)), Some(t(20)));
        assert_eq!(m.next_change_after(t(20)), None);
    }

    #[test]
    fn diurnal_depresses_at_peak_only() {
        let day = SimDuration::from_secs(86_400);
        let mut p = DiurnalProcess::new(
            Box::new(ConstantProcess::new(1000.0)),
            0.5,
            day,
            SimDuration::ZERO, // peak at t = 0
        );
        let at_peak = p.rate_at(SimTime::ZERO);
        let off_peak = p.rate_at(SimTime::from_secs(43_200)); // half a day
        assert!((at_peak - 500.0).abs() < 15.0, "peak {at_peak}");
        assert!((off_peak - 1000.0).abs() < 15.0, "off-peak {off_peak}");
        // Quantised boundaries exist and are strictly increasing.
        let n1 = p.next_change_after(SimTime::ZERO).unwrap();
        let n2 = p.next_change_after(n1).unwrap();
        assert!(SimTime::ZERO < n1 && n1 < n2);
    }

    #[test]
    fn diurnal_clone_matches() {
        let day = SimDuration::from_secs(3600);
        let p = DiurnalProcess::new(
            Box::new(ConstantProcess::new(777.0)),
            0.3,
            day,
            SimDuration::from_secs(900),
        );
        let mut a = p.clone_box();
        let mut b = p.clone_box();
        for s in (0..7200).step_by(61) {
            assert_eq!(a.rate_at(t(s)), b.rate_at(t(s)));
        }
    }

    #[test]
    fn boxed_clone_works() {
        let b: Box<dyn BandwidthProcess> = Box::new(ConstantProcess::new(7.0));
        let mut c = b.clone();
        assert_eq!(c.rate_at(SimTime::ZERO), 7.0);
    }
}
