//! The flow-level simulation engine.
//!
//! Flows are fluid: each active flow progresses at a rate determined by
//! (a) max–min fair sharing of the time-varying link capacities along
//! its route and (b) its own [`RateCap`] (the TCP model's ceiling —
//! slow-start ramp early in the flow, loss-based cap in steady state).
//! The engine advances from boundary to boundary, where a boundary is
//! the earliest of: a link-rate change, a flow's cap change, a flow
//! completion, or the caller's horizon. Between boundaries every rate is
//! constant, so progress integrates exactly.
//!
//! Two allocation engines share that boundary loop (see
//! [`EngineMode`]): the default *incremental* engine maintains the
//! in-use link set, a dense slot map, cached effective link rates (with
//! a lazy-invalidation heap of upcoming rate changes) and the last
//! solved fair-share problem, re-solving only when some solver input
//! actually changed; the *reference* engine rebuilds the whole problem
//! from scratch every boundary and solves it with the naive
//! [`crate::fairshare::reference_rates`] oracle. The two are held
//! bit-identical by the differential suite in
//! `tests/engine_equivalence.rs` (invalidation rules: DESIGN.md §10).
//!
//! Determinism: with the same topology, seeds and call sequence, runs
//! are bit-for-bit identical. Cloning a [`Network`] yields an
//! independent replica with identical future randomness — this is how
//! experiments run the paper's "two concurrent client processes" in a
//! genuinely interference-free control configuration when desired.

use crate::bandwidth::BandwidthProcess;
use crate::events::EventQueue;
use crate::fairshare::{max_min_rates, AllocFlow};
use crate::faults::{FaultEvent, FaultPlan};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, Route, Topology};
use ir_telemetry::trace::{Event, EventKind};
use ir_telemetry::Telemetry;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Identifier of a flow within one [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A per-flow rate ceiling, e.g. a TCP model.
pub trait RateCap: Send + Sync {
    /// The ceiling (bytes/sec) for a flow of age `age` that has
    /// transferred `bytes_done` bytes.
    fn cap(&mut self, age: SimDuration, bytes_done: u64) -> f64;

    /// The next flow age strictly after `age` at which the ceiling may
    /// change, or `None` if it is constant from `age` on. Used to
    /// schedule re-allocation boundaries; a conservative (too frequent)
    /// answer is correct but slower.
    fn next_cap_change(&mut self, age: SimDuration) -> Option<SimDuration>;

    /// Clones into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn RateCap>;
}

impl Clone for Box<dyn RateCap> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// No ceiling: the flow takes whatever fair share the links allow.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCap;

impl RateCap for NoCap {
    fn cap(&mut self, _age: SimDuration, _done: u64) -> f64 {
        f64::INFINITY
    }
    fn next_cap_change(&mut self, _age: SimDuration) -> Option<SimDuration> {
        None
    }
    fn clone_box(&self) -> Box<dyn RateCap> {
        Box::new(*self)
    }
}

/// A constant ceiling (testing, simple shaping).
#[derive(Debug, Clone, Copy)]
pub struct ConstCap(pub f64);

impl RateCap for ConstCap {
    fn cap(&mut self, _age: SimDuration, _done: u64) -> f64 {
        self.0
    }
    fn next_cap_change(&mut self, _age: SimDuration) -> Option<SimDuration> {
        None
    }
    fn clone_box(&self) -> Box<dyn RateCap> {
        Box::new(*self)
    }
}

/// Record of a finished flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedFlow {
    /// Which flow.
    pub id: FlowId,
    /// Bytes it transferred.
    pub bytes: u64,
    /// When it started.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
}

impl CompletedFlow {
    /// Mean goodput over the flow's lifetime, bytes/sec.
    ///
    /// A zero-duration flow (zero bytes) reports `f64::INFINITY`.
    pub fn throughput(&self) -> f64 {
        let dt = (self.finished - self.started).as_secs_f64();
        if dt == 0.0 {
            f64::INFINITY
        } else {
            self.bytes as f64 / dt
        }
    }
}

struct FlowState {
    route: Route,
    bytes_total: u64,
    bytes_done: f64,
    started: SimTime,
    cap: Box<dyn RateCap>,
    finished: Option<SimTime>,
    cancelled: bool,
}

impl Clone for FlowState {
    fn clone(&self) -> Self {
        FlowState {
            route: self.route.clone(),
            bytes_total: self.bytes_total,
            bytes_done: self.bytes_done,
            started: self.started,
            cap: self.cap.clone_box(),
            finished: self.finished,
            cancelled: self.cancelled,
        }
    }
}

/// Engine counters, for performance diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Boundary steps processed (rate changes, cap changes,
    /// completions, horizons).
    pub boundaries: u64,
    /// Boundary steps that assembled the fair-share problem and ran the
    /// max–min solver. Always ≤ `boundaries`; the gap is the work the
    /// incremental engine avoided.
    pub full_solves: u64,
    /// Boundary steps that proved every solver input bitwise unchanged
    /// and reused the cached allocation instead of solving.
    pub incremental_solves: u64,
    /// Flows ever started.
    pub flows_started: u64,
    /// Flows that ran to completion.
    pub flows_completed: u64,
    /// Flows cancelled before completion.
    pub flows_cancelled: u64,
    /// Congestion components solved across all full solves (the
    /// incremental and sharded engines solve per component; the
    /// reference engine does not track this — it stays 0 there).
    pub component_solves: u64,
}

/// Which allocation engine [`Network`] runs; see the module docs.
///
/// Both modes are bit-identical in every observable output (rates,
/// boundary times, completions, even `boundaries` counts) — the
/// differential suite in `tests/engine_equivalence.rs` holds them to
/// that. [`EngineMode::Reference`] rebuilds and re-solves the whole
/// max–min problem every boundary with the naive oracle, so it is the
/// slow-but-obviously-correct baseline; switching mid-run is allowed
/// (the incremental caches are maintained in both modes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// Dirty-tracked caches + solve skipping (the default).
    #[default]
    Incremental,
    /// Brute-force rebuild + [`crate::fairshare::reference_rates`]
    /// every boundary.
    Reference,
    /// The incremental engine with its per-boundary flow loops and
    /// per-component solves fanned out over up to `threads` workers.
    /// Bit-identical to [`EngineMode::Incremental`] at **any** thread
    /// count: congestion components are solved on disjoint state and
    /// merged in stable component order, and the parallel reductions
    /// (event-horizon minima) are order-insensitive integer/`f64::min`
    /// folds. `threads == 0` or `1` degenerates to the sequential path.
    Sharded {
        /// Worker-thread budget for the parallel phases.
        threads: usize,
    },
}

/// Marker for "link not in the current fair-share problem" in
/// [`EngineCache::slot_of`].
const NO_SLOT: u32 = u32::MAX;

/// Dirty-tracked state the incremental engine maintains across
/// boundaries. Everything here is *derived* — it can be rebuilt from
/// the network at any time — and is updated in both engine modes so
/// switching modes mid-run stays sound.
///
/// Invalidation rules (DESIGN.md §10):
/// * flow start / completion / cancellation → `flows_dirty`, and
///   `links_dirty` when a link's crossing-flow count crosses zero;
/// * a link's cached rate segment expiring (`rate_until` reached) →
///   refresh via the `change_heap`;
/// * fault application / plan change → `faults_fired` (effective rates
///   recomputed wholesale — the factor is a few array loads);
/// * any bitwise change to a solver input → full re-solve; otherwise
///   the cached `solution` is provably still the answer, because the
///   solver is a pure function of `(link caps, flow links, flow caps)`.
#[derive(Clone)]
struct EngineCache {
    /// Number of active flows crossing each link.
    link_refs: Vec<u32>,
    /// Links with `link_refs > 0`, ascending — the dense problem slots.
    in_use: Vec<u32>,
    /// Link index → slot in `in_use`, or [`NO_SLOT`].
    slot_of: Vec<u32>,
    /// The in-use set changed (some `link_refs` crossed zero).
    links_dirty: bool,
    /// The active flow set changed.
    flows_dirty: bool,
    /// Fault events applied (or the plan changed) since the last
    /// boundary; effective rates must be re-derived.
    faults_fired: bool,
    /// Cached raw process rate per link, valid until `rate_until`.
    raw_rate: Vec<f64>,
    /// Time at which the cached `raw_rate` stops being valid
    /// (`SimTime::MAX` = constant from here on; `SimTime::ZERO` = never
    /// queried).
    rate_until: Vec<SimTime>,
    /// `raw_rate × fault factor`, the capacity actually allocated.
    eff_rate: Vec<f64>,
    /// Min-heap of `(rate_until, link)` for in-use links: the earliest
    /// upcoming link-rate change without querying every process each
    /// boundary. Entries are validated lazily on pop (stale ones —
    /// superseded refreshes or out-of-use links — are discarded), so
    /// duplicates are harmless.
    change_heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// In-use links with [`Sharing::Capacity`], ascending — the links
    /// that actually enter the max–min problem (PerFlow links fold into
    /// flow caps and are arithmetically inert there). Rebuilt alongside
    /// `in_use`.
    cap_in_use: Vec<u32>,
    /// Link index → slot in `cap_in_use`, or [`NO_SLOT`].
    cap_slot_of: Vec<u32>,
    /// The solver problem in struct-of-arrays form: `flow_off` /
    /// `flow_links` (capacity-slot space) rebuilt when `flows_dirty`,
    /// `flow_cap` re-folded every boundary, `link_cap` refilled from
    /// `eff_rate` at each solve.
    prob: crate::soa::ProblemSlab,
    /// Per-active-flow [`Sharing::PerFlow`] link ids (global), CSR —
    /// the links whose rates fold into that flow's cap.
    fold_off: Vec<u32>,
    /// CSR arena for `fold_off`.
    fold_links: Vec<u32>,
    /// Active flow indices, ascending (mirrors the `active` list the
    /// solve was handed; these are the partition's flow elements).
    active_slots: Vec<u32>,
    /// Incrementally-maintained flow↔capacity-link union–find.
    partition: crate::partition::FlowLinkPartition,
    /// Congestion components of the current problem (solve scratch).
    comps: crate::partition::Components,
    /// Per-worker solver scratch (index 0 serves the sequential path).
    workers: Vec<WorkerScratch>,
    /// The last solver output, reusable while inputs are unchanged.
    solution: Vec<f64>,
    /// `solution`/`prob` describe the current active set.
    have_solution: bool,
}

/// Per-worker scratch for component solves: full-problem-size arrays the
/// kernels initialise per component. Workers write rates into their own
/// `rate` buffer; the solve scatters them back in component order.
#[derive(Clone, Default)]
struct WorkerScratch {
    frozen: Vec<bool>,
    residual: Vec<f64>,
    active_on: Vec<u32>,
    rate: Vec<f64>,
}

impl WorkerScratch {
    fn resize(&mut self, flows: usize, links: usize) {
        self.frozen.resize(flows, false);
        self.residual.resize(links, 0.0);
        self.active_on.resize(links, 0);
        self.rate.resize(flows, 0.0);
    }
}

impl EngineCache {
    fn new(links: usize) -> Self {
        EngineCache {
            link_refs: vec![0; links],
            in_use: Vec::new(),
            slot_of: vec![NO_SLOT; links],
            links_dirty: true,
            flows_dirty: true,
            faults_fired: false,
            raw_rate: vec![0.0; links],
            rate_until: vec![SimTime::ZERO; links],
            eff_rate: vec![0.0; links],
            change_heap: BinaryHeap::new(),
            cap_in_use: Vec::new(),
            cap_slot_of: vec![NO_SLOT; links],
            prob: crate::soa::ProblemSlab::default(),
            fold_off: Vec::new(),
            fold_links: Vec::new(),
            active_slots: Vec::new(),
            partition: crate::partition::FlowLinkPartition::new(links),
            comps: crate::partition::Components::default(),
            workers: Vec::new(),
            solution: Vec::new(),
            have_solution: false,
        }
    }

    /// A flow on `route` became active.
    fn acquire(&mut self, route: &Route) {
        for l in &route.links {
            let lu = l.0 as usize;
            self.link_refs[lu] += 1;
            if self.link_refs[lu] == 1 {
                self.links_dirty = true;
            }
        }
        self.flows_dirty = true;
        self.have_solution = false;
    }

    /// A flow on `route` completed or was cancelled.
    fn release(&mut self, route: &Route) {
        for l in &route.links {
            let lu = l.0 as usize;
            self.link_refs[lu] -= 1;
            if self.link_refs[lu] == 0 {
                self.links_dirty = true;
            }
        }
        self.flows_dirty = true;
        self.have_solution = false;
        self.partition.on_flow_end();
    }
}

/// Minimum active flows per parallel chunk: below this, thread-spawn
/// overhead dwarfs the loop body and the engine stays sequential.
/// Purely a performance knob — chunking never changes any output bit.
const PAR_MIN_FLOWS: usize = 1024;

/// How many chunks the engine mode wants for `n` flows' worth of
/// per-flow work. 1 for the sequential engines and for problems too
/// small to amortise thread spawns.
fn par_chunk_count(mode: EngineMode, n: usize) -> usize {
    match mode {
        EngineMode::Sharded { threads } => {
            let t = threads.max(1);
            if t > 1 && n >= 2 * PAR_MIN_FLOWS {
                t.min(n / PAR_MIN_FLOWS)
            } else {
                1
            }
        }
        _ => 1,
    }
}

/// A contiguous k-range of the ascending active list paired with the
/// matching disjoint window of the flow table — the unit of work for
/// the sharded engine's parallel per-flow loops. Flow `i` (for `i ∈
/// active`) lives at `flows[i - base]`; dense index `k` of the `j`-th
/// entry is `k0 + j`.
struct FlowChunk<'a> {
    k0: usize,
    base: usize,
    active: &'a [usize],
    flows: &'a mut [FlowState],
}

/// Splits `flows` into [`FlowChunk`]s of `per` active flows each.
/// Windows are disjoint because `active` is ascending, so the chunks can
/// be handed to worker threads directly.
fn chunk_active<'a>(
    mut flows: &'a mut [FlowState],
    active: &'a [usize],
    per: usize,
) -> Vec<FlowChunk<'a>> {
    let mut out = Vec::new();
    let mut consumed = 0usize;
    let mut k0 = 0usize;
    while k0 < active.len() {
        let k1 = (k0 + per).min(active.len());
        let lo = active[k0];
        let hi = active[k1 - 1] + 1;
        let rest = std::mem::take(&mut flows);
        let (_, rest) = rest.split_at_mut(lo - consumed);
        let (win, rest) = rest.split_at_mut(hi - lo);
        flows = rest;
        consumed = hi;
        out.push(FlowChunk {
            k0,
            base: lo,
            active: &active[k0..k1],
            flows: win,
        });
        k0 = k1;
    }
    out
}

/// One chunk of the folded-cap re-query: queries each flow's own cap,
/// folds in its PerFlow link rates, and writes the chunk's slice of the
/// slab flow caps. Returns whether any cap moved (bitwise).
fn fold_caps_chunk(
    ch: &mut FlowChunk<'_>,
    caps: &mut [f64],
    fold_off: &[u32],
    fold_links: &[u32],
    eff_rate: &[f64],
    t: SimTime,
) -> bool {
    let mut changed = false;
    for (j, &i) in ch.active.iter().enumerate() {
        let k = ch.k0 + j;
        let f = &mut ch.flows[i - ch.base];
        let age = t - f.started;
        let mut cap = f.cap.cap(age, f.bytes_done as u64);
        for &l in &fold_links[fold_off[k] as usize..fold_off[k + 1] as usize] {
            cap = cap.min(eff_rate[l as usize]);
        }
        if cap.to_bits() != caps[j].to_bits() {
            caps[j] = cap;
            changed = true;
        }
    }
    changed
}

/// One chunk of the per-flow boundary scan: min over the chunk of each
/// flow's next cap change and projected completion time.
fn flow_boundary_chunk(
    ch: &mut FlowChunk<'_>,
    rates: &[f64],
    t: SimTime,
    until: SimTime,
) -> SimTime {
    let mut boundary = until;
    for (j, &i) in ch.active.iter().enumerate() {
        let k = ch.k0 + j;
        let f = &mut ch.flows[i - ch.base];
        let age = t - f.started;
        if let Some(next_age) = f.cap.next_cap_change(age) {
            debug_assert!(next_age > age, "cap change not in the future");
            boundary = boundary.min(f.started + next_age);
        }
        let remaining = f.bytes_total as f64 - f.bytes_done;
        if rates[k] > 0.0 && remaining > 0.0 {
            let dt = SimDuration::from_secs_f64_ceil(remaining / rates[k]);
            let dt = if dt.is_zero() {
                SimDuration::from_micros(1)
            } else {
                dt
            };
            boundary = boundary.min(t.saturating_add(dt));
        }
    }
    boundary
}

/// One chunk of progress integration; returns the flow indices that
/// completed, ascending — concatenating per-chunk results in chunk
/// order preserves the global ascending completion order.
fn integrate_chunk(ch: &mut FlowChunk<'_>, rates: &[f64], dt: f64) -> Vec<usize> {
    let mut done = Vec::new();
    for (j, &i) in ch.active.iter().enumerate() {
        let k = ch.k0 + j;
        let f = &mut ch.flows[i - ch.base];
        f.bytes_done = (f.bytes_done + rates[k] * dt).min(f.bytes_total as f64);
        // Half-byte tolerance absorbs fp residue from the ceil rounding
        // of dt.
        if f.bytes_total as f64 - f.bytes_done < 0.5 {
            f.bytes_done = f.bytes_total as f64;
            done.push(i);
        }
    }
    done
}

/// Live state of an installed [`FaultPlan`]: the pending schedule plus
/// the current down/brownout flags it has produced so far.
#[derive(Clone)]
struct FaultState {
    queue: EventQueue<FaultEvent>,
    link_down: Vec<bool>,
    node_down: Vec<bool>,
    brownout: Vec<f64>,
}

/// The simulated network: topology + per-link bandwidth processes +
/// active flows + the clock.
pub struct Network {
    topo: Topology,
    procs: Vec<Box<dyn BandwidthProcess>>,
    flows: Vec<FlowState>,
    /// Indices of flows that are neither finished nor cancelled. Kept
    /// separately so long-running experiments (tens of thousands of
    /// completed flows) do not rescan history every boundary.
    active: std::collections::BTreeSet<usize>,
    now: SimTime,
    stats: EngineStats,
    /// Fault plane; `None` (the default, and what an empty plan
    /// installs) keeps every code path byte-identical to a build
    /// without fault support.
    faults: Option<FaultState>,
    /// Observability handle; `None` (the default) costs nothing on any
    /// path. Strictly observational: never consumes randomness, never
    /// moves the clock, never changes control flow.
    telemetry: Option<Arc<Telemetry>>,
    /// Which allocation engine runs the boundary steps.
    mode: EngineMode,
    /// Incremental-engine state (maintained in both modes).
    cache: EngineCache,
    /// `(flow, rate)` pairs the most recent boundary step integrated.
    last_rates: Vec<(FlowId, f64)>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            topo: self.topo.clone(),
            procs: self.procs.clone(),
            flows: self.flows.clone(),
            active: self.active.clone(),
            now: self.now,
            stats: self.stats,
            faults: self.faults.clone(),
            telemetry: self.telemetry.clone(),
            mode: self.mode,
            cache: self.cache.clone(),
            last_rates: self.last_rates.clone(),
        }
    }
}

impl Network {
    /// Creates a network over `topo`; every link starts with the given
    /// default constant rate until a process is attached.
    pub fn new(topo: Topology, default_rate: f64) -> Self {
        let procs = (0..topo.link_count())
            .map(|_| {
                Box::new(crate::bandwidth::ConstantProcess::new(default_rate))
                    as Box<dyn BandwidthProcess>
            })
            .collect();
        let links = topo.link_count();
        Network {
            topo,
            procs,
            flows: Vec::new(),
            active: std::collections::BTreeSet::new(),
            now: SimTime::ZERO,
            stats: EngineStats::default(),
            faults: None,
            telemetry: None,
            mode: EngineMode::default(),
            cache: EngineCache::new(links),
            last_rates: Vec::new(),
        }
    }

    /// Engine counters since construction (clones inherit the donor's).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Selects the allocation engine; see [`EngineMode`].
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// The allocation engine currently selected.
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// Attaches (or with `None`, detaches) a telemetry handle. Clones
    /// made after this call inherit the handle, so every replica of a
    /// scenario network reports into the same registry.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<Telemetry>>) {
        self.telemetry = telemetry;
    }

    /// The currently attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Attaches a bandwidth process to a link, replacing the previous
    /// one.
    pub fn set_link_process(&mut self, link: LinkId, proc_: Box<dyn BandwidthProcess>) {
        let lu = link.0 as usize;
        self.procs[lu] = proc_;
        // Invalidate the cached rate segment: mark it as expiring
        // immediately and arm the heap so the next boundary re-queries
        // the new process.
        self.cache.rate_until[lu] = SimTime::ZERO;
        self.cache
            .change_heap
            .push(Reverse((SimTime::ZERO, link.0)));
        self.cache.have_solution = false;
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Instantaneous available bandwidth of `link` at the current time
    /// (before fair sharing).
    pub fn link_rate_now(&mut self, link: LinkId) -> f64 {
        let t = self.now;
        self.procs[link.0 as usize].rate_at(t)
    }

    /// The bandwidth process attached to `link` (e.g. to clone it for
    /// side-channel sampling; see [`crate::tracer`]).
    pub fn link_process(&self, link: LinkId) -> &dyn BandwidthProcess {
        self.procs[link.0 as usize].as_ref()
    }

    /// Installs a fault plan, replacing any previous plan and clearing
    /// its accumulated state. Events apply lazily as the clock reaches
    /// them. An **empty** plan removes the fault plane entirely: the
    /// network is then byte-identical (state and behaviour) to one that
    /// never had a plan — the no-op guarantee `FaultPlan::none()`
    /// documents. Clones made after this call inherit the plan, so
    /// every replica of a scenario network replays the same schedule.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        // Any previously applied factors may vanish (or appear) with the
        // new plan; have the engine re-derive effective rates.
        self.cache.faults_fired = true;
        self.cache.have_solution = false;
        if plan.is_empty() {
            self.faults = None;
            return;
        }
        let mut queue = EventQueue::new();
        for &(at, ev) in plan.events() {
            queue.push(at, ev);
        }
        self.faults = Some(FaultState {
            queue,
            link_down: vec![false; self.topo.link_count()],
            node_down: vec![false; self.topo.node_count()],
            brownout: vec![1.0; self.topo.link_count()],
        });
    }

    /// Number of scheduled fault events not yet applied.
    pub fn fault_events_pending(&self) -> usize {
        self.faults.as_ref().map_or(0, |fs| fs.queue.len())
    }

    /// Multiplier the fault plane currently applies to `link`'s rate:
    /// `0.0` when the link or either endpoint node is down, the
    /// brownout factor during a brownout, `1.0` otherwise.
    fn fault_factor(&self, l: usize) -> f64 {
        match &self.faults {
            None => 1.0,
            Some(fs) => {
                let link = self.topo.link(LinkId(l as u32));
                if fs.link_down[l]
                    || fs.node_down[link.from.0 as usize]
                    || fs.node_down[link.to.0 as usize]
                {
                    0.0
                } else {
                    fs.brownout[l]
                }
            }
        }
    }

    /// Time of the next unapplied fault event, if any.
    fn next_fault_time(&self) -> Option<SimTime> {
        self.faults.as_ref().and_then(|fs| fs.queue.peek_time())
    }

    /// Applies every fault event scheduled at or before the current
    /// time. Telemetry is stamped with each event's *scheduled* time,
    /// so late application (a boundary landing past the event) keeps
    /// truthful timestamps.
    fn apply_due_faults(&mut self) {
        let now = self.now;
        let Some(fs) = &mut self.faults else { return };
        let mut fired = false;
        while let Some((at, ev)) = fs.queue.pop_until(now) {
            fired = true;
            let (what, id, factor) = match ev {
                FaultEvent::LinkDown(l) => {
                    fs.link_down[l.0 as usize] = true;
                    ("link_down", l.0 as u64, 0.0)
                }
                FaultEvent::LinkUp(l) => {
                    fs.link_down[l.0 as usize] = false;
                    ("link_up", l.0 as u64, 1.0)
                }
                FaultEvent::BrownoutSet { link, factor } => {
                    fs.brownout[link.0 as usize] = factor;
                    ("brownout", link.0 as u64, factor)
                }
                FaultEvent::NodeDown(n) => {
                    fs.node_down[n.0 as usize] = true;
                    ("node_down", n.0 as u64, 0.0)
                }
                FaultEvent::NodeUp(n) => {
                    fs.node_down[n.0 as usize] = false;
                    ("node_up", n.0 as u64, 1.0)
                }
            };
            if let Some(tel) = &self.telemetry {
                tel.metrics.counter("simnet_faults_injected", vec![]).inc();
                tel.tracer.record(
                    Event::new(EventKind::FaultInjected, at.as_micros(), id)
                        .with_str("fault", what)
                        .with_f64("factor", factor),
                );
            }
        }
        if fired {
            self.cache.faults_fired = true;
        }
    }

    /// Instantaneous *effective* rate of `link`: the raw process value
    /// scaled by the fault plane (0 while down).
    pub fn effective_link_rate_now(&mut self, link: LinkId) -> f64 {
        self.apply_due_faults();
        let raw = self.link_rate_now(link);
        raw * self.fault_factor(link.0 as usize)
    }

    /// True if the fault plane currently makes `link` unusable (the
    /// link itself or either endpoint node is down).
    pub fn link_is_down(&mut self, link: LinkId) -> bool {
        self.apply_due_faults();
        self.fault_factor(link.0 as usize) == 0.0
    }

    /// Current fair-share allocation of every active flow at this
    /// instant: `(flow, route links, allocated rate)`. Diagnostic /
    /// test accessor — it recomputes shares without advancing time and
    /// never changes engine state beyond lazily extending process
    /// timelines (which is query-stable).
    pub fn active_flow_allocation(&mut self) -> Vec<(FlowId, Vec<LinkId>, f64)> {
        self.apply_due_faults();
        let active = self.active_indices();
        let (caps, alloc_flows) = self.scratch_problem(&active);
        let rates = max_min_rates(&caps, &alloc_flows);
        active
            .iter()
            .zip(rates)
            .map(|(&i, r)| (FlowId(i as u64), self.flows[i].route.links.clone(), r))
            .collect()
    }

    /// Starts a flow of `bytes` along `route` at the current time.
    pub fn start_flow(&mut self, route: Route, bytes: u64, cap: Box<dyn RateCap>) -> FlowId {
        let id = FlowId(self.flows.len() as u64);
        let finished = if bytes == 0 { Some(self.now) } else { None };
        if finished.is_none() {
            self.cache.acquire(&route);
            let topo = &self.topo;
            self.cache.partition.on_flow_start(
                id.0 as u32,
                route
                    .links
                    .iter()
                    .filter(|l| topo.link(**l).sharing == crate::topology::Sharing::Capacity)
                    .map(|l| l.0),
            );
        }
        self.flows.push(FlowState {
            route,
            bytes_total: bytes,
            bytes_done: 0.0,
            started: self.now,
            cap,
            finished,
            cancelled: false,
        });
        if finished.is_none() {
            self.active.insert(id.0 as usize);
        }
        self.stats.flows_started += 1;
        if let Some(tel) = &self.telemetry {
            tel.metrics.counter("simnet_flows_started", vec![]).inc();
            tel.tracer.record(
                Event::new(EventKind::FlowStart, self.now.as_micros(), id.0)
                    .with_u64("bytes", bytes)
                    .with_u64("hops", self.flows[id.0 as usize].route.links.len() as u64),
            );
        }
        id
    }

    /// Cancels a flow (it stops consuming bandwidth and will never
    /// complete). No-op if already finished or cancelled.
    pub fn cancel_flow(&mut self, id: FlowId) {
        let f = &mut self.flows[id.0 as usize];
        if f.finished.is_none() && !f.cancelled {
            f.cancelled = true;
            let done = f.bytes_done as u64;
            self.cache.release(&f.route);
            self.active.remove(&(id.0 as usize));
            self.stats.flows_cancelled += 1;
            if let Some(tel) = &self.telemetry {
                tel.metrics.counter("simnet_flows_cancelled", vec![]).inc();
                tel.tracer.record(
                    Event::new(EventKind::FlowCancel, self.now.as_micros(), id.0)
                        .with_u64("bytes_done", done),
                );
            }
        }
    }

    /// Bytes transferred so far by a flow.
    pub fn flow_progress(&self, id: FlowId) -> u64 {
        self.flows[id.0 as usize].bytes_done as u64
    }

    /// Completion record of a flow, if it has finished.
    pub fn completion(&self, id: FlowId) -> Option<CompletedFlow> {
        let f = &self.flows[id.0 as usize];
        f.finished.map(|finished| CompletedFlow {
            id,
            bytes: f.bytes_total,
            started: f.started,
            finished,
        })
    }

    /// True if a flow is still transferring.
    pub fn is_active(&self, id: FlowId) -> bool {
        let f = &self.flows[id.0 as usize];
        f.finished.is_none() && !f.cancelled
    }

    fn active_indices(&self) -> Vec<usize> {
        self.active.iter().copied().collect()
    }

    /// Assembles the fair-share problem **from scratch**: the
    /// brute-force path the engine used before the incremental caches
    /// existed, kept verbatim as the reference. Returns `(link caps,
    /// flows)` in dense slot order; [`EngineMode::Reference`] solves it
    /// with the naive oracle every boundary, and the diagnostic
    /// allocation accessor solves it with [`max_min_rates`].
    ///
    /// [`Sharing::PerFlow`] links do not couple flows: their process
    /// value folds into each crossing flow's own cap, and they enter the
    /// max–min problem with infinite capacity. [`Sharing::Capacity`]
    /// links are genuinely shared.
    fn scratch_problem(&mut self, active: &[usize]) -> (Vec<f64>, Vec<AllocFlow>) {
        use crate::topology::Sharing;
        let t = self.now;
        // Snapshot rates only for links in use; large scenarios have
        // thousands of links but a handful carry active flows.
        let mut in_use: Vec<usize> = active
            .iter()
            .flat_map(|&i| self.flows[i].route.links.iter().map(|l| l.0 as usize))
            .collect();
        in_use.sort_unstable();
        in_use.dedup();
        // Dense remap: link index -> slot in the fair-share problem.
        // Precomputed table, not a binary search per lookup — routes
        // touch every link once per flow, so the old O(log n) probe per
        // hop dominated wide scenarios.
        let mut slot = vec![usize::MAX; self.topo.link_count()];
        for (k, &l) in in_use.iter().enumerate() {
            slot[l] = k;
        }
        let slot_of = |l: usize| slot[l];
        let factors: Vec<f64> = in_use.iter().map(|&l| self.fault_factor(l)).collect();
        let rates: Vec<f64> = in_use
            .iter()
            .enumerate()
            .map(|(k, &l)| self.procs[l].rate_at(t) * factors[k])
            .collect();
        let caps: Vec<f64> = in_use
            .iter()
            .enumerate()
            .map(|(k, &l)| match self.topo.link(LinkId(l as u32)).sharing {
                Sharing::Capacity => rates[k],
                Sharing::PerFlow => f64::INFINITY,
            })
            .collect();
        let alloc_flows: Vec<AllocFlow> = active
            .iter()
            .map(|&i| {
                let f = &mut self.flows[i];
                let age = t - f.started;
                let mut cap = f.cap.cap(age, f.bytes_done as u64);
                for l in &f.route.links {
                    if self.topo.link(*l).sharing == Sharing::PerFlow {
                        cap = cap.min(rates[slot_of(l.0 as usize)]);
                    }
                }
                AllocFlow {
                    links: f
                        .route
                        .links
                        .iter()
                        .map(|l| slot_of(l.0 as usize))
                        .collect(),
                    cap,
                }
            })
            .collect();
        (caps, alloc_flows)
    }

    /// Re-queries link `l`'s process at the current time, caching the
    /// raw rate and the segment end, and arms the change heap.
    fn refresh_link_rate(&mut self, l: usize) {
        let t = self.now;
        self.cache.raw_rate[l] = self.procs[l].rate_at(t);
        match self.procs[l].next_change_after(t) {
            Some(until) => {
                debug_assert!(until > t, "rate change not in the future");
                self.cache.rate_until[l] = until;
                self.cache.change_heap.push(Reverse((until, l as u32)));
            }
            None => self.cache.rate_until[l] = SimTime::MAX,
        }
    }

    /// Records a full max–min solve in stats and telemetry (both engine
    /// modes).
    fn note_full_solve(&mut self, active_flows: usize) {
        self.stats.full_solves += 1;
        if let Some(tel) = &self.telemetry {
            tel.metrics.counter("simnet_recomputes", vec![]).inc();
            tel.tracer.record(
                Event::new(EventKind::FairShareRecompute, self.now.as_micros(), 0)
                    .with_u64("active_flows", active_flows as u64),
            );
        }
    }

    /// The incremental engine's allocation at the current instant.
    ///
    /// Bit-identical to solving [`Network::scratch_problem`] by
    /// construction: every cached quantity is refreshed the moment it
    /// can differ from the scratch value (see the [`EngineCache`]
    /// invalidation rules), cached values are compared **bitwise**
    /// against fresh ones, and the solve is skipped only when every
    /// solver input is bitwise unchanged from the cached solution's —
    /// in which case re-solving (a pure function) would reproduce the
    /// cached output exactly.
    fn incremental_rates(&mut self, active: &[usize]) -> Vec<f64> {
        use crate::topology::Sharing;
        let t = self.now;
        // Did any solver input change since the cached solution?
        let mut changed = false;
        // Flow membership changes imply slot-map changes were flagged
        // together (acquire/release set both).
        debug_assert!(!self.cache.links_dirty || self.cache.flows_dirty);

        let rebuilt = self.cache.links_dirty;
        if rebuilt {
            // Rebuild the dense slot map from the refcounts (ascending,
            // matching the scratch path's sort+dedup).
            self.cache.links_dirty = false;
            self.cache.in_use.clear();
            for l in 0..self.cache.link_refs.len() {
                if self.cache.link_refs[l] > 0 {
                    self.cache.in_use.push(l as u32);
                }
            }
            for s in self.cache.slot_of.iter_mut() {
                *s = NO_SLOT;
            }
            for k in 0..self.cache.in_use.len() {
                self.cache.slot_of[self.cache.in_use[k] as usize] = k as u32;
            }
            // Capacity-shared subset: the links the solver slab holds
            // (PerFlow links fold into flow caps and never enter it).
            self.cache.cap_in_use.clear();
            for s in self.cache.cap_slot_of.iter_mut() {
                *s = NO_SLOT;
            }
            for k in 0..self.cache.in_use.len() {
                let l = self.cache.in_use[k];
                if self.topo.link(LinkId(l)).sharing == Sharing::Capacity {
                    self.cache.cap_slot_of[l as usize] = self.cache.cap_in_use.len() as u32;
                    self.cache.cap_in_use.push(l);
                }
            }
            for k in 0..self.cache.in_use.len() {
                let l = self.cache.in_use[k] as usize;
                if t >= self.cache.rate_until[l] {
                    self.refresh_link_rate(l);
                } else if self.cache.rate_until[l] != SimTime::MAX {
                    // The heap entry for this still-valid segment may
                    // have been discarded while the link was out of
                    // use; re-arm (duplicates are harmless).
                    self.cache
                        .change_heap
                        .push(Reverse((self.cache.rate_until[l], l as u32)));
                }
            }
        } else {
            // Refresh exactly the links whose cached segment expired.
            while let Some(&Reverse((at, l))) = self.cache.change_heap.peek() {
                if at > t {
                    break;
                }
                self.cache.change_heap.pop();
                let lu = l as usize;
                if self.cache.link_refs[lu] == 0 || self.cache.rate_until[lu] != at {
                    continue; // stale entry
                }
                self.refresh_link_rate(lu);
                let eff = self.cache.raw_rate[lu] * self.fault_factor(lu);
                if eff.to_bits() != self.cache.eff_rate[lu].to_bits() {
                    self.cache.eff_rate[lu] = eff;
                    // A PerFlow link reaches the solver only through
                    // the folded per-flow caps (compared below); its
                    // own problem capacity is a constant ∞. Only a
                    // Capacity link's rate is a solver input directly.
                    if self.topo.link(LinkId(l)).sharing == Sharing::Capacity {
                        changed = true;
                    }
                }
            }
        }

        if rebuilt || self.cache.faults_fired {
            // Fault factors may have moved under any in-use link (and a
            // rebuilt slot map has no effective rates yet). The factor
            // is a few array loads, so re-derive wholesale.
            for k in 0..self.cache.in_use.len() {
                let l = self.cache.in_use[k] as usize;
                let eff = self.cache.raw_rate[l] * self.fault_factor(l);
                if eff.to_bits() != self.cache.eff_rate[l].to_bits() {
                    self.cache.eff_rate[l] = eff;
                    if self.topo.link(LinkId(l as u32)).sharing == Sharing::Capacity {
                        changed = true;
                    }
                }
            }
        }
        self.cache.faults_fired = false;

        if self.cache.flows_dirty {
            self.cache.flows_dirty = false;
            self.cache.have_solution = false;
            self.cache.prob.flow_off.clear();
            self.cache.prob.flow_off.push(0);
            self.cache.prob.flow_links.clear();
            self.cache.fold_off.clear();
            self.cache.fold_off.push(0);
            self.cache.fold_links.clear();
            self.cache.active_slots.clear();
            for &i in active {
                self.cache.active_slots.push(i as u32);
                for l in &self.flows[i].route.links {
                    match self.topo.link(*l).sharing {
                        Sharing::Capacity => self
                            .cache
                            .prob
                            .flow_links
                            .push(self.cache.cap_slot_of[l.0 as usize]),
                        Sharing::PerFlow => self.cache.fold_links.push(l.0),
                    }
                }
                self.cache
                    .prob
                    .flow_off
                    .push(self.cache.prob.flow_links.len() as u32);
                self.cache.fold_off.push(self.cache.fold_links.len() as u32);
            }
            self.cache.prob.flow_cap.clear();
            self.cache.prob.flow_cap.resize(active.len(), f64::NAN);
        }

        // Folded per-flow caps are re-queried every boundary: caps are
        // allowed to depend on flow age and progress, both of which
        // advance each step. (Each flow's own cap object sees the same
        // per-flow query sequence as the scratch path regardless of how
        // the work is chunked, so stateful cap implementations stay
        // deterministic.)
        let nchunks = par_chunk_count(self.mode, active.len());
        let per = active.len().div_ceil(nchunks.max(1)).max(1);
        {
            let EngineCache {
                fold_off,
                fold_links,
                eff_rate,
                prob,
                ..
            } = &mut self.cache;
            let fold_off = &fold_off[..];
            let fold_links = &fold_links[..];
            let eff_rate = &eff_rate[..];
            let chunks = chunk_active(&mut self.flows, active, per);
            let caps_chunks = prob.flow_cap.chunks_mut(per);
            let results: Vec<bool> = if nchunks <= 1 {
                chunks
                    .into_iter()
                    .zip(caps_chunks)
                    .map(|(mut ch, caps)| {
                        fold_caps_chunk(&mut ch, caps, fold_off, fold_links, eff_rate, t)
                    })
                    .collect()
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .zip(caps_chunks)
                        .map(|(mut ch, caps)| {
                            s.spawn(move || {
                                fold_caps_chunk(&mut ch, caps, fold_off, fold_links, eff_rate, t)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("fold worker panicked"))
                        .collect()
                })
            };
            changed |= results.into_iter().any(|c| c);
        }

        if self.cache.have_solution && !changed {
            // Provably nothing the solver sees moved (e.g. a PerFlow
            // link's process change that left every folded cap
            // bitwise identical): reuse the allocation.
            self.stats.incremental_solves += 1;
            if let Some(tel) = &self.telemetry {
                tel.metrics.counter("simnet_solve_skips", vec![]).inc();
            }
            return self.cache.solution.clone();
        }

        let nf = active.len();

        // Slab link capacities are the cached effective rates of the
        // in-use Capacity links.
        let mut all_finite = true;
        {
            let EngineCache {
                prob,
                cap_in_use,
                eff_rate,
                ..
            } = &mut self.cache;
            prob.link_cap.clear();
            for &l in cap_in_use.iter() {
                let e = eff_rate[l as usize];
                all_finite &= e.is_finite();
                prob.link_cap.push(e);
            }
        }
        if !all_finite {
            // Degenerate: an in-use Capacity link with a non-finite
            // effective rate. The solver drops such links from the
            // problem entirely (they cannot saturate), which also
            // changes the component structure, so take the generic path
            // — the exact arithmetic the reference engine runs.
            let caps: Vec<f64> = self
                .cache
                .in_use
                .iter()
                .map(|&l| match self.topo.link(LinkId(l)).sharing {
                    Sharing::Capacity => self.cache.eff_rate[l as usize],
                    Sharing::PerFlow => f64::INFINITY,
                })
                .collect();
            let alloc_flows: Vec<AllocFlow> = active
                .iter()
                .enumerate()
                .map(|(k, &i)| AllocFlow {
                    links: self.flows[i]
                        .route
                        .links
                        .iter()
                        .map(|l| self.cache.slot_of[l.0 as usize] as usize)
                        .collect(),
                    cap: self.cache.prob.flow_cap[k],
                })
                .collect();
            let rates = max_min_rates(&caps, &alloc_flows);
            self.note_full_solve(nf);
            self.cache.solution.clone_from(&rates);
            self.cache.have_solution = true;
            return rates;
        }

        // Partition upkeep: arrivals were folded in incrementally;
        // departures marked the union–find dirty and are repaired here
        // with one rebuild over the live membership.
        if self.cache.partition.is_dirty() {
            let flows = &self.flows;
            let topo = &self.topo;
            let part = &mut self.cache.partition;
            part.begin_rebuild();
            for &i in active {
                part.rebuild_flow(
                    i as u32,
                    flows[i]
                        .route
                        .links
                        .iter()
                        .filter(|l| topo.link(**l).sharing == Sharing::Capacity)
                        .map(|l| l.0),
                );
            }
            if let Some(tel) = &self.telemetry {
                tel.metrics
                    .counter("simnet_partition_rebuilds", vec![])
                    .inc();
                tel.tracer.record(Event::new(
                    EventKind::PartitionRebuild,
                    t.as_micros(),
                    nf as u64,
                ));
            }
        }
        let ncomp;
        {
            let EngineCache {
                partition,
                active_slots,
                cap_in_use,
                comps,
                ..
            } = &mut self.cache;
            partition.components_into(active_slots, cap_in_use, comps);
            ncomp = comps.count();
        }
        self.stats.component_solves += ncomp as u64;

        // The slab path bypasses `max_min_rates`' input validation; keep
        // its contract (same panics on bad caps). Non-finite link rates
        // took the fallback above, so only NaN/negative checks remain.
        for &c in &self.cache.prob.flow_cap {
            assert!(c >= 0.0 && !c.is_nan(), "bad flow cap {c}");
        }
        for &c in &self.cache.prob.link_cap {
            assert!(c >= 0.0, "bad link capacity {c}");
        }

        let nworkers = par_chunk_count(self.mode, nf).min(ncomp.max(1));
        {
            let EngineCache {
                prob,
                comps,
                workers,
                solution,
                ..
            } = &mut self.cache;
            let nl = prob.link_cap.len();
            solution.clear();
            solution.resize(nf, 0.0);
            if workers.len() < nworkers.max(1) {
                workers.resize(nworkers.max(1), WorkerScratch::default());
            }
            if nworkers <= 1 {
                let w = &mut workers[0];
                w.resize(nf, nl);
                for c in 0..ncomp {
                    crate::soa::solve_component(
                        prob,
                        comps.comp_flows(c),
                        comps.comp_links(c),
                        &mut w.frozen,
                        &mut w.residual,
                        &mut w.active_on,
                        solution,
                    );
                }
            } else {
                // Split components into ≤ nworkers contiguous ranges of
                // roughly equal total flows. Each worker solves its
                // components on private scratch; component flow sets are
                // disjoint, so the scatter below writes each slot once.
                let ranges = crate::partition::split_component_ranges(comps, nf, nworkers);
                let prob = &*prob;
                let comps = &*comps;
                std::thread::scope(|s| {
                    let mut handles = Vec::new();
                    for (w, &(r0, r1)) in workers.iter_mut().zip(&ranges) {
                        w.resize(nf, nl);
                        handles.push(s.spawn(move || {
                            for c in r0..r1 {
                                crate::soa::solve_component(
                                    prob,
                                    comps.comp_flows(c),
                                    comps.comp_links(c),
                                    &mut w.frozen,
                                    &mut w.residual,
                                    &mut w.active_on,
                                    &mut w.rate,
                                );
                            }
                        }));
                    }
                    for h in handles {
                        h.join().expect("solve worker panicked");
                    }
                });
                // Deterministic merge: scatter per-worker rates back in
                // stable component order (the loom model test permutes
                // worker completion order over this exact helper).
                let rate_slices: Vec<&[f64]> = workers.iter().map(|w| w.rate.as_slice()).collect();
                crate::partition::merge_component_rates(comps, &ranges, &rate_slices, solution);
            }
        }
        let rates = self.cache.solution.clone();
        self.note_full_solve(nf);
        self.cache.have_solution = true;
        if let Some(tel) = &self.telemetry {
            tel.metrics
                .counter("simnet_component_solves", vec![])
                .add(ncomp as u64);
        }
        rates
    }

    /// Advances simulated time by **one boundary** — to the earliest of
    /// a link-rate change, a flow cap change, a flow completion, or
    /// `until` — and returns the completions that occurred exactly at
    /// the new time (simultaneous completions are ordered by flow id).
    fn advance_one_boundary(&mut self, until: SimTime) -> Vec<CompletedFlow> {
        debug_assert!(until >= self.now);
        self.stats.boundaries += 1;
        if let Some(tel) = &self.telemetry {
            tel.metrics.counter("simnet_boundaries", vec![]).inc();
        }
        self.apply_due_faults();
        let active = self.active_indices();
        if active.is_empty() {
            self.last_rates.clear();
            // Stop at the next fault event so its application time (and
            // telemetry timestamp) stays exact even while idle.
            self.now = match self.next_fault_time() {
                Some(t) if t < until => t,
                _ => until,
            };
            return Vec::new();
        }
        let rates = match self.mode {
            EngineMode::Incremental | EngineMode::Sharded { .. } => self.incremental_rates(&active),
            EngineMode::Reference => {
                let (caps, alloc_flows) = self.scratch_problem(&active);
                let rates = crate::fairshare::reference_rates(&caps, &alloc_flows);
                self.note_full_solve(active.len());
                rates
            }
        };
        self.last_rates.clear();
        self.last_rates.extend(
            active
                .iter()
                .zip(&rates)
                .map(|(&i, &r)| (FlowId(i as u64), r)),
        );

        let t = self.now;
        let mut boundary = until;
        // Earliest upcoming link-rate change among in-use links.
        match self.mode {
            EngineMode::Incremental | EngineMode::Sharded { .. } => {
                // The change heap's first *valid* entry is the earliest
                // cached segment end; stale entries (superseded
                // refreshes, out-of-use links) are discarded on the
                // way. Entries at or before `now` were consumed by the
                // allocation above.
                while let Some(&Reverse((at, l))) = self.cache.change_heap.peek() {
                    let lu = l as usize;
                    if self.cache.link_refs[lu] == 0 || self.cache.rate_until[lu] != at {
                        self.cache.change_heap.pop();
                        continue;
                    }
                    debug_assert!(at > t, "unconsumed due rate change");
                    boundary = boundary.min(at);
                    break;
                }
            }
            EngineMode::Reference => {
                let mut in_use = std::collections::BTreeSet::new();
                for &i in &active {
                    for l in &self.flows[i].route.links {
                        in_use.insert(l.0 as usize);
                    }
                }
                for &l in &in_use {
                    if let Some(ch) = self.procs[l].next_change_after(t) {
                        boundary = boundary.min(ch);
                    }
                }
            }
        }
        // Per-flow boundary candidates: each flow's next cap change and
        // projected completion. Chunked for the sharded engine;
        // `SimTime` minima are integer, so folding per-chunk results in
        // chunk order is exact regardless of the split.
        let nchunks = par_chunk_count(self.mode, active.len());
        let per = active.len().div_ceil(nchunks.max(1)).max(1);
        {
            let rates = &rates[..];
            let chunks = chunk_active(&mut self.flows, &active, per);
            let mins: Vec<SimTime> = if nchunks <= 1 {
                chunks
                    .into_iter()
                    .map(|mut ch| flow_boundary_chunk(&mut ch, rates, t, until))
                    .collect()
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|mut ch| {
                            s.spawn(move || flow_boundary_chunk(&mut ch, rates, t, until))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("boundary worker panicked"))
                        .collect()
                })
            };
            for m in mins {
                boundary = boundary.min(m);
            }
        }
        // A scheduled fault is a rate-change boundary like any other
        // (events at or before `now` were applied above, so any pending
        // one is strictly in the future).
        if let Some(fault_at) = self.next_fault_time() {
            boundary = boundary.min(fault_at);
        }
        // Guarantee progress even if a process reports a change at `now`
        // (should not happen; defensive).
        if boundary <= self.now {
            boundary = self.now + SimDuration::from_micros(1);
        }
        let dt = (boundary - self.now).as_secs_f64();

        // Integrate progress (chunked like the scan above) and collect
        // completions at `boundary`. Completion side effects — release,
        // active-set removal, stats — run sequentially afterwards in
        // ascending flow order, identical to the sequential engines.
        let completed: Vec<usize> = {
            let rates = &rates[..];
            let chunks = chunk_active(&mut self.flows, &active, per);
            let parts: Vec<Vec<usize>> = if nchunks <= 1 {
                chunks
                    .into_iter()
                    .map(|mut ch| integrate_chunk(&mut ch, rates, dt))
                    .collect()
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|mut ch| s.spawn(move || integrate_chunk(&mut ch, rates, dt)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("integrate worker panicked"))
                        .collect()
                })
            };
            parts.into_iter().flatten().collect()
        };
        let mut done = Vec::new();
        for i in completed {
            let f = &mut self.flows[i];
            f.finished = Some(boundary);
            self.cache.release(&f.route);
            self.active.remove(&i);
            self.stats.flows_completed += 1;
            done.push(CompletedFlow {
                id: FlowId(i as u64),
                bytes: f.bytes_total,
                started: f.started,
                finished: boundary,
            });
        }
        self.now = boundary;
        if let Some(tel) = &self.telemetry {
            for c in &done {
                let dur = (c.finished - c.started).as_micros();
                tel.metrics.counter("simnet_flows_completed", vec![]).inc();
                tel.metrics
                    .histogram("simnet_flow_duration_us", vec![])
                    .record(dur);
                tel.tracer.record(
                    Event::span(EventKind::FlowComplete, c.started.as_micros(), dur, c.id.0)
                        .with_u64("bytes", c.bytes),
                );
            }
        }
        done
    }

    /// `(flow, rate)` pairs integrated over the most recent boundary
    /// step, in ascending flow order (empty before the first step or
    /// when the step found no active flows). The differential suite
    /// compares these bitwise across engine modes.
    pub fn last_boundary_rates(&self) -> &[(FlowId, f64)] {
        &self.last_rates
    }

    /// Advances simulated time by exactly one boundary, bounded by
    /// `until`, and returns the completions at the new time. A no-op
    /// when the clock is already at `until`. This is the
    /// boundary-by-boundary stepper the differential suite uses to
    /// compare engines mid-run; [`Network::advance_until`] is the
    /// normal driving loop.
    ///
    /// # Panics
    ///
    /// Panics if `until` is before the current time.
    pub fn step_boundary(&mut self, until: SimTime) -> Vec<CompletedFlow> {
        assert!(until >= self.now, "advance into the past");
        if self.now >= until {
            return Vec::new();
        }
        self.advance_one_boundary(until)
    }

    /// Advances simulated time to `until`, returning completions in
    /// order of occurrence.
    ///
    /// # Panics
    ///
    /// Panics if `until` is before the current time.
    pub fn advance_until(&mut self, until: SimTime) -> Vec<CompletedFlow> {
        assert!(until >= self.now, "advance into the past");
        let mut done = Vec::new();
        while self.now < until {
            done.extend(self.advance_one_boundary(until));
        }
        done
    }

    /// Advances until the given flow completes or `horizon` passes.
    /// Returns the completion record, or `None` on timeout or if the
    /// flow was cancelled. Time stops exactly at the completion instant.
    pub fn run_flow(&mut self, id: FlowId, horizon: SimTime) -> Option<CompletedFlow> {
        if let Some(c) = self.completion(id) {
            return Some(c);
        }
        while self.now < horizon {
            if !self.is_active(id) {
                return None; // cancelled
            }
            let completions = self.advance_one_boundary(horizon);
            if let Some(c) = completions.into_iter().find(|c| c.id == id) {
                return Some(c);
            }
        }
        self.completion(id)
    }

    /// Advances until **any** of `ids` completes or `horizon` passes.
    /// Returns the first completion among them (simultaneous completions
    /// resolve to the lowest flow id, deterministically). Time stops
    /// exactly at the winning completion instant, so the caller can
    /// cancel the losers at the moment the race is decided — the probe
    /// protocol in `ir-core` relies on this.
    pub fn run_until_first_of(
        &mut self,
        ids: &[FlowId],
        horizon: SimTime,
    ) -> Option<CompletedFlow> {
        // One of them may already be done.
        if let Some(c) = self.earliest_completion_of(ids) {
            return Some(c);
        }
        while self.now < horizon {
            if ids.iter().all(|&id| !self.is_active(id)) {
                return None;
            }
            let completions = self.advance_one_boundary(horizon);
            let mut hits: Vec<CompletedFlow> = completions
                .into_iter()
                .filter(|c| ids.contains(&c.id))
                .collect();
            if !hits.is_empty() {
                hits.sort_by_key(|c| (c.finished, c.id));
                return Some(hits[0]);
            }
        }
        None
    }

    fn earliest_completion_of(&self, ids: &[FlowId]) -> Option<CompletedFlow> {
        ids.iter()
            .filter_map(|&id| self.completion(id))
            .min_by_key(|c| (c.finished, c.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::{ConstantProcess, PiecewiseProcess};
    use crate::topology::{NodeKind, Topology};

    /// client --L0--> server, client --L1--> mid --L2--> server
    fn diamond(rates: [f64; 3]) -> (Network, Route, Route) {
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let m = t.add_node("m", NodeKind::Intermediate);
        let s = t.add_node("s", NodeKind::Server);
        let l0 = t.add_link(c, s, SimDuration::from_millis(40));
        let l1 = t.add_link(c, m, SimDuration::from_millis(20));
        let l2 = t.add_link(m, s, SimDuration::from_millis(10));
        let direct = t.route(&[c, s]).unwrap();
        let indirect = t.route(&[c, m, s]).unwrap();
        let mut net = Network::new(t, 1e9);
        net.set_link_process(l0, Box::new(ConstantProcess::new(rates[0])));
        net.set_link_process(l1, Box::new(ConstantProcess::new(rates[1])));
        net.set_link_process(l2, Box::new(ConstantProcess::new(rates[2])));
        (net, direct, indirect)
    }

    #[test]
    fn single_flow_finishes_at_expected_time() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let id = net.start_flow(direct, 10_000, Box::new(NoCap));
        let c = net.run_flow(id, SimTime::from_secs(100)).unwrap();
        // 10k bytes at 1000 B/s = 10 s.
        assert!((c.finished.as_secs_f64() - 10.0).abs() < 1e-3);
        assert!((c.throughput() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn indirect_flow_limited_by_min_link() {
        let (mut net, _, indirect) = diamond([1.0, 500.0, 2000.0]);
        let id = net.start_flow(indirect, 5_000, Box::new(NoCap));
        let c = net.run_flow(id, SimTime::from_secs(100)).unwrap();
        assert!((c.throughput() - 500.0).abs() < 1.0);
    }

    #[test]
    fn const_cap_binds() {
        let (mut net, direct, _) = diamond([1e6, 1.0, 1.0]);
        let id = net.start_flow(direct, 10_000, Box::new(ConstCap(100.0)));
        let c = net.run_flow(id, SimTime::from_secs(1000)).unwrap();
        assert!((c.throughput() - 100.0).abs() < 0.5);
    }

    #[test]
    fn concurrent_flows_share_access_link() {
        // Both routes leave the client; here we make them share L0 by
        // running two flows on the same direct route.
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let a = net.start_flow(direct.clone(), 10_000, Box::new(NoCap));
        let b = net.start_flow(direct, 10_000, Box::new(NoCap));
        let done = net.advance_until(SimTime::from_secs(25));
        assert_eq!(done.len(), 2);
        // Each got ~500 B/s → ~20 s.
        for c in &done {
            assert!((c.finished.as_secs_f64() - 20.0).abs() < 1e-2, "{c:?}");
        }
        assert!(net.completion(a).is_some());
        assert!(net.completion(b).is_some());
    }

    #[test]
    fn flow_speeds_up_when_competitor_finishes() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let _a = net.start_flow(direct.clone(), 5_000, Box::new(NoCap));
        let b = net.start_flow(direct, 10_000, Box::new(NoCap));
        // Shared till a finishes at t=10 (each 500 B/s, a needs 5000).
        // Then b has 5000 left at 1000 B/s → finishes at t=15.
        let c = net.run_flow(b, SimTime::from_secs(100)).unwrap();
        assert!((c.finished.as_secs_f64() - 15.0).abs() < 1e-2, "{c:?}");
    }

    #[test]
    fn piecewise_rate_change_mid_flow() {
        let (mut net, direct, _) = diamond([1.0, 1.0, 1.0]);
        // Override L0: 100 B/s for 10 s, then 900 B/s.
        let l0 = net
            .topology()
            .link_between(
                net.topology().node_by_name("c").unwrap(),
                net.topology().node_by_name("s").unwrap(),
            )
            .unwrap();
        net.set_link_process(
            l0,
            Box::new(PiecewiseProcess::new(vec![
                (SimTime::ZERO, 100.0),
                (SimTime::from_secs(10), 900.0),
            ])),
        );
        let id = net.start_flow(direct, 10_000, Box::new(NoCap));
        // 1000 bytes in first 10 s, then 9000 at 900 B/s → 10 more s.
        let c = net.run_flow(id, SimTime::from_secs(100)).unwrap();
        assert!((c.finished.as_secs_f64() - 20.0).abs() < 1e-2, "{c:?}");
    }

    #[test]
    fn run_until_first_of_picks_winner() {
        let (mut net, direct, indirect) = diamond([100.0, 1000.0, 2000.0]);
        let d = net.start_flow(direct, 10_000, Box::new(NoCap));
        let i = net.start_flow(indirect, 10_000, Box::new(NoCap));
        let first = net
            .run_until_first_of(&[d, i], SimTime::from_secs(1000))
            .unwrap();
        assert_eq!(first.id, i, "indirect should win the race");
        // Loser still active.
        assert!(net.is_active(d));
    }

    #[test]
    fn cancel_stops_progress() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let id = net.start_flow(direct, 1_000_000, Box::new(NoCap));
        net.advance_until(SimTime::from_secs(5));
        let p = net.flow_progress(id);
        net.cancel_flow(id);
        net.advance_until(SimTime::from_secs(50));
        assert_eq!(net.flow_progress(id), p);
        assert!(net.completion(id).is_none());
        assert!(!net.is_active(id));
    }

    #[test]
    fn cancelled_flow_releases_bandwidth() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let a = net.start_flow(direct.clone(), 100_000, Box::new(NoCap));
        let b = net.start_flow(direct, 10_000, Box::new(NoCap));
        net.advance_until(SimTime::from_secs(2)); // each at 500 B/s, b has 1000 done
        net.cancel_flow(a);
        let c = net.run_flow(b, SimTime::from_secs(100)).unwrap();
        // b: 1000 done at t=2, 9000 left at 1000 B/s → t=11.
        assert!((c.finished.as_secs_f64() - 11.0).abs() < 1e-2, "{c:?}");
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let id = net.start_flow(direct, 0, Box::new(NoCap));
        let c = net.completion(id).unwrap();
        assert_eq!(c.finished, SimTime::ZERO);
        assert!(c.throughput().is_infinite());
    }

    #[test]
    fn clone_replays_identically() {
        use crate::bandwidth::RegimeSwitchingProcess;
        let (mut net, direct, _) = diamond([1.0, 1.0, 1.0]);
        let l0 = LinkId(0);
        net.set_link_process(
            l0,
            Box::new(RegimeSwitchingProcess::new(
                vec![500.0, 5000.0],
                SimDuration::from_secs(7),
                0.3,
                99,
            )),
        );
        let mut replica = net.clone();
        let a = net.start_flow(direct.clone(), 50_000, Box::new(NoCap));
        let b = replica.start_flow(direct, 50_000, Box::new(NoCap));
        let ca = net.run_flow(a, SimTime::from_secs(10_000)).unwrap();
        let cb = replica.run_flow(b, SimTime::from_secs(10_000)).unwrap();
        assert_eq!(ca.finished, cb.finished);
    }

    #[test]
    fn advance_past_horizon_panics() {
        let (mut net, _, _) = diamond([1.0, 1.0, 1.0]);
        net.advance_until(SimTime::from_secs(5));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.advance_until(SimTime::from_secs(1));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn per_flow_links_do_not_couple_flows() {
        use crate::topology::Sharing;
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let s = t.add_node("s", NodeKind::Server);
        let l = t.add_link_shared(c, s, SimDuration::from_millis(10), Sharing::PerFlow);
        let route = t.route(&[c, s]).unwrap();
        let mut net = Network::new(t, 1.0);
        net.set_link_process(l, Box::new(ConstantProcess::new(1000.0)));
        // Two concurrent flows EACH get the full 1000 B/s.
        let a = net.start_flow(route.clone(), 10_000, Box::new(NoCap));
        let b = net.start_flow(route, 10_000, Box::new(NoCap));
        let done = net.advance_until(SimTime::from_secs(30));
        assert_eq!(done.len(), 2);
        for cfl in &done {
            assert!(
                (cfl.finished.as_secs_f64() - 10.0).abs() < 1e-2,
                "{cfl:?} should finish at ~10s (uncoupled)"
            );
        }
        let _ = (a, b);
    }

    #[test]
    fn capacity_and_per_flow_links_compose_on_one_route() {
        use crate::topology::Sharing;
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Client);
        let m = t.add_node("m", NodeKind::Intermediate);
        let s = t.add_node("s", NodeKind::Server);
        // Access link: hard capacity 1000. Wide link: per-flow 800.
        let acc = t.add_link(c, m, SimDuration::from_millis(1));
        let wide = t.add_link_shared(m, s, SimDuration::from_millis(10), Sharing::PerFlow);
        let route = t.route(&[c, m, s]).unwrap();
        let mut net = Network::new(t, 1.0);
        net.set_link_process(acc, Box::new(ConstantProcess::new(1000.0)));
        net.set_link_process(wide, Box::new(ConstantProcess::new(800.0)));
        // Two flows: each capped at 800 by the wide link, but the access
        // capacity of 1000 is shared → 500 each.
        net.start_flow(route.clone(), 5_000, Box::new(NoCap));
        net.start_flow(route, 5_000, Box::new(NoCap));
        let done = net.advance_until(SimTime::from_secs(30));
        assert_eq!(done.len(), 2);
        for cfl in &done {
            assert!(
                (cfl.finished.as_secs_f64() - 10.0).abs() < 1e-2,
                "{cfl:?} should finish at ~10s (500 B/s each)"
            );
        }
    }

    #[test]
    fn engine_stats_count_lifecycle() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        assert_eq!(net.stats(), EngineStats::default());
        let a = net.start_flow(direct.clone(), 5_000, Box::new(NoCap));
        let b = net.start_flow(direct, 1_000_000, Box::new(NoCap));
        net.run_flow(a, SimTime::from_secs(100));
        net.cancel_flow(b);
        let st = net.stats();
        assert_eq!(st.flows_started, 2);
        assert_eq!(st.flows_completed, 1);
        assert_eq!(st.flows_cancelled, 1);
        assert!(st.boundaries >= 1);
    }

    #[test]
    fn telemetry_observes_without_changing_results() {
        let (mut plain, direct_p, _) = diamond([1000.0, 1.0, 1.0]);
        let (mut traced, direct_t, _) = diamond([1000.0, 1.0, 1.0]);
        let tel = Arc::new(Telemetry::new());
        traced.set_telemetry(Some(tel.clone()));

        let a = plain.start_flow(direct_p.clone(), 10_000, Box::new(NoCap));
        let b = traced.start_flow(direct_t.clone(), 10_000, Box::new(NoCap));
        let ca = plain.run_flow(a, SimTime::from_secs(100)).unwrap();
        let cb = traced.run_flow(b, SimTime::from_secs(100)).unwrap();
        assert_eq!(ca.finished, cb.finished, "telemetry changed the sim");

        let x = traced.start_flow(direct_t, 1_000_000, Box::new(NoCap));
        traced.cancel_flow(x);

        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("simnet_flows_started", &vec![]), Some(2));
        assert_eq!(snap.counter("simnet_flows_completed", &vec![]), Some(1));
        assert_eq!(snap.counter("simnet_flows_cancelled", &vec![]), Some(1));
        let kinds: Vec<EventKind> = tel.tracer.snapshot().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::FlowStart));
        assert!(kinds.contains(&EventKind::FlowComplete));
        assert!(kinds.contains(&EventKind::FlowCancel));
        assert!(kinds.contains(&EventKind::FairShareRecompute));
    }

    #[test]
    fn clones_inherit_the_telemetry_handle() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let tel = Arc::new(Telemetry::new());
        net.set_telemetry(Some(tel.clone()));
        let mut replica = net.clone();
        replica.start_flow(direct, 100, Box::new(NoCap));
        assert_eq!(
            tel.metrics
                .snapshot()
                .counter("simnet_flows_started", &vec![]),
            Some(1),
            "replica reports into the shared registry"
        );
    }

    #[test]
    fn link_outage_stalls_and_recovery_resumes() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        // Outage of the direct link over [5s, 15s): 10 s of dead air.
        let plan =
            FaultPlan::none().link_outage(LinkId(0), SimTime::from_secs(5), SimTime::from_secs(15));
        net.set_fault_plan(&plan);
        let id = net.start_flow(direct, 10_000, Box::new(NoCap));
        // 5 s at 1000 B/s, 10 s stalled, 5 s to finish → t = 20 s.
        let c = net.run_flow(id, SimTime::from_secs(100)).unwrap();
        assert!((c.finished.as_secs_f64() - 20.0).abs() < 1e-2, "{c:?}");
        assert_eq!(net.fault_events_pending(), 0);
    }

    #[test]
    fn brownout_scales_rate() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        // Half rate over [0s, 10s): 5000 bytes done by t=10, rest at
        // full rate → t = 15 s.
        let plan = FaultPlan::none().brownout(
            LinkId(0),
            SimTime::from_micros(1),
            SimTime::from_secs(10),
            0.5,
        );
        net.set_fault_plan(&plan);
        let id = net.start_flow(direct, 10_000, Box::new(NoCap));
        let c = net.run_flow(id, SimTime::from_secs(100)).unwrap();
        assert!((c.finished.as_secs_f64() - 15.0).abs() < 1e-2, "{c:?}");
    }

    #[test]
    fn node_outage_kills_both_hops() {
        let (mut net, _, indirect) = diamond([1.0, 1000.0, 2000.0]);
        let mid = net.topology().node_by_name("m").unwrap();
        let plan =
            FaultPlan::none().node_outage(mid, SimTime::from_secs(2), SimTime::from_secs(100));
        net.set_fault_plan(&plan);
        let id = net.start_flow(indirect, 1_000_000, Box::new(NoCap));
        net.advance_until(SimTime::from_secs(50));
        let p = net.flow_progress(id);
        assert!(p < 5_000, "crashed relay should stop the flow, got {p}");
        assert!(net.link_is_down(LinkId(1)));
        assert!(net.link_is_down(LinkId(2)));
        assert!(!net.link_is_down(LinkId(0)));
        assert_eq!(net.effective_link_rate_now(LinkId(1)), 0.0);
    }

    #[test]
    fn empty_plan_is_a_true_noop() {
        let (mut plain, direct_p, _) = diamond([1000.0, 1.0, 1.0]);
        let (mut nulled, direct_n, _) = diamond([1000.0, 1.0, 1.0]);
        nulled.set_fault_plan(&FaultPlan::none());
        let a = plain.start_flow(direct_p, 10_000, Box::new(NoCap));
        let b = nulled.start_flow(direct_n, 10_000, Box::new(NoCap));
        let ca = plain.run_flow(a, SimTime::from_secs(100)).unwrap();
        let cb = nulled.run_flow(b, SimTime::from_secs(100)).unwrap();
        assert_eq!(ca.finished, cb.finished);
        assert_eq!(plain.stats(), nulled.stats(), "even boundary counts match");
    }

    #[test]
    fn faulted_clone_replays_identically() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let plan = FaultPlan::none()
            .link_outage(LinkId(0), SimTime::from_secs(3), SimTime::from_secs(9))
            .brownout(
                LinkId(0),
                SimTime::from_secs(12),
                SimTime::from_secs(14),
                0.25,
            );
        net.set_fault_plan(&plan);
        let mut replica = net.clone();
        let a = net.start_flow(direct.clone(), 20_000, Box::new(NoCap));
        let b = replica.start_flow(direct, 20_000, Box::new(NoCap));
        let ca = net.run_flow(a, SimTime::from_secs(1000)).unwrap();
        let cb = replica.run_flow(b, SimTime::from_secs(1000)).unwrap();
        assert_eq!(ca.finished, cb.finished);
    }

    #[test]
    fn fault_telemetry_reports_scheduled_times() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let tel = Arc::new(Telemetry::new());
        net.set_telemetry(Some(tel.clone()));
        let plan =
            FaultPlan::none().link_outage(LinkId(0), SimTime::from_secs(2), SimTime::from_secs(4));
        net.set_fault_plan(&plan);
        let id = net.start_flow(direct, 8_000, Box::new(NoCap));
        net.run_flow(id, SimTime::from_secs(100));
        let faults: Vec<_> = tel
            .tracer
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == EventKind::FaultInjected)
            .collect();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].ts_us, SimTime::from_secs(2).as_micros());
        assert_eq!(faults[1].ts_us, SimTime::from_secs(4).as_micros());
        assert_eq!(
            tel.metrics
                .snapshot()
                .counter("simnet_faults_injected", &vec![]),
            Some(2)
        );
    }

    #[test]
    fn idle_network_still_applies_faults_on_time() {
        let (mut net, _, _) = diamond([1000.0, 1.0, 1.0]);
        let plan =
            FaultPlan::none().link_outage(LinkId(0), SimTime::from_secs(5), SimTime::from_secs(50));
        net.set_fault_plan(&plan);
        // No flows at all; advance across both events.
        net.advance_until(SimTime::from_secs(10));
        assert!(net.link_is_down(LinkId(0)));
        net.advance_until(SimTime::from_secs(60));
        assert!(!net.link_is_down(LinkId(0)));
        assert_eq!(net.fault_events_pending(), 0);
    }

    #[test]
    fn allocation_accessor_reflects_faults() {
        let (mut net, direct, _) = diamond([1000.0, 1.0, 1.0]);
        let plan =
            FaultPlan::none().link_outage(LinkId(0), SimTime::from_secs(1), SimTime::from_secs(2));
        net.set_fault_plan(&plan);
        let id = net.start_flow(direct, 1_000_000, Box::new(NoCap));
        let alloc = net.active_flow_allocation();
        assert_eq!(alloc.len(), 1);
        assert_eq!(alloc[0].0, id);
        assert!((alloc[0].2 - 1000.0).abs() < 1e-9, "pre-outage full rate");
        net.advance_until(SimTime::from_millis(1500));
        let alloc = net.active_flow_allocation();
        assert_eq!(alloc[0].2, 0.0, "rate must drop to zero during outage");
    }

    #[test]
    fn run_flow_times_out_on_stalled_link() {
        let (mut net, direct, _) = diamond([crate::bandwidth::MIN_RATE, 1.0, 1.0]);
        let id = net.start_flow(direct, u32::MAX as u64, Box::new(NoCap));
        let r = net.run_flow(id, SimTime::from_secs(60));
        assert!(r.is_none());
        assert_eq!(net.now(), SimTime::from_secs(60));
    }
}
