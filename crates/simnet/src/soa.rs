//! Struct-of-arrays fair-share problems and the component-wise solver.
//!
//! The engine used to hand the solver one `Vec<AllocFlow>` per boundary
//! — a heap allocation per flow per solve, and one *global* progressive
//! filling whose round count grows with the number of distinct freeze
//! levels across the whole network (quadratic in flows for large
//! independent populations). This module replaces both:
//!
//! * [`ProblemSlab`] — the problem in CSR form: flat capacity / cap
//!   arrays plus one shared `flow_links` arena, reusable across solves
//!   with zero per-flow allocations. Only **finite**-capacity links are
//!   materialised; infinite links are arithmetically inert in
//!   progressive filling (an `∞/n` increment candidate never binds,
//!   `∞ − x` stays `∞`, and the freeze test explicitly skips them), so
//!   dropping them changes no output bit.
//! * [`solve_component`] / [`solve_component_reference`] — progressive
//!   filling restricted to one congestion component
//!   ([`crate::partition`]), streaming over dense index slices. For a
//!   single-component problem the arithmetic sequence is *identical* to
//!   the old global solver's (links ascending, flows ascending, same
//!   `EPS` freeze comparisons), which is what keeps the engine's pinned
//!   goldens stable. Components are mathematically independent, so the
//!   decomposition is exact; solving them separately additionally makes
//!   each flow's rate a pure function of its own component — the
//!   property the sharded engine's determinism rests on.

use crate::fairshare::EPS;
use crate::partition::{Components, UnionFind};

/// A max–min problem in CSR (struct-of-arrays) layout. Flow `f` has cap
/// `flow_cap[f]` and crosses links `flow_links[flow_off[f]..flow_off[f+1]]`
/// (indices into `link_cap`; every entry finite).
#[derive(Debug, Clone, Default)]
pub struct ProblemSlab {
    /// Finite link capacities (bytes/sec).
    pub link_cap: Vec<f64>,
    /// Per-flow rate caps (may be `∞`).
    pub flow_cap: Vec<f64>,
    /// CSR offsets, `len = flows + 1`.
    pub flow_off: Vec<u32>,
    /// CSR link-index arena.
    pub flow_links: Vec<u32>,
}

impl ProblemSlab {
    /// Empties the slab, keeping allocations.
    pub fn clear(&mut self) {
        self.link_cap.clear();
        self.flow_cap.clear();
        self.flow_off.clear();
        self.flow_off.push(0);
        self.flow_links.clear();
    }

    /// Number of flows.
    pub fn flows(&self) -> usize {
        self.flow_cap.len()
    }

    /// Appends a flow (links must index `link_cap`).
    pub fn push_flow(&mut self, cap: f64, links: impl IntoIterator<Item = u32>) {
        if self.flow_off.is_empty() {
            self.flow_off.push(0);
        }
        self.flow_cap.push(cap);
        self.flow_links.extend(links);
        self.flow_off.push(self.flow_links.len() as u32);
    }

    /// Builds a slab from the classic `(link_caps, AllocFlow)` form,
    /// dropping infinite-capacity links (inert; see module docs) and
    /// densely remapping the finite ones.
    pub fn from_alloc(link_caps: &[f64], flows: &[crate::fairshare::AllocFlow]) -> ProblemSlab {
        let mut fin_id = vec![u32::MAX; link_caps.len()];
        let mut slab = ProblemSlab::default();
        slab.flow_off.push(0);
        for (l, &c) in link_caps.iter().enumerate() {
            if c.is_finite() {
                fin_id[l] = slab.link_cap.len() as u32;
                slab.link_cap.push(c);
            }
        }
        for f in flows {
            slab.flow_cap.push(f.cap);
            for &l in &f.links {
                if fin_id[l] != u32::MAX {
                    slab.flow_links.push(fin_id[l]);
                }
            }
            slab.flow_off.push(slab.flow_links.len() as u32);
        }
        slab
    }

    /// Links of flow `f`.
    pub fn links_of(&self, f: usize) -> &[u32] {
        &self.flow_links[self.flow_off[f] as usize..self.flow_off[f + 1] as usize]
    }
}

/// Reusable scratch for decomposed solves (union–find, component
/// layout, per-link residuals, …). One per solver thread.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    /// Union–find used by the from-scratch partitioner.
    pub uf: UnionFind,
    /// The most recent decomposition.
    pub comps: Components,
    /// Per-flow frozen flags (full problem size).
    pub frozen: Vec<bool>,
    /// Per-link residual capacities (full problem size).
    pub residual: Vec<f64>,
    /// Per-link unfrozen-flow counts (full problem size).
    pub active_on: Vec<u32>,
}

impl SolveScratch {
    /// Sizes the per-flow / per-link arrays (contents are initialised
    /// per component by the kernels).
    pub fn resize(&mut self, flows: usize, links: usize) {
        self.frozen.resize(flows, false);
        self.residual.resize(links, 0.0);
        self.active_on.resize(links, 0);
    }
}

/// Solves the whole slab: partitions it into congestion components and
/// runs the production kernel on each, in stable component order. The
/// decomposition is recorded in `scratch.comps` (the engine reads the
/// component count off it). `rates` is fully overwritten.
pub fn solve_slab(slab: &ProblemSlab, scratch: &mut SolveScratch, rates: &mut Vec<f64>) {
    let nf = slab.flows();
    let nl = slab.link_cap.len();
    rates.clear();
    rates.resize(nf, 0.0);
    scratch
        .comps
        .build_csr(nf, nl, &slab.flow_off, &slab.flow_links, &mut scratch.uf);
    scratch.resize(nf, nl);
    for c in 0..scratch.comps.count() {
        solve_component(
            slab,
            scratch.comps.comp_flows(c),
            scratch.comps.comp_links(c),
            &mut scratch.frozen,
            &mut scratch.residual,
            &mut scratch.active_on,
            rates,
        );
    }
}

/// As [`solve_slab`], but with the bookkeeping-free reference kernel —
/// the oracle the differential suites hold the production path to.
pub fn solve_slab_reference(slab: &ProblemSlab, scratch: &mut SolveScratch, rates: &mut Vec<f64>) {
    let nf = slab.flows();
    let nl = slab.link_cap.len();
    rates.clear();
    rates.resize(nf, 0.0);
    scratch
        .comps
        .build_csr(nf, nl, &slab.flow_off, &slab.flow_links, &mut scratch.uf);
    scratch.resize(nf, nl);
    for c in 0..scratch.comps.count() {
        solve_component_reference(
            slab,
            scratch.comps.comp_flows(c),
            scratch.comps.comp_links(c),
            &mut scratch.frozen,
            &mut scratch.residual,
            &mut scratch.active_on,
            rates,
        );
    }
}

/// Progressive filling over one congestion component, with maintained
/// per-link unfrozen counts (the production bookkeeping). Touches only
/// the `comp_flows` / `comp_links` entries of the scratch and output
/// slices, so disjoint components can be solved concurrently on
/// disjoint `&mut` views.
///
/// `comp_flows` and `comp_links` must be ascending (the partitioner
/// guarantees it); the round arithmetic then visits links and flows in
/// exactly the order the old global solver did.
pub fn solve_component(
    slab: &ProblemSlab,
    comp_flows: &[u32],
    comp_links: &[u32],
    frozen: &mut [bool],
    residual: &mut [f64],
    active_on: &mut [u32],
    rate: &mut [f64],
) {
    for &l in comp_links {
        residual[l as usize] = slab.link_cap[l as usize];
        active_on[l as usize] = 0;
    }
    for &f in comp_flows {
        frozen[f as usize] = false;
        rate[f as usize] = 0.0;
        for &l in slab.links_of(f as usize) {
            active_on[l as usize] += 1;
        }
    }
    let mut unfrozen = comp_flows.len();

    while unfrozen > 0 {
        // Largest uniform increment every unfrozen flow can take.
        let mut inc = f64::INFINITY;
        for &l in comp_links {
            if active_on[l as usize] > 0 {
                inc = inc.min(residual[l as usize] / active_on[l as usize] as f64);
            }
        }
        for &f in comp_flows {
            if !frozen[f as usize] {
                inc = inc.min(slab.flow_cap[f as usize] - rate[f as usize]);
            }
        }
        if !inc.is_finite() {
            // Every unfrozen flow in this component crosses no finite
            // link and has an infinite cap; give them "infinite" rate.
            for &f in comp_flows {
                if !frozen[f as usize] {
                    rate[f as usize] = f64::INFINITY;
                }
            }
            break;
        }
        let inc = inc.max(0.0);

        // Apply the increment.
        for &f in comp_flows {
            if frozen[f as usize] {
                continue;
            }
            rate[f as usize] += inc;
            for &l in slab.links_of(f as usize) {
                residual[l as usize] -= inc;
            }
        }

        // Freeze flows that hit their cap or cross a saturated link.
        let mut any_frozen = false;
        for &f in comp_flows {
            if frozen[f as usize] {
                continue;
            }
            let cap = slab.flow_cap[f as usize];
            let cap_hit = rate[f as usize] >= cap - EPS * cap.max(1.0);
            let link_hit = slab
                .links_of(f as usize)
                .iter()
                .any(|&l| residual[l as usize] <= EPS * slab.link_cap[l as usize].max(1.0));
            if cap_hit || link_hit {
                frozen[f as usize] = true;
                any_frozen = true;
                unfrozen -= 1;
                for &l in slab.links_of(f as usize) {
                    active_on[l as usize] -= 1;
                }
            }
        }
        // Safety: if nothing froze despite a finite increment, numerical
        // trouble; freeze the component at current rates rather than
        // spin.
        if !any_frozen && inc <= 0.0 {
            break;
        }
    }
}

/// Progressive filling over one component with **no** incremental
/// bookkeeping: per-link unfrozen counts are recounted from scratch
/// every round. The component-wise analogue of
/// [`crate::fairshare::reference_rates`]'s round loop, kept
/// arithmetically identical to [`solve_component`] so any divergence is
/// a logic bug, never fp noise.
pub fn solve_component_reference(
    slab: &ProblemSlab,
    comp_flows: &[u32],
    comp_links: &[u32],
    frozen: &mut [bool],
    residual: &mut [f64],
    active_on: &mut [u32],
    rate: &mut [f64],
) {
    for &l in comp_links {
        residual[l as usize] = slab.link_cap[l as usize];
    }
    for &f in comp_flows {
        frozen[f as usize] = false;
        rate[f as usize] = 0.0;
    }

    while comp_flows.iter().any(|&f| !frozen[f as usize]) {
        // Recount unfrozen flows per link from scratch.
        for &l in comp_links {
            active_on[l as usize] = 0;
        }
        for &f in comp_flows {
            if !frozen[f as usize] {
                for &l in slab.links_of(f as usize) {
                    active_on[l as usize] += 1;
                }
            }
        }

        let mut inc = f64::INFINITY;
        for &l in comp_links {
            if active_on[l as usize] > 0 {
                inc = inc.min(residual[l as usize] / active_on[l as usize] as f64);
            }
        }
        for &f in comp_flows {
            if !frozen[f as usize] {
                inc = inc.min(slab.flow_cap[f as usize] - rate[f as usize]);
            }
        }
        if !inc.is_finite() {
            for &f in comp_flows {
                if !frozen[f as usize] {
                    rate[f as usize] = f64::INFINITY;
                }
            }
            break;
        }
        let inc = inc.max(0.0);

        for &f in comp_flows {
            if frozen[f as usize] {
                continue;
            }
            rate[f as usize] += inc;
            for &l in slab.links_of(f as usize) {
                residual[l as usize] -= inc;
            }
        }

        let mut any_frozen = false;
        for &f in comp_flows {
            if frozen[f as usize] {
                continue;
            }
            let cap = slab.flow_cap[f as usize];
            let cap_hit = rate[f as usize] >= cap - EPS * cap.max(1.0);
            let link_hit = slab
                .links_of(f as usize)
                .iter()
                .any(|&l| residual[l as usize] <= EPS * slab.link_cap[l as usize].max(1.0));
            if cap_hit || link_hit {
                frozen[f as usize] = true;
                any_frozen = true;
            }
        }
        if !any_frozen && inc <= 0.0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairshare::AllocFlow;

    fn flow(links: &[usize], cap: f64) -> AllocFlow {
        AllocFlow {
            links: links.to_vec(),
            cap,
        }
    }

    #[test]
    fn from_alloc_drops_infinite_links() {
        let slab = ProblemSlab::from_alloc(
            &[5.0, f64::INFINITY, 3.0],
            &[flow(&[0, 1], 9.0), flow(&[1, 2], f64::INFINITY)],
        );
        assert_eq!(slab.link_cap, vec![5.0, 3.0]);
        assert_eq!(slab.links_of(0), &[0]);
        assert_eq!(slab.links_of(1), &[1]);
    }

    #[test]
    fn slab_solve_matches_expected_shares() {
        // Classic: f0 on A+B, f1 on A, f2 on B with A=10, B=4.
        let slab = ProblemSlab::from_alloc(
            &[10.0, 4.0],
            &[
                flow(&[0, 1], f64::INFINITY),
                flow(&[0], f64::INFINITY),
                flow(&[1], f64::INFINITY),
            ],
        );
        let mut scratch = SolveScratch::default();
        let mut rates = Vec::new();
        solve_slab(&slab, &mut scratch, &mut rates);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
        assert!((rates[2] - 2.0).abs() < 1e-9);
        assert_eq!(scratch.comps.count(), 1);
    }

    #[test]
    fn production_and_reference_kernels_agree_bitwise() {
        let slab = ProblemSlab::from_alloc(
            &[5.0, 8.0, 3.0, 12.0, 0.0],
            &[
                flow(&[0, 1], f64::INFINITY),
                flow(&[1, 2], 4.0),
                flow(&[2, 3], f64::INFINITY),
                flow(&[4], f64::INFINITY),
                flow(&[], 7.25),
            ],
        );
        let mut s1 = SolveScratch::default();
        let mut s2 = SolveScratch::default();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        solve_slab(&slab, &mut s1, &mut a);
        solve_slab_reference(&slab, &mut s2, &mut b);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn scratch_reuse_across_solves_is_clean() {
        let mut scratch = SolveScratch::default();
        let mut rates = Vec::new();
        let a = ProblemSlab::from_alloc(&[6.0], &[flow(&[0], 0.0), flow(&[0], f64::INFINITY)]);
        solve_slab(&a, &mut scratch, &mut rates);
        assert!((rates[1] - 6.0).abs() < 1e-6);
        // A second, differently-shaped problem through the same scratch.
        let b = ProblemSlab::from_alloc(&[3.0, 7.0], &[flow(&[0], f64::INFINITY), flow(&[1], 2.0)]);
        solve_slab(&b, &mut scratch, &mut rates);
        assert!((rates[0] - 3.0).abs() < 1e-6);
        assert!((rates[1] - 2.0).abs() < 1e-6);
        assert_eq!(scratch.comps.count(), 2);
    }
}
