//! Deterministic event queue.
//!
//! A binary heap keyed on `(time, seqno)`: events at equal times pop in
//! insertion order, which keeps simulation runs bit-for-bit reproducible
//! for a fixed seed regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with FIFO tie-breaking.
#[derive(Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event only if it is at or before
    /// `t`.
    pub fn pop_until(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= t {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(5), 5);
        assert_eq!(
            q.pop_until(SimTime::from_secs(2)),
            Some((SimTime::from_secs(1), 1))
        );
        assert_eq!(q.pop_until(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_until(SimTime::from_secs(5)),
            Some((SimTime::from_secs(5), 5))
        );
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
