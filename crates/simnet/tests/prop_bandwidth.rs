//! Randomized property tests for bandwidth processes: positivity,
//! determinism, history stability, and boundary consistency.
//!
//! These were proptest-based; the offline build has no proptest, so the
//! same invariants are checked over seeded random case sweeps (every
//! failure reproduces from the printed case seed).

use ir_simnet::bandwidth::{
    Ar1LogProcess, BandwidthProcess, JumpMixProcess, RegimeSwitchingProcess, MIN_RATE,
};
use ir_simnet::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mk_regime(seed: u64, levels: Vec<f64>, hold_s: u64, noise: f64) -> RegimeSwitchingProcess {
    RegimeSwitchingProcess::new(levels, SimDuration::from_secs(hold_s), noise, seed)
}

#[test]
fn regime_rates_positive_and_deterministic() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xB0_0000 + case);
        let seed: u64 = rng.gen();
        let levels: Vec<f64> = (0..rng.gen_range(1..4usize))
            .map(|_| rng.gen_range(1.0..1e7))
            .collect();
        let hold_s = rng.gen_range(1u64..2000);
        let noise = rng.gen_range(0.0..0.8);
        let queries: Vec<u64> = (0..rng.gen_range(1..30usize))
            .map(|_| rng.gen_range(0u64..100_000))
            .collect();

        let mut a = mk_regime(seed, levels.clone(), hold_s, noise);
        let mut b = mk_regime(seed, levels, hold_s, noise);
        for &q in &queries {
            let t = SimTime::from_secs(q);
            let ra = a.rate_at(t);
            assert!(ra >= MIN_RATE, "case {case}: rate below floor");
            assert!(ra.is_finite(), "case {case}: rate not finite");
            assert_eq!(ra, b.rate_at(t), "case {case}: nondeterministic at {q}");
        }
    }
}

#[test]
fn regime_history_is_stable_under_out_of_order_queries() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xB1_0000 + case);
        let seed: u64 = rng.gen();
        let hold_s = rng.gen_range(1u64..500);
        let mut p = mk_regime(seed, vec![1e4, 1e6], hold_s, 0.2);
        // Sample forward, then re-query the same instants after
        // extending far ahead; answers must not change.
        let times: Vec<SimTime> = (0..20).map(|i| SimTime::from_secs(i * 37)).collect();
        let first: Vec<f64> = times.iter().map(|&t| p.rate_at(t)).collect();
        let _ = p.rate_at(SimTime::from_secs(1_000_000));
        let second: Vec<f64> = times.iter().map(|&t| p.rate_at(t)).collect();
        assert_eq!(first, second, "case {case}: history rewritten");
    }
}

#[test]
fn next_change_is_strictly_increasing_and_rate_constant_between() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xB2_0000 + case);
        let seed: u64 = rng.gen();
        let hold_s = rng.gen_range(1u64..300);
        let mut p = mk_regime(seed, vec![5e4, 5e5, 5e6], hold_s, 0.1);
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            let next = p.next_change_after(t).expect("regimes change forever");
            assert!(next > t, "case {case}: boundary not in the future");
            // Rate just before the boundary equals the rate at t.
            let r_t = p.rate_at(t);
            let just_before = SimTime::from_micros(next.as_micros() - 1);
            if just_before > t {
                assert_eq!(p.rate_at(just_before), r_t, "case {case}: rate drifted");
            }
            t = next;
        }
    }
}

#[test]
fn ar1_stays_positive_and_bounded() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xB3_0000 + case);
        let seed: u64 = rng.gen();
        let median = rng.gen_range(1e3..1e7);
        let phi = rng.gen_range(0.0..0.99);
        let sigma = rng.gen_range(0.0..0.3);
        let mut p = Ar1LogProcess::new(median, phi, sigma, SimDuration::from_secs(60), seed);
        for i in 0..200u64 {
            let r = p.rate_at(SimTime::from_secs(i * 60));
            assert!(r >= MIN_RATE, "case {case}: below floor");
            assert!(r.is_finite(), "case {case}: not finite");
            // With stationary log-sigma <= 0.3/sqrt(1-0.98) ≈ 2.1, 8
            // sigmas of slack is astronomically safe.
            assert!(
                r < median * 5e7,
                "case {case}: rate {r} exploded from median {median}"
            );
        }
    }
}

#[test]
fn jump_mix_respects_floor_and_determinism() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xB4_0000 + case);
        let seed: u64 = rng.gen();
        let factor = rng.gen_range(0.05..1.0);
        let mk = || {
            JumpMixProcess::new(
                Box::new(mk_regime(seed, vec![1e5], 100, 0.1)),
                SimDuration::from_secs(200),
                SimDuration::from_secs(50),
                factor,
                seed ^ 0xBEEF,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..100u64 {
            let t = SimTime::from_secs(i * 13);
            let r = a.rate_at(t);
            assert!(r >= MIN_RATE, "case {case}: below floor");
            assert_eq!(r, b.rate_at(t), "case {case}: nondeterministic");
        }
    }
}
