//! Property tests for bandwidth processes: positivity, determinism,
//! history stability, and boundary consistency.

use ir_simnet::bandwidth::{
    Ar1LogProcess, BandwidthProcess, JumpMixProcess, RegimeSwitchingProcess, MIN_RATE,
};
use ir_simnet::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn mk_regime(seed: u64, levels: Vec<f64>, hold_s: u64, noise: f64) -> RegimeSwitchingProcess {
    RegimeSwitchingProcess::new(levels, SimDuration::from_secs(hold_s), noise, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn regime_rates_positive_and_deterministic(
        seed in any::<u64>(),
        levels in prop::collection::vec(1.0f64..1e7, 1..4),
        hold_s in 1u64..2000,
        noise in 0.0f64..0.8,
        queries in prop::collection::vec(0u64..100_000, 1..30),
    ) {
        let mut a = mk_regime(seed, levels.clone(), hold_s, noise);
        let mut b = mk_regime(seed, levels, hold_s, noise);
        for &q in &queries {
            let t = SimTime::from_secs(q);
            let ra = a.rate_at(t);
            prop_assert!(ra >= MIN_RATE);
            prop_assert!(ra.is_finite());
            prop_assert_eq!(ra, b.rate_at(t), "nondeterministic at {}", q);
        }
    }

    #[test]
    fn regime_history_is_stable_under_out_of_order_queries(
        seed in any::<u64>(),
        hold_s in 1u64..500,
    ) {
        let mut p = mk_regime(seed, vec![1e4, 1e6], hold_s, 0.2);
        // Sample forward, then re-query the same instants after
        // extending far ahead; answers must not change.
        let times: Vec<SimTime> = (0..20).map(|i| SimTime::from_secs(i * 37)).collect();
        let first: Vec<f64> = times.iter().map(|&t| p.rate_at(t)).collect();
        let _ = p.rate_at(SimTime::from_secs(1_000_000));
        let second: Vec<f64> = times.iter().map(|&t| p.rate_at(t)).collect();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn next_change_is_strictly_increasing_and_rate_constant_between(
        seed in any::<u64>(),
        hold_s in 1u64..300,
    ) {
        let mut p = mk_regime(seed, vec![5e4, 5e5, 5e6], hold_s, 0.1);
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            let next = p.next_change_after(t).expect("regimes change forever");
            prop_assert!(next > t);
            // Rate just before the boundary equals the rate at t.
            let r_t = p.rate_at(t);
            let just_before = SimTime::from_micros(next.as_micros() - 1);
            if just_before > t {
                prop_assert_eq!(p.rate_at(just_before), r_t);
            }
            t = next;
        }
    }

    #[test]
    fn ar1_stays_positive_and_bounded(
        seed in any::<u64>(),
        median in 1e3f64..1e7,
        phi in 0.0f64..0.99,
        sigma in 0.0f64..0.3,
    ) {
        let mut p = Ar1LogProcess::new(
            median, phi, sigma, SimDuration::from_secs(60), seed,
        );
        for i in 0..200u64 {
            let r = p.rate_at(SimTime::from_secs(i * 60));
            prop_assert!(r >= MIN_RATE);
            prop_assert!(r.is_finite());
            // With stationary log-sigma <= 0.3/sqrt(1-0.98) ≈ 2.1, 8
            // sigmas of slack is astronomically safe.
            prop_assert!(r < median * 5e7, "rate {r} exploded from median {median}");
        }
    }

    #[test]
    fn jump_mix_respects_floor_and_determinism(
        seed in any::<u64>(),
        factor in 0.05f64..1.0,
    ) {
        let mk = || {
            JumpMixProcess::new(
                Box::new(mk_regime(seed, vec![1e5], 100, 0.1)),
                SimDuration::from_secs(200),
                SimDuration::from_secs(50),
                factor,
                seed ^ 0xBEEF,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..100u64 {
            let t = SimTime::from_secs(i * 13);
            let r = a.rate_at(t);
            prop_assert!(r >= MIN_RATE);
            prop_assert_eq!(r, b.rate_at(t));
        }
    }
}
