//! Property tests for the max–min fair allocator: feasibility, cap
//! respect, and the bottleneck condition must hold for arbitrary
//! topologies.

use ir_simnet::fairshare::{max_min_rates, AllocFlow};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = (Vec<f64>, Vec<AllocFlow>)> {
    // 1..6 links with capacities 0..1e6 (occasionally infinite), 1..8
    // flows crossing random link subsets with random caps.
    let caps = prop::collection::vec(
        prop_oneof![
            (0.0f64..1e6),
            Just(f64::INFINITY),
            Just(0.0f64),
        ],
        1..6,
    );
    caps.prop_flat_map(|caps| {
        let nl = caps.len();
        let flows = prop::collection::vec(
            (
                prop::collection::btree_set(0..nl, 0..=nl),
                prop_oneof![(1.0f64..1e6), Just(f64::INFINITY), Just(0.0f64)],
            )
                .prop_map(|(links, cap)| AllocFlow {
                    links: links.into_iter().collect(),
                    cap,
                }),
            1..8,
        );
        (Just(caps), flows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn allocation_invariants((caps, flows) in arb_problem()) {
        let rates = max_min_rates(&caps, &flows);
        prop_assert_eq!(rates.len(), flows.len());

        // Rates are non-negative and respect flow caps.
        for (i, f) in flows.iter().enumerate() {
            prop_assert!(rates[i] >= 0.0, "negative rate {}", rates[i]);
            if f.cap.is_finite() {
                prop_assert!(
                    rates[i] <= f.cap + 1e-6 * f.cap.max(1.0),
                    "rate {} exceeds cap {}", rates[i], f.cap
                );
            }
        }

        // Feasibility: finite links are not overloaded.
        for (l, &cap) in caps.iter().enumerate() {
            if !cap.is_finite() {
                continue;
            }
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.links.contains(&l))
                .map(|(_, &r)| r)
                .sum();
            prop_assert!(load <= cap + 1e-6 * cap.max(1.0), "link {l} overloaded: {load} > {cap}");
        }

        // Bottleneck condition: every finite-rate flow is pinned by its
        // cap or by a saturated finite link (unless it is unconstrained
        // entirely, in which case the allocator reports infinity).
        for (i, f) in flows.iter().enumerate() {
            if rates[i].is_infinite() {
                continue;
            }
            let cap_hit = f.cap.is_finite() && rates[i] >= f.cap - 1e-6 * f.cap.max(1.0);
            let link_hit = f.links.iter().any(|&l| {
                if !caps[l].is_finite() {
                    return false;
                }
                let load: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                load >= caps[l] - 1e-6 * caps[l].max(1.0)
            });
            prop_assert!(
                cap_hit || link_hit,
                "flow {i} (rate {}) limited by nothing", rates[i]
            );
        }
    }

    #[test]
    fn equal_flows_get_equal_shares(
        cap in 1.0f64..1e6,
        n in 1usize..6,
    ) {
        let flows: Vec<AllocFlow> = (0..n)
            .map(|_| AllocFlow { links: vec![0], cap: f64::INFINITY })
            .collect();
        let rates = max_min_rates(&[cap], &flows);
        for &r in &rates {
            prop_assert!((r - cap / n as f64).abs() < 1e-6 * cap);
        }
    }

    #[test]
    fn adding_a_flow_never_increases_others(
        cap in 1.0f64..1e6,
        n in 1usize..5,
    ) {
        let mk = |k: usize| -> Vec<f64> {
            let flows: Vec<AllocFlow> = (0..k)
                .map(|_| AllocFlow { links: vec![0], cap: f64::INFINITY })
                .collect();
            max_min_rates(&[cap], &flows)
        };
        let before = mk(n);
        let after = mk(n + 1);
        for i in 0..n {
            prop_assert!(after[i] <= before[i] + 1e-9 * cap);
        }
    }
}
