//! Randomized property tests for the max–min fair allocator:
//! feasibility, cap respect, and the bottleneck condition must hold for
//! arbitrary topologies.
//!
//! These were proptest-based; the offline build has no proptest, so the
//! same invariants are checked over seeded random case sweeps.

use ir_simnet::fairshare::{max_min_rates, reference_rates, AllocFlow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Both solvers, named: every invariant below must hold for the
/// production solver *and* the naive oracle the differential engine
/// suite compares it against.
#[allow(clippy::type_complexity)] // solver-function table; an alias would hide the signature under test
const SOLVERS: [(&str, fn(&[f64], &[AllocFlow]) -> Vec<f64>); 2] = [
    ("max_min_rates", max_min_rates),
    ("reference_rates", reference_rates),
];

/// 1..6 links with capacities 0..1e6 (occasionally infinite or zero),
/// 1..8 flows crossing random link subsets with random caps.
fn arb_problem(rng: &mut StdRng) -> (Vec<f64>, Vec<AllocFlow>) {
    let arb_cap = |rng: &mut StdRng, lo: f64| -> f64 {
        match rng.gen_range(0..4u32) {
            0 => f64::INFINITY,
            1 => 0.0,
            _ => rng.gen_range(lo.max(1e-9)..1e6),
        }
    };
    let nl = rng.gen_range(1..6usize);
    let caps: Vec<f64> = (0..nl).map(|_| arb_cap(rng, 0.0)).collect();
    let nf = rng.gen_range(1..8usize);
    let flows: Vec<AllocFlow> = (0..nf)
        .map(|_| {
            let k = rng.gen_range(0..=nl);
            let mut links: Vec<usize> = (0..nl).collect();
            // Random k-subset.
            for i in 0..k {
                let j = rng.gen_range(i..nl);
                links.swap(i, j);
            }
            links.truncate(k);
            links.sort_unstable();
            AllocFlow {
                links,
                cap: arb_cap(rng, 1.0),
            }
        })
        .collect();
    (caps, flows)
}

#[test]
fn allocation_invariants() {
    for case in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0xF5_0000 + case);
        let (caps, flows) = arb_problem(&mut rng);
        for (name, solve) in SOLVERS {
            let rates = solve(&caps, &flows);
            assert_eq!(rates.len(), flows.len());

            // Rates are non-negative and respect flow caps.
            for (i, f) in flows.iter().enumerate() {
                assert!(
                    rates[i] >= 0.0,
                    "{name} case {case}: negative rate {}",
                    rates[i]
                );
                if f.cap.is_finite() {
                    assert!(
                        rates[i] <= f.cap + 1e-6 * f.cap.max(1.0),
                        "{name} case {case}: rate {} exceeds cap {}",
                        rates[i],
                        f.cap
                    );
                }
            }

            // Feasibility: finite links are not overloaded.
            for (l, &cap) in caps.iter().enumerate() {
                if !cap.is_finite() {
                    continue;
                }
                let load: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(f, _)| f.links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                assert!(
                    load <= cap + 1e-6 * cap.max(1.0),
                    "{name} case {case}: link {l} overloaded: {load} > {cap}"
                );
            }

            // Bottleneck condition: every finite-rate flow is pinned by
            // its cap or by a saturated finite link (unless it is
            // unconstrained entirely, in which case the allocator
            // reports infinity).
            for (i, f) in flows.iter().enumerate() {
                if rates[i].is_infinite() {
                    continue;
                }
                let cap_hit = f.cap.is_finite() && rates[i] >= f.cap - 1e-6 * f.cap.max(1.0);
                let link_hit = f.links.iter().any(|&l| {
                    if !caps[l].is_finite() {
                        return false;
                    }
                    let load: f64 = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(g, _)| g.links.contains(&l))
                        .map(|(_, &r)| r)
                        .sum();
                    load >= caps[l] - 1e-6 * caps[l].max(1.0)
                });
                assert!(
                    cap_hit || link_hit,
                    "{name} case {case}: flow {i} (rate {}) limited by nothing",
                    rates[i]
                );
            }
        }
    }
}

/// Pareto-optimality in the max–min sense: no flow can be sped up
/// without slowing down a flow that is no faster. Concretely, every
/// finite-rate flow is either at its own cap or crosses a saturated
/// link on which its rate is within tolerance of the **maximum** rate
/// across that link — i.e. any headroom it could claim would have to
/// come from a flow that is already no faster than it.
#[test]
fn allocation_is_max_min_pareto_optimal() {
    for case in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0xF8_0000 + case);
        let (caps, flows) = arb_problem(&mut rng);
        for (name, solve) in SOLVERS {
            let rates = solve(&caps, &flows);
            for (i, f) in flows.iter().enumerate() {
                if rates[i].is_infinite() {
                    continue;
                }
                let tol = |x: f64| 1e-6 * x.max(1.0);
                if f.cap.is_finite() && rates[i] >= f.cap - tol(f.cap) {
                    continue; // pinned by its own cap
                }
                let bottlenecked = f.links.iter().any(|&l| {
                    if !caps[l].is_finite() {
                        return false;
                    }
                    let on_l: Vec<f64> = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(g, _)| g.links.contains(&l))
                        .map(|(_, &r)| r)
                        .collect();
                    let load: f64 = on_l.iter().sum();
                    let max_on_l = on_l.iter().cloned().fold(0.0, f64::max);
                    load >= caps[l] - tol(caps[l]) && rates[i] >= max_on_l - tol(max_on_l)
                });
                assert!(
                    bottlenecked,
                    "{name} case {case}: flow {i} (rate {}) could be increased \
                     without hurting a slower flow",
                    rates[i]
                );
            }
        }
    }
}

/// A zero-capacity link pins every crossing flow to exactly zero, in
/// both solvers, regardless of what else the flow crosses.
#[test]
fn zero_capacity_links_pin_crossing_flows_to_zero() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xF9_0000 + case);
        let (mut caps, flows) = arb_problem(&mut rng);
        // Force at least one zero-capacity link into every problem.
        let dead = rng.gen_range(0..caps.len());
        caps[dead] = 0.0;
        for (name, solve) in SOLVERS {
            let rates = solve(&caps, &flows);
            for (i, f) in flows.iter().enumerate() {
                if f.links.iter().any(|&l| caps[l] == 0.0) {
                    assert_eq!(
                        rates[i], 0.0,
                        "{name} case {case}: flow {i} crosses a dead link but got {}",
                        rates[i]
                    );
                }
            }
        }
    }
}

/// The naive oracle and the production solver agree **bitwise** on
/// every randomized problem — the solver-level half of the engine
/// differential suite.
#[test]
fn solvers_agree_bitwise() {
    for case in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0xFA_0000 + case);
        let (caps, flows) = arb_problem(&mut rng);
        let a = max_min_rates(&caps, &flows);
        let b = reference_rates(&caps, &flows);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&a), bits(&b), "case {case}: solver outputs diverged");
    }
}

#[test]
fn equal_flows_get_equal_shares() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xF6_0000 + case);
        let cap = rng.gen_range(1.0..1e6);
        let n = rng.gen_range(1..6usize);
        let flows: Vec<AllocFlow> = (0..n)
            .map(|_| AllocFlow {
                links: vec![0],
                cap: f64::INFINITY,
            })
            .collect();
        let rates = max_min_rates(&[cap], &flows);
        for &r in &rates {
            assert!(
                (r - cap / n as f64).abs() < 1e-6 * cap,
                "case {case}: unequal share"
            );
        }
    }
}

#[test]
fn adding_a_flow_never_increases_others() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xF7_0000 + case);
        let cap = rng.gen_range(1.0..1e6);
        let n = rng.gen_range(1..5usize);
        let mk = |k: usize| -> Vec<f64> {
            let flows: Vec<AllocFlow> = (0..k)
                .map(|_| AllocFlow {
                    links: vec![0],
                    cap: f64::INFINITY,
                })
                .collect();
            max_min_rates(&[cap], &flows)
        };
        let before = mk(n);
        let after = mk(n + 1);
        for i in 0..n {
            assert!(
                after[i] <= before[i] + 1e-9 * cap,
                "case {case}: flow {i} sped up"
            );
        }
    }
}
