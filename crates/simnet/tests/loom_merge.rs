//! Loom model test of the sharded engine's scoped-worker merge.
//!
//! The sharded solve path splits congestion components into contiguous
//! ranges ([`ir_simnet::partition::split_component_ranges`]), solves
//! each range on a worker thread, and scatters the per-worker rates
//! back in stable component order
//! ([`ir_simnet::partition::merge_component_rates`]). The bit-identity
//! invariant rests on that merge being a pure function of the
//! per-component results — **not** of worker completion order.
//!
//! This test drives the exact split + solve + merge pipeline under the
//! loom model checker: every permutation of worker completion order
//! must produce a merged solution bitwise identical to the sequential
//! reference. Gated behind `--cfg loom` (set `RUSTFLAGS="--cfg loom"`;
//! CI's loom lane does) because model checking re-runs the body n!
//! times and the cfg mirrors upstream loom convention.
#![cfg(loom)]

use ir_simnet::partition::{merge_component_rates, split_component_ranges, Components, UnionFind};
use ir_simnet::soa::{solve_component, ProblemSlab};
use loom::sync::{Arc, Mutex};

/// A 9-flow, 6-link problem with four independent congestion
/// components of uneven sizes (so ranges split unevenly too).
fn problem() -> ProblemSlab {
    let mut slab = ProblemSlab::default();
    slab.clear();
    slab.link_cap = vec![100.0, 60.0, 30.0, 45.0, 80.0, 10.0];
    // Component A: flows 0,1,2 share links 0,1.
    slab.push_flow(f64::INFINITY, [0u32, 1]);
    slab.push_flow(40.0, [1u32]);
    slab.push_flow(f64::INFINITY, [0u32]);
    // Component B: flows 3,4 share link 2.
    slab.push_flow(f64::INFINITY, [2u32]);
    slab.push_flow(8.0, [2u32]);
    // Component C: flows 5,6,7 share links 3,4.
    slab.push_flow(f64::INFINITY, [3u32]);
    slab.push_flow(f64::INFINITY, [3u32, 4]);
    slab.push_flow(20.0, [4u32]);
    // Component D: flow 8 alone on link 5.
    slab.push_flow(f64::INFINITY, [5u32]);
    slab
}

fn decompose(slab: &ProblemSlab) -> Components {
    let mut uf = UnionFind::new();
    let mut comps = Components::default();
    comps.build_csr(
        slab.flows(),
        slab.link_cap.len(),
        &slab.flow_off,
        &slab.flow_links,
        &mut uf,
    );
    comps
}

fn solve_ranges(slab: &ProblemSlab, comps: &Components, r0: usize, r1: usize) -> Vec<f64> {
    let nf = slab.flows();
    let nl = slab.link_cap.len();
    let (mut frozen, mut residual, mut active_on) =
        (vec![false; nf], vec![0.0; nl], vec![0u32; nl]);
    let mut rate = vec![0.0; nf];
    for c in r0..r1 {
        solve_component(
            slab,
            comps.comp_flows(c),
            comps.comp_links(c),
            &mut frozen,
            &mut residual,
            &mut active_on,
            &mut rate,
        );
    }
    rate
}

#[test]
fn permuted_worker_completion_order_merges_bit_identically() {
    // Sequential reference: all components solved on one worker.
    let slab = problem();
    let comps = decompose(&slab);
    assert_eq!(comps.count(), 4, "fixture should have 4 components");
    let reference = solve_ranges(&slab, &comps, 0, comps.count());

    let nworkers = 3;
    let ranges = split_component_ranges(&comps, slab.flows(), nworkers);
    assert!(ranges.len() > 1, "fixture should split across workers");

    // Observed completion orders across all explored interleavings —
    // proves the model actually permuted something.
    let orders: std::sync::Arc<std::sync::Mutex<std::collections::BTreeSet<Vec<usize>>>> =
        std::sync::Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
    let orders_outer = std::sync::Arc::clone(&orders);

    loom::model(move || {
        let slab = problem();
        let comps = decompose(&slab);
        let ranges = split_component_ranges(&comps, slab.flows(), nworkers);
        let reference = reference.clone();

        // Each worker records (worker index, rates) when it completes;
        // the log order is the completion order the model chose.
        let log: Arc<Mutex<Vec<(usize, Vec<f64>)>>> = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(w, &(r0, r1))| {
                let log = Arc::clone(&log);
                let slab = slab.clone();
                let comps = comps.clone();
                loom::thread::spawn(move || {
                    let rate = solve_ranges(&slab, &comps, r0, r1);
                    log.lock().unwrap().push((w, rate));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let completed = log.lock().unwrap().clone();
        orders
            .lock()
            .unwrap()
            .insert(completed.iter().map(|(w, _)| *w).collect());

        // Merge in *stable worker order*, regardless of completion
        // order — exactly what the engine's scatter does.
        let mut by_worker: Vec<Vec<f64>> = vec![Vec::new(); ranges.len()];
        for (w, rate) in completed {
            by_worker[w] = rate;
        }
        let rate_slices: Vec<&[f64]> = by_worker.iter().map(|r| r.as_slice()).collect();
        let mut solution = vec![0.0; slab.flows()];
        merge_component_rates(&comps, &ranges, &rate_slices, &mut solution);

        // Bit-identical: exact f64 equality, not an epsilon.
        assert_eq!(
            solution.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            "merged solution diverged from the sequential reference"
        );
    });

    let seen = orders_outer.lock().unwrap();
    assert!(
        seen.len() > 1,
        "model explored only one completion order: {seen:?}"
    );
}
