//! Property suite for the congestion-component partitioner.
//!
//! Three properties over seeded random problems:
//!
//! 1. **True decomposition** — the component structure really partitions
//!    the problem: every flow lands in exactly one component, every
//!    crossed link in exactly one, and no flow crosses a link outside
//!    its own component (components are genuinely independent).
//! 2. **Incremental = from-scratch** — after any interleaving of flow
//!    arrivals and departures, the incrementally-maintained
//!    [`FlowLinkPartition`] yields byte-for-byte the same canonical
//!    components as a partition rebuilt from the live membership.
//! 3. **Component solves compose** — solving each component
//!    independently (even in *reverse* component order) scatters into
//!    exactly `fairshare::reference_rates`, bitwise.

use ir_simnet::fairshare::{max_min_rates, reference_rates, AllocFlow};
use ir_simnet::partition::{Components, FlowLinkPartition, UnionFind};
use ir_simnet::soa::ProblemSlab;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random allocation problem: link capacities (finite, zero, or ∞)
/// and flows crossing random link subsets under random caps.
fn arb_problem(seed: u64) -> (Vec<f64>, Vec<AllocFlow>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_links = rng.gen_range(1..12usize);
    let caps: Vec<f64> = (0..n_links)
        .map(|_| match rng.gen_range(0..10u32) {
            0 => f64::INFINITY,
            1 => 0.0,
            _ => rng.gen_range(1e3..1e6),
        })
        .collect();
    let n_flows = rng.gen_range(0..16usize);
    let flows: Vec<AllocFlow> = (0..n_flows)
        .map(|_| {
            let k = rng.gen_range(0..=3.min(n_links));
            let mut links: Vec<usize> = (0..n_links).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n_links);
                links.swap(i, j);
            }
            links.truncate(k);
            links.sort_unstable();
            let cap = if rng.gen_bool(0.3) {
                f64::INFINITY
            } else {
                rng.gen_range(1e2..1e6)
            };
            AllocFlow { links, cap }
        })
        .collect();
    (caps, flows)
}

#[test]
fn components_are_a_true_decomposition() {
    for seed in 0..300u64 {
        let (caps, flows) = arb_problem(0xA0_0000 + seed);
        let slab = ProblemSlab::from_alloc(&caps, &flows);
        let nf = slab.flows();
        let nl = slab.link_cap.len();
        let mut uf = UnionFind::new();
        let mut comps = Components::default();
        comps.build_csr(nf, nl, &slab.flow_off, &slab.flow_links, &mut uf);

        // Every flow appears exactly once, inside its own component's
        // extent.
        assert_eq!(comps.comp_of_flow.len(), nf, "seed {seed}");
        let mut seen_flows = vec![0u32; nf];
        for c in 0..comps.count() {
            for &f in comps.comp_flows(c) {
                seen_flows[f as usize] += 1;
                assert_eq!(
                    comps.comp_of_flow[f as usize] as usize, c,
                    "seed {seed}: flow {f} listed outside its component"
                );
            }
        }
        assert!(
            seen_flows.iter().all(|&n| n == 1),
            "seed {seed}: a flow is missing or duplicated: {seen_flows:?}"
        );

        // Every crossed link appears exactly once; uncrossed links never.
        let mut link_comp = vec![u32::MAX; nl];
        for c in 0..comps.count() {
            for &l in comps.comp_links(c) {
                assert_eq!(
                    link_comp[l as usize],
                    u32::MAX,
                    "seed {seed}: link {l} in two components"
                );
                link_comp[l as usize] = c as u32;
            }
        }
        let mut crossed = vec![false; nl];
        for f in 0..nf {
            for &l in slab.links_of(f) {
                crossed[l as usize] = true;
            }
        }
        for l in 0..nl {
            assert_eq!(
                crossed[l],
                link_comp[l] != u32::MAX,
                "seed {seed}: link {l} membership disagrees with usage"
            );
        }

        // Independence: a flow only ever crosses links of its own
        // component.
        for f in 0..nf {
            for &l in slab.links_of(f) {
                assert_eq!(
                    link_comp[l as usize], comps.comp_of_flow[f],
                    "seed {seed}: flow {f} crosses a foreign link {l}"
                );
            }
        }
    }
}

#[test]
fn incremental_partition_matches_from_scratch_rebuild() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0xB0_0000 + seed);
        let n_links = rng.gen_range(1..10usize);
        // Live membership: slot → capacity links of its route.
        let mut live: Vec<Option<Vec<u32>>> = Vec::new();
        let mut inc = FlowLinkPartition::new(n_links);

        for _ in 0..rng.gen_range(1..40u32) {
            let departures_possible = live.iter().any(Option::is_some);
            if !departures_possible || rng.gen_bool(0.6) {
                // Arrival on a fresh slot (engine slots are never
                // reused).
                let k = rng.gen_range(0..=3.min(n_links));
                let mut links: Vec<u32> = (0..n_links as u32).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n_links);
                    links.swap(i, j);
                }
                links.truncate(k);
                let slot = live.len() as u32;
                inc.on_flow_start(slot, links.iter().copied());
                live.push(Some(links));
            } else {
                let victims: Vec<usize> = (0..live.len()).filter(|&s| live[s].is_some()).collect();
                let s = victims[rng.gen_range(0..victims.len())];
                live[s] = None;
                inc.on_flow_end();
            }

            // The engine rebuilds lazily at the next query; mirror that.
            if inc.is_dirty() {
                inc.begin_rebuild();
                for (slot, links) in live.iter().enumerate() {
                    if let Some(links) = links {
                        inc.rebuild_flow(slot as u32, links.iter().copied());
                    }
                }
            }

            // From-scratch control: a brand-new partition over the same
            // live membership.
            let mut fresh = FlowLinkPartition::new(n_links);
            for (slot, links) in live.iter().enumerate() {
                if let Some(links) = links {
                    fresh.on_flow_start(slot as u32, links.iter().copied());
                }
            }

            let active: Vec<u32> = (0..live.len() as u32)
                .filter(|&s| live[s as usize].is_some())
                .collect();
            let prob_links: Vec<u32> = (0..n_links as u32).collect();
            let (mut a, mut b) = (Components::default(), Components::default());
            inc.components_into(&active, &prob_links, &mut a);
            fresh.components_into(&active, &prob_links, &mut b);
            assert_eq!(a.comp_of_flow, b.comp_of_flow, "seed {seed}");
            assert_eq!(a.flows, b.flows, "seed {seed}");
            assert_eq!(a.flow_starts, b.flow_starts, "seed {seed}");
            assert_eq!(a.links, b.links, "seed {seed}");
            assert_eq!(a.link_starts, b.link_starts, "seed {seed}");
        }
        // Arrivals must actually have taken the incremental path.
        assert!(inc.incremental_adds > 0, "seed {seed}: never incremental");
    }
}

#[test]
fn independent_component_solves_reproduce_reference_rates() {
    for seed in 0..300u64 {
        let (caps, flows) = arb_problem(0xC0_0000 + seed);
        let oracle = reference_rates(&caps, &flows);
        // The production path must agree with the oracle bitwise on the
        // same instances (the fairshare contract, re-checked here under
        // the property sweep's wider input distribution).
        let prod = max_min_rates(&caps, &flows);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&prod), bits(&oracle), "seed {seed}");

        // Now solve the components by hand, in REVERSE component order:
        // independence means order cannot matter.
        let slab = ProblemSlab::from_alloc(&caps, &flows);
        let nf = slab.flows();
        let nl = slab.link_cap.len();
        let mut uf = UnionFind::new();
        let mut comps = Components::default();
        comps.build_csr(nf, nl, &slab.flow_off, &slab.flow_links, &mut uf);

        let mut frozen = vec![false; nf];
        let mut residual = vec![0.0f64; nl];
        let mut active_on = vec![0u32; nl];
        let mut rate = vec![0.0f64; nf];
        for c in (0..comps.count()).rev() {
            ir_simnet::soa::solve_component(
                &slab,
                comps.comp_flows(c),
                comps.comp_links(c),
                &mut frozen,
                &mut residual,
                &mut active_on,
                &mut rate,
            );
        }
        assert_eq!(
            bits(&rate),
            bits(&oracle),
            "seed {seed}: component solves do not compose"
        );
    }
}
