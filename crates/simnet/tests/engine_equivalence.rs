//! Differential suite: the incremental allocation engine **and** the
//! partition-sharded engine must both be **bit-identical** to the naive
//! reference engine ([`EngineMode::Reference`], which rebuilds the
//! fair-share problem from scratch every boundary and solves it with
//! `fairshare::reference_rates`).
//!
//! Each case builds one network, clones it (clones replay identical
//! randomness), runs one clone per engine mode through an identical
//! scripted call sequence, and asserts after **every** boundary step
//! that the clock, the per-flow rates (bitwise), and the completion
//! records agree across all three engines. Any divergence is an
//! invalidation bug (incremental) or a partition/merge bug (sharded),
//! never fp noise — all engines share the same solver arithmetic (see
//! `fairshare.rs` and `soa.rs`).

use ir_simnet::bandwidth::{
    BandwidthProcess, ConstantProcess, PiecewiseProcess, RegimeSwitchingProcess,
};
use ir_simnet::faults::FaultPlan;
use ir_simnet::prelude::*;
use ir_simnet::topology::NodeKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Piecewise-constant rate ceiling driven by flow age — a stand-in for
/// the TCP model that keeps this crate's tests free of `ir-tcp` while
/// still exercising cap-change boundaries.
#[derive(Debug, Clone)]
struct StepCap {
    /// `(from_age, cap)`, ascending, first entry at age zero.
    steps: Vec<(SimDuration, f64)>,
}

impl RateCap for StepCap {
    fn cap(&mut self, age: SimDuration, _done: u64) -> f64 {
        self.steps
            .iter()
            .rev()
            .find(|&&(from, _)| from <= age)
            .map(|&(_, c)| c)
            .unwrap_or(f64::INFINITY)
    }
    fn next_cap_change(&mut self, age: SimDuration) -> Option<SimDuration> {
        self.steps
            .iter()
            .map(|&(from, _)| from)
            .find(|&from| from > age)
    }
    fn clone_box(&self) -> Box<dyn RateCap> {
        Box::new(self.clone())
    }
}

/// One scripted mutation of the network, applied identically to both
/// engine clones.
enum Action {
    Start {
        route: Route,
        bytes: u64,
        cap: Box<dyn RateCap>,
    },
    Cancel(FlowId),
    SetProc(LinkId, Box<dyn BandwidthProcess>),
}

struct Case {
    net: Network,
    script: Vec<(SimTime, Action)>,
    horizon: SimTime,
}

fn arb_process(rng: &mut StdRng, horizon: SimTime) -> Box<dyn BandwidthProcess> {
    match rng.gen_range(0..10u32) {
        0..=3 => Box::new(ConstantProcess::new(rng.gen_range(1e3..1e6))),
        4..=6 => {
            let n = rng.gen_range(2..6usize);
            let mut t = SimTime::ZERO;
            let mut pts = Vec::with_capacity(n);
            for k in 0..n {
                if k > 0 {
                    t += SimDuration::from_millis(
                        rng.gen_range(500..horizon.as_micros() / 1_000 / 2).max(500),
                    );
                }
                pts.push((t, rng.gen_range(1e3..1e6)));
            }
            Box::new(PiecewiseProcess::new(pts))
        }
        _ => {
            let levels: Vec<f64> = (0..rng.gen_range(2..4usize))
                .map(|_| rng.gen_range(1e3..1e6))
                .collect();
            Box::new(RegimeSwitchingProcess::new(
                levels,
                SimDuration::from_secs(rng.gen_range(3..20)),
                rng.gen_range(0.05..0.3),
                rng.gen(),
            ))
        }
    }
}

fn arb_cap(rng: &mut StdRng) -> Box<dyn RateCap> {
    match rng.gen_range(0..4u32) {
        0 => Box::new(NoCap),
        1 => Box::new(ConstCap(rng.gen_range(1e3..5e5))),
        _ => {
            let n = rng.gen_range(1..4usize);
            let mut age = SimDuration::from_secs(0);
            let mut steps = Vec::with_capacity(n);
            for k in 0..n {
                if k > 0 {
                    age = age + SimDuration::from_secs(rng.gen_range(1..20));
                }
                let cap = if rng.gen_bool(0.2) {
                    f64::INFINITY
                } else {
                    rng.gen_range(1e3..1e6)
                };
                steps.push((age, cap));
            }
            Box::new(StepCap { steps })
        }
    }
}

/// Chain of `n` nodes with mixed `Capacity`/`PerFlow` links plus up to
/// two express links end-to-end; routes are contiguous segments (so
/// flows genuinely share bottlenecks) or an express hop.
fn arb_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = SimTime::from_secs(rng.gen_range(60..180));

    let n = rng.gen_range(3..8usize);
    let mut topo = Topology::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            let kind = match i {
                0 => NodeKind::Client,
                k if k == n - 1 => NodeKind::Server,
                _ => NodeKind::Intermediate,
            };
            topo.add_node(format!("n{i}"), kind)
        })
        .collect();
    let mut links = Vec::new();
    for w in nodes.windows(2) {
        let sharing = if rng.gen_bool(0.7) {
            Sharing::Capacity
        } else {
            Sharing::PerFlow
        };
        links.push(topo.add_link_shared(
            w[0],
            w[1],
            SimDuration::from_millis(rng.gen_range(1..80)),
            sharing,
        ));
    }
    // Optionally one express link end-to-end (the "direct path" of the
    // paper's diamond, generalized).
    let express = rng.gen_bool(0.5).then(|| {
        let sharing = if rng.gen_bool(0.7) {
            Sharing::Capacity
        } else {
            Sharing::PerFlow
        };
        topo.add_link_shared(
            nodes[0],
            nodes[n - 1],
            SimDuration::from_millis(rng.gen_range(1..120)),
            sharing,
        )
    });
    links.extend(express);

    // Routes: contiguous chain segments (so flows genuinely overlap),
    // plus the express hop when present.
    let mut routes = Vec::new();
    for i in 0..n - 1 {
        for j in i + 1..n {
            routes.push(topo.route(&nodes[i..=j]).unwrap());
        }
    }
    if express.is_some() {
        routes.push(topo.route(&[nodes[0], nodes[n - 1]]).unwrap());
    }
    let node_ids = nodes.clone();

    let mut net = Network::new(topo, 1e4);
    for &l in &links {
        net.set_link_process(l, arb_process(&mut rng, horizon));
    }

    // Fault plan: occasionally, a few scheduled outages/brownouts.
    if rng.gen_bool(0.4) {
        let mut plan = FaultPlan::none();
        for _ in 0..rng.gen_range(1..4u32) {
            let from = SimTime::from_millis(rng.gen_range(1..horizon.as_micros() / 1000));
            let to = from + SimDuration::from_secs(rng.gen_range(1..40));
            match rng.gen_range(0..3u32) {
                0 => {
                    let l = links[rng.gen_range(0..links.len())];
                    plan = plan.link_outage(l, from, to);
                }
                1 => {
                    let l = links[rng.gen_range(0..links.len())];
                    plan = plan.brownout(l, from, to, rng.gen_range(0.05..0.9));
                }
                _ => {
                    let nd = node_ids[rng.gen_range(0..node_ids.len())];
                    plan = plan.node_outage(nd, from, to);
                }
            }
        }
        net.set_fault_plan(&plan);
    }

    // Script: staggered starts, occasional cancellations, occasional
    // mid-run process replacement.
    let mut script: Vec<(SimTime, Action)> = Vec::new();
    let n_flows = rng.gen_range(3..9usize);
    let mut started = 0u64;
    for _ in 0..n_flows {
        let at = SimTime::from_millis(rng.gen_range(0..horizon.as_micros() / 1000 / 2));
        script.push((
            at,
            Action::Start {
                route: routes[rng.gen_range(0..routes.len())].clone(),
                bytes: rng.gen_range(1_000..400_000),
                cap: arb_cap(&mut rng),
            },
        ));
        started += 1;
    }
    for _ in 0..rng.gen_range(0..3u32) {
        let at = SimTime::from_millis(rng.gen_range(1..horizon.as_micros() / 1000));
        script.push((at, Action::Cancel(FlowId(rng.gen_range(0..started)))));
    }
    for _ in 0..rng.gen_range(0..2u32) {
        let at = SimTime::from_millis(rng.gen_range(1..horizon.as_micros() / 1000));
        let l = links[rng.gen_range(0..links.len())];
        script.push((at, Action::SetProc(l, arb_process(&mut rng, horizon))));
    }
    // Stable order: by time, starts before cancels at equal times (the
    // sort is stable and starts were pushed first).
    script.sort_by_key(|&(at, _)| at);

    Case {
        net,
        script,
        horizon,
    }
}

fn apply(net: &mut Network, action: &Action) {
    match action {
        Action::Start { route, bytes, cap } => {
            net.start_flow(route.clone(), *bytes, cap.clone());
        }
        Action::Cancel(id) => {
            if (id.0 as usize) < net.stats().flows_started as usize {
                net.cancel_flow(*id);
            }
        }
        Action::SetProc(l, p) => net.set_link_process(*l, p.clone()),
    }
}

/// Steps every engine boundary-by-boundary to `until`, asserting
/// bitwise agreement with the first (pivot) engine after every step.
fn lockstep(case: u64, nets: &mut [&mut Network], until: SimTime) {
    let rates_of = |net: &Network| -> Vec<(u64, u64)> {
        net.last_boundary_rates()
            .iter()
            .map(|&(id, r)| (id.0, r.to_bits()))
            .collect()
    };
    loop {
        let (pivot, rest) = nets.split_first_mut().expect("at least one engine");
        let da = pivot.step_boundary(until);
        let ra = rates_of(pivot);
        for other in rest.iter_mut() {
            let db = other.step_boundary(until);
            assert_eq!(
                pivot.now(),
                other.now(),
                "case {case}: boundary clocks diverged"
            );
            assert_eq!(
                ra,
                rates_of(other),
                "case {case}: rates diverged at t={:?}",
                pivot.now()
            );
            assert_eq!(da, db, "case {case}: completions diverged");
            assert_eq!(
                pivot.stats().boundaries,
                other.stats().boundaries,
                "case {case}: boundary counts diverged"
            );
        }
        if pivot.now() >= until {
            break;
        }
    }
}

#[test]
fn incremental_and_sharded_engines_are_bitwise_identical_to_reference() {
    let mut total_skips = 0u64;
    let mut total_boundaries = 0u64;
    let mut total_full = 0u64;
    let mut total_components = 0u64;
    for case in 0..220u64 {
        let Case {
            net,
            script,
            horizon,
        } = arb_case(0xE9_0000 + case);
        let mut inc = net.clone();
        let mut shard = net.clone();
        let mut refc = net;
        inc.set_engine_mode(EngineMode::Incremental);
        shard.set_engine_mode(EngineMode::Sharded { threads: 4 });
        refc.set_engine_mode(EngineMode::Reference);

        for (at, action) in &script {
            lockstep(case, &mut [&mut inc, &mut refc, &mut shard], *at);
            apply(&mut inc, action);
            apply(&mut refc, action);
            apply(&mut shard, action);
        }
        lockstep(case, &mut [&mut inc, &mut refc, &mut shard], horizon);

        // Final records, bitwise: every flow's completion (or absence)
        // must match across all three engines.
        let sa = inc.stats();
        let sb = refc.stats();
        let ss = shard.stats();
        for k in 0..sa.flows_started {
            let id = FlowId(k);
            assert_eq!(
                inc.completion(id),
                refc.completion(id),
                "case {case}: final record diverged for flow {k}"
            );
            assert_eq!(
                inc.completion(id),
                shard.completion(id),
                "case {case}: sharded final record diverged for flow {k}"
            );
            assert_eq!(inc.flow_progress(id), refc.flow_progress(id));
            assert_eq!(inc.flow_progress(id), shard.flow_progress(id));
        }
        assert_eq!(sa.boundaries, sb.boundaries, "case {case}");
        assert_eq!(sa.flows_completed, sb.flows_completed, "case {case}");
        assert_eq!(sa.flows_cancelled, sb.flows_cancelled, "case {case}");
        assert!(
            sa.full_solves <= sb.full_solves,
            "case {case}: incremental engine solved MORE than brute force"
        );
        assert_eq!(
            sa.full_solves + sa.incremental_solves,
            sb.full_solves,
            "case {case}: every allocation is either solved or provably reused"
        );
        // The sharded engine runs the incremental code path with chunked
        // execution: its bookkeeping must match the incremental engine
        // counter-for-counter, not just its outputs.
        assert_eq!(sa.boundaries, ss.boundaries, "case {case}");
        assert_eq!(sa.full_solves, ss.full_solves, "case {case}");
        assert_eq!(sa.incremental_solves, ss.incremental_solves, "case {case}");
        assert_eq!(sa.flows_completed, ss.flows_completed, "case {case}");
        assert_eq!(sa.flows_cancelled, ss.flows_cancelled, "case {case}");
        assert_eq!(
            sa.component_solves, ss.component_solves,
            "case {case}: partition decompositions diverged"
        );
        total_skips += sa.incremental_solves;
        total_full += sa.full_solves;
        total_boundaries += sa.boundaries;
        total_components += sa.component_solves;
    }
    // The optimization must actually fire across the sweep, not just be
    // correct: fewer full solves than boundaries overall.
    assert!(total_skips > 0, "no boundary ever skipped the solver");
    assert!(
        total_full < total_boundaries,
        "full_solves ({total_full}) should undercut boundaries ({total_boundaries})"
    );
    // Multi-component decompositions must actually occur across the
    // sweep (disjoint segments + express hops guarantee them), or the
    // partitioner is vacuously untested here.
    assert!(
        total_components > total_full,
        "components ({total_components}) should exceed solves ({total_full})"
    );
}

/// A `PerFlow` link's process change on a route whose flow is
/// cap-limited elsewhere provably cannot change allocations — the
/// canonical solve-skip from the issue, pinned deterministically.
#[test]
fn per_flow_process_change_behind_tighter_cap_skips_solver() {
    let mut topo = Topology::new();
    let c = topo.add_node("c", NodeKind::Client);
    let s = topo.add_node("s", NodeKind::Server);
    let wide = topo.add_link_shared(c, s, SimDuration::from_millis(10), Sharing::PerFlow);
    let route = topo.route(&[c, s]).unwrap();
    let mut net = Network::new(topo, 1.0);
    // The PerFlow link's rate steps every second, but always far above
    // the flow's own 100 B/s ceiling: the folded cap never moves.
    let pts: Vec<(SimTime, f64)> = (0..40)
        .map(|k| (SimTime::from_secs(k), 5_000.0 + 100.0 * k as f64))
        .collect();
    net.set_link_process(wide, Box::new(PiecewiseProcess::new(pts)));
    let mut refc = net.clone();
    refc.set_engine_mode(EngineMode::Reference);

    let id = net.start_flow(route.clone(), 3_000, Box::new(ConstCap(100.0)));
    let idr = refc.start_flow(route, 3_000, Box::new(ConstCap(100.0)));
    let a = net.run_flow(id, SimTime::from_secs(100)).unwrap();
    let b = refc.run_flow(idr, SimTime::from_secs(100)).unwrap();
    assert_eq!(a.finished, b.finished);

    let st = net.stats();
    assert!(
        st.incremental_solves > 0,
        "rate steps under a tighter cap must reuse the cached allocation: {st:?}"
    );
    assert!(st.full_solves < st.boundaries, "{st:?}");
    // The brute-force engine solved at every active boundary.
    let str_ = refc.stats();
    assert_eq!(str_.incremental_solves, 0);
    assert_eq!(st.full_solves + st.incremental_solves, str_.full_solves);
}

/// Regression for the slot-map fix: a wide scenario (64 flows × 256
/// links) must complete, agree with the reference engine, and stay at
/// its pinned deterministic boundary count.
#[test]
fn wide_scenario_completes_under_pinned_boundary_count() {
    const FLOWS: usize = 64;
    const LINKS: usize = 256;
    // Pinned with the seed engine's semantics; a change here means the
    // boundary schedule itself moved — investigate before re-pinning.
    const PINNED_BOUNDARIES: u64 = 17;

    let mut rng = StdRng::seed_from_u64(0x51_0DE);
    let mut topo = Topology::new();
    let nodes: Vec<NodeId> = (0..=LINKS)
        .map(|i| {
            let kind = match i {
                0 => NodeKind::Client,
                LINKS => NodeKind::Server,
                _ => NodeKind::Intermediate,
            };
            topo.add_node(format!("w{i}"), kind)
        })
        .collect();
    let links: Vec<LinkId> = nodes
        .windows(2)
        .map(|w| topo.add_link(w[0], w[1], SimDuration::from_millis(1)))
        .collect();
    let mut routes = Vec::new();
    for _ in 0..FLOWS {
        let i = rng.gen_range(0..LINKS - 8);
        let j = rng.gen_range(i + 4..(i + 64).min(LINKS));
        routes.push(topo.route(&nodes[i..=j]).unwrap());
    }
    let mut net = Network::new(topo, 1.0);
    for &l in &links {
        net.set_link_process(l, Box::new(ConstantProcess::new(rng.gen_range(1e4..1e6))));
    }
    let mut refc = net.clone();
    refc.set_engine_mode(EngineMode::Reference);

    for r in &routes {
        net.start_flow(r.clone(), 200_000, Box::new(NoCap));
        refc.start_flow(r.clone(), 200_000, Box::new(NoCap));
    }
    let horizon = SimTime::from_secs(3_600);
    let da = net.advance_until(horizon);
    let db = refc.advance_until(horizon);
    assert_eq!(da.len(), FLOWS, "all flows complete");
    assert_eq!(da, db, "wide scenario diverged between engines");
    let st = net.stats();
    assert_eq!(st.boundaries, refc.stats().boundaries);
    assert_eq!(
        st.boundaries, PINNED_BOUNDARIES,
        "boundary schedule moved: {st:?}"
    );
}
