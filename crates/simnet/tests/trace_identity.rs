//! Trace-identity regression: the engine's telemetry stream — every
//! event, in order, with timestamps, ids and attributes — must be a
//! pure function of the scenario. Two independent runs (fresh
//! `Network`, fresh `Telemetry`, fresh hash-map seeds: `std`'s
//! `RandomState` re-seeds per map instance, so any `HashMap` iteration
//! leaking into event order would reorder *between* these runs even
//! inside one process) have to produce identical traces and counters.
//!
//! This is the test backing the PR's ordering audit: all solver and
//! engine state lives in slab/sorted structures, and the remaining hash
//! maps in the workspace are keyed lookups that never iterate into
//! events or counters.

use ir_simnet::bandwidth::{ConstantProcess, PiecewiseProcess};
use ir_simnet::faults::FaultPlan;
use ir_simnet::prelude::*;
use ir_simnet::topology::NodeKind;
use ir_telemetry::trace::Event;
use ir_telemetry::Telemetry;
use std::sync::Arc;

/// One full engine run of a fault-laden multi-flow scenario under a
/// fresh telemetry handle; returns the event trace and the counters the
/// engine maintains.
fn traced_run(mode: EngineMode) -> (Vec<Event>, Vec<(&'static str, u64)>) {
    let mut topo = Topology::new();
    let n = 6;
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            let kind = match i {
                0 => NodeKind::Client,
                k if k == n - 1 => NodeKind::Server,
                _ => NodeKind::Intermediate,
            };
            topo.add_node(format!("t{i}"), kind)
        })
        .collect();
    let links: Vec<LinkId> = nodes
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let sharing = if i % 3 == 2 {
                Sharing::PerFlow
            } else {
                Sharing::Capacity
            };
            topo.add_link_shared(w[0], w[1], SimDuration::from_millis(5), sharing)
        })
        .collect();
    let express = topo.add_link_shared(
        nodes[0],
        nodes[n - 1],
        SimDuration::from_millis(20),
        Sharing::Capacity,
    );
    let mut routes = Vec::new();
    for i in 0..n - 1 {
        for j in i + 1..n {
            routes.push(topo.route(&nodes[i..=j]).unwrap());
        }
    }
    let express_route = topo.route(&[nodes[0], nodes[n - 1]]).unwrap();

    let mut net = Network::new(topo, 1e4);
    for (i, &l) in links.iter().enumerate() {
        let base = 4e4 + 1e4 * i as f64;
        net.set_link_process(
            l,
            Box::new(PiecewiseProcess::new(vec![
                (SimTime::ZERO, base),
                (SimTime::from_secs(5 + i as u64), base * 0.4),
                (SimTime::from_secs(11 + i as u64), base * 1.6),
            ])),
        );
    }
    net.set_link_process(express, Box::new(ConstantProcess::new(9e4)));
    let plan = FaultPlan::none()
        .link_outage(links[1], SimTime::from_secs(4), SimTime::from_secs(7))
        .brownout(links[2], SimTime::from_secs(9), SimTime::from_secs(14), 0.3);
    net.set_fault_plan(&plan);
    net.set_engine_mode(mode);
    let tel = Arc::new(Telemetry::new());
    net.set_telemetry(Some(Arc::clone(&tel)));

    // Staggered starts (completions interleave with fault boundaries),
    // one mid-run cancellation.
    let mut ids = Vec::new();
    for (k, r) in routes.iter().chain([&express_route]).enumerate() {
        net.advance_until(SimTime::from_millis(300 * k as u64));
        ids.push(net.start_flow(r.clone(), 60_000 + 10_000 * k as u64, Box::new(NoCap)));
    }
    net.advance_until(SimTime::from_secs(6));
    net.cancel_flow(ids[1]);
    net.advance_until(SimTime::from_secs(240));

    let snap = tel.metrics.snapshot();
    let counters = [
        "simnet_boundaries",
        "simnet_recomputes",
        "simnet_solve_skips",
        "simnet_partition_rebuilds",
        "simnet_component_solves",
        "simnet_flows_started",
        "simnet_flows_completed",
        "simnet_flows_cancelled",
        "simnet_faults_injected",
    ]
    .map(|name| (name, snap.counter(name, &vec![]).unwrap_or(0)));
    (tel.tracer.snapshot(), counters.to_vec())
}

#[test]
fn engine_trace_is_identical_across_independent_runs() {
    for mode in [
        EngineMode::Incremental,
        EngineMode::Reference,
        EngineMode::Sharded { threads: 4 },
    ] {
        let (trace_a, counters_a) = traced_run(mode);
        let (trace_b, counters_b) = traced_run(mode);
        assert!(
            trace_a.iter().any(|e| e.kind.name() == "flow_complete"),
            "{mode:?}: scenario completed nothing"
        );
        assert!(
            trace_a.iter().any(|e| e.kind.name() == "fault_injected"),
            "{mode:?}: fault plan never fired"
        );
        assert_eq!(
            trace_a.len(),
            trace_b.len(),
            "{mode:?}: trace lengths diverged"
        );
        for (i, (a, b)) in trace_a.iter().zip(trace_b.iter()).enumerate() {
            assert_eq!(a, b, "{mode:?}: event {i} diverged between runs");
        }
        assert_eq!(counters_a, counters_b, "{mode:?}: counters diverged");
    }
}

/// The partition rebuild instrumentation must actually fire on a
/// departure-heavy scenario (and identically so across engines that
/// share the incremental path).
#[test]
fn partition_rebuilds_are_observed_and_engine_invariant() {
    let (trace_inc, counters_inc) = traced_run(EngineMode::Incremental);
    let (trace_sh, counters_sh) = traced_run(EngineMode::Sharded { threads: 2 });
    let rebuilds = |cs: &[(&str, u64)]| {
        cs.iter()
            .find(|(n, _)| *n == "simnet_partition_rebuilds")
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert!(
        rebuilds(&counters_inc) > 0,
        "completions never triggered a rebuild: {counters_inc:?}"
    );
    assert_eq!(rebuilds(&counters_inc), rebuilds(&counters_sh));
    let rebuild_events = |t: &[Event]| {
        t.iter()
            .filter(|e| e.kind.name() == "partition_rebuild")
            .count()
    };
    assert_eq!(
        rebuild_events(&trace_inc) as u64,
        rebuilds(&counters_inc),
        "rebuild events and counter disagree"
    );
    assert_eq!(rebuild_events(&trace_inc), rebuild_events(&trace_sh));
}
