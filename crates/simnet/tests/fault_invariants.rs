//! Invariants of the fair-share allocator under an active fault plane:
//! after every recompute, per-link flow load must respect the
//! (possibly browned-out) effective capacity, and no flow may retain
//! rate across a link that is down.

use ir_simnet::prelude::*;
use std::collections::BTreeMap;

/// 3 clients × 2 relays × 1 server: direct links plus both overlay
/// hops, all at `rate` B/s.
fn mesh(rate: f64) -> (Network, Vec<Route>) {
    let mut topo = Topology::new();
    let clients: Vec<NodeId> = (0..3)
        .map(|i| topo.add_node(format!("c{i}"), NodeKind::Client))
        .collect();
    let mids: Vec<NodeId> = (0..2)
        .map(|i| topo.add_node(format!("m{i}"), NodeKind::Intermediate))
        .collect();
    let server = topo.add_node("s", NodeKind::Server);
    let lat = SimDuration::from_millis(10);
    for &c in &clients {
        topo.add_link(c, server, lat);
        for &m in &mids {
            topo.add_link(c, m, lat);
        }
    }
    for &m in &mids {
        topo.add_link(m, server, lat);
    }
    let mut routes = Vec::new();
    for &c in &clients {
        routes.push(topo.route(&[c, server]).unwrap());
        for &m in &mids {
            routes.push(topo.route(&[c, m, server]).unwrap());
        }
    }
    (Network::new(topo, rate), routes)
}

fn churny_spec() -> FaultSpec {
    FaultSpec {
        horizon: SimDuration::from_secs(120),
        link_mtbf: SimDuration::from_secs(10),
        link_outage_mean: SimDuration::from_secs(5),
        brownout_prob: 0.5,
        brownout_factor: 0.3,
        node_mtbf: SimDuration::from_secs(30),
        node_downtime_mean: SimDuration::from_secs(8),
    }
}

/// Steps the network through a dense random fault schedule while flows
/// churn on every route, checking the allocation invariants at every
/// step.
#[test]
fn loads_respect_effective_capacity_under_faults() {
    let (mut net, routes) = mesh(10_000.0);
    let all_links: Vec<LinkId> = (0..net.topology().link_count() as u32)
        .map(LinkId)
        .collect();
    let relays: Vec<NodeId> = net.topology().nodes_of_kind(NodeKind::Intermediate);
    let plan = FaultPlan::random(&churny_spec(), &all_links, &relays, 0xFA17);
    assert!(!plan.is_empty(), "spec should draw a dense schedule");
    net.set_fault_plan(&plan);

    // One long-lived flow per route, restarted whenever it completes,
    // so every link carries load through outages and recoveries.
    let mut flows: Vec<(FlowId, Route)> = routes
        .iter()
        .map(|r| {
            (
                net.start_flow(r.clone(), 500_000, Box::new(NoCap)),
                r.clone(),
            )
        })
        .collect();

    let mut saw_down_link = false;
    let mut saw_brownout = false;
    for step in 1..=480u64 {
        let t = SimTime::from_micros(step * 250_000); // 250 ms steps
        net.advance_until(t);
        for (id, route) in &mut flows {
            if !net.is_active(*id) {
                *id = net.start_flow(route.clone(), 500_000, Box::new(NoCap));
            }
        }

        let alloc = net.active_flow_allocation();
        let mut load: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (id, links, rate) in &alloc {
            assert!(rate.is_finite() && *rate >= 0.0, "flow {id:?} rate {rate}");
            for &l in links {
                *load.entry(l).or_insert(0.0) += rate;
            }
            if links.iter().any(|&l| net.link_is_down(l)) {
                saw_down_link = true;
                assert_eq!(
                    *rate, 0.0,
                    "step {step}: flow {id:?} keeps rate {rate} across a down link"
                );
            }
        }
        for (&l, &sum) in &load {
            let cap = net.effective_link_rate_now(l);
            assert!(
                sum <= cap + 1e-6 * cap.max(1.0),
                "step {step}: link {l:?} overloaded: {sum} > effective {cap}"
            );
            if cap > 0.0 && cap < 10_000.0 {
                saw_brownout = true;
            }
        }
    }
    assert!(saw_down_link, "schedule never took a loaded link down");
    assert!(saw_brownout, "schedule never browned a loaded link out");
    // Recovery events may be scheduled past the horizon; drain them
    // and confirm everything comes back up.
    net.advance_until(SimTime::from_secs(1_000));
    assert_eq!(net.fault_events_pending(), 0, "all events consumed");
    for &l in &all_links {
        assert!(!net.link_is_down(l), "link {l:?} never recovered");
    }
}

/// The same walk is bit-deterministic: flow progress at every step is a
/// pure function of the (seed, plan).
#[test]
fn faulted_walk_is_deterministic() {
    let walk = || {
        let (mut net, routes) = mesh(10_000.0);
        let all_links: Vec<LinkId> = (0..net.topology().link_count() as u32)
            .map(LinkId)
            .collect();
        let relays = net.topology().nodes_of_kind(NodeKind::Intermediate);
        let plan = FaultPlan::random(&churny_spec(), &all_links, &relays, 7);
        net.set_fault_plan(&plan);
        let flows: Vec<FlowId> = routes
            .iter()
            .map(|r| net.start_flow(r.clone(), 2_000_000, Box::new(NoCap)))
            .collect();
        let mut trace = Vec::new();
        for step in 1..=120u64 {
            net.advance_until(SimTime::from_secs(step));
            for &f in &flows {
                trace.push(net.flow_progress(f));
            }
        }
        trace
    };
    assert_eq!(walk(), walk());
}
